"""Representation conversions between the stack's layers.

Three conversions, composing into the paper's "typical workflow"
(§5.4): "MQSS Adapters produce MLIR-pulse code, MQSS's MLIR-based
compiler will then lower it to QIR with pulse support, and QDMI will
submit it to the target quantum device":

* :func:`quantum_module_to_schedule` — gate->pulse lowering using the
  device's calibration set ("every gate has an associated pulse
  waveform", §5.2);
* :func:`schedule_to_pulse_module` — lift an executable schedule into a
  ``pulse.sequence`` module (the IR form of Listing 2), inserting
  explicit delays so the interpreter's ASAP replay reproduces the exact
  event times, and recording exact frame declarations;
* :func:`mlir_pulse_to_schedule` — the inverse: parse/interpret a pulse
  module against a device.

Round-trip guarantee: ``mlir_pulse_to_schedule(schedule_to_pulse_module(s))``
is canonically equivalent to ``s`` — the property experiment E1 rests
on, covered by property-based tests.
"""

from __future__ import annotations

import re
from typing import Any, Mapping, Sequence

from repro.core.frame import Frame
from repro.core.instructions import (
    Barrier,
    Capture,
    Delay,
    FrameChange,
    Play,
    SetFrequency,
    SetPhase,
    ShiftFrequency,
    ShiftPhase,
)
from repro.core.port import Port
from repro.core.schedule import PulseSchedule
from repro.errors import LoweringError
from repro.mlir.dialects.pulse import SequenceBuilder
from repro.mlir.interp import module_to_schedule
from repro.mlir.ir import Module
from repro.mlir.parser import parse_module


# ---- gate -> schedule ---------------------------------------------------------------


def quantum_module_to_schedule(
    module: Module,
    device: Any,
    *,
    circuit_name: str | None = None,
    parameters: Mapping[str, Sequence[float]] | None = None,
) -> PulseSchedule:
    """Lower a gate-level ``quantum.circuit`` into a pulse schedule.

    Every gate op is replaced by its device calibration; a missing
    calibration raises :class:`~repro.errors.LoweringError`. Barriers
    lower to schedule barriers over the qubits' drive ports.
    """
    circuits = module.ops_of("quantum.circuit")
    if circuit_name is not None:
        circuits = [c for c in circuits if c.attr("sym_name") == circuit_name]
    if len(circuits) != 1:
        raise LoweringError(
            f"expected exactly one quantum.circuit, found {len(circuits)}"
        )
    circuit = circuits[0]
    schedule = PulseSchedule(circuit.attr("sym_name") or "circuit")
    cal = device.calibrations
    for op in circuit.region().entry.operations:
        if op.name in ("quantum.x", "quantum.sx"):
            cal.get(op.opname, (op.attr("qubit"),)).apply(schedule, [])
        elif op.name == "quantum.rz":
            cal.get("rz", (op.attr("qubit"),)).apply(schedule, [op.attr("theta")])
        elif op.name == "quantum.cz":
            a, b = op.attr("qubits")
            lo, hi = sorted((a, b))
            cal.get("cz", (lo, hi)).apply(schedule, [])
        elif op.name == "quantum.measure":
            cal.get("measure", (op.attr("qubit"),)).apply(
                schedule, [op.attr("slot")]
            )
        elif op.name == "quantum.barrier":
            ports = [device.drive_port(q) for q in op.attr("qubits")]
            schedule.barrier(*ports)
        elif op.name == "quantum.gate":
            qs = tuple(op.attr("qubits"))
            cal.get(op.attr("name"), qs).apply(schedule, op.attr("params") or [])
        else:
            raise LoweringError(f"cannot lower operation {op.name!r}")
    return schedule


# ---- schedule -> pulse module --------------------------------------------------------


def _arg_name(port: Port, frame: Frame) -> str:
    raw = f"{frame.name}_{port.name}" if frame.name else port.name
    return re.sub(r"[^0-9A-Za-z_]", "_", raw)


def schedule_to_pulse_module(
    schedule: PulseSchedule, name: str | None = None
) -> Module:
    """Lift an executable schedule into a ``pulse.sequence`` module.

    The lift pins every event to its absolute time by inserting
    explicit ``pulse.delay`` ops wherever a port would otherwise run
    ahead, and records the exact frame declarations in the
    ``pulse.argFrames`` attribute so interpretation does not depend on
    device defaults.
    """
    sb = SequenceBuilder(name or schedule.name)

    # One mixed-frame argument per (port, frame) pair, sorted for
    # deterministic output.
    pairs: dict[tuple[str, str], tuple[Port, Frame]] = {}
    for item in schedule.ordered():
        ins = item.instruction
        frame = getattr(ins, "frame", None)
        port = getattr(ins, "port", None)
        if port is not None and frame is not None:
            pairs[(port.name, frame.name)] = (port, frame)
        elif port is not None:
            # Delay: attach to any frame on that port later; remember
            # the bare port with an empty frame placeholder.
            pairs.setdefault((port.name, ""), (port, Frame("__bare__", 0.0)))

    # Prefer real frames: drop bare placeholders for ports that also
    # appear with a frame.
    ports_with_frames = {pn for (pn, fn) in pairs if fn}
    pairs = {
        key: val
        for key, val in pairs.items()
        if key[1] or key[0] not in ports_with_frames
    }

    arg_values: dict[tuple[str, str], Any] = {}
    arg_frames_attr: list[list] = []
    port_arg: dict[str, Any] = {}  # port name -> one representative mf value
    for key in sorted(pairs):
        port, frame = pairs[key]
        v = sb.add_mixed_frame_arg(_arg_name(port, frame), port.name)
        arg_values[key] = v
        arg_frames_attr.append([frame.name, float(frame.frequency), float(frame.phase)])
        port_arg.setdefault(port.name, v)
    sb.sequence.attributes["pulse.argFrames"] = arg_frames_attr

    def mf_of(ins) -> Any:
        frame = getattr(ins, "frame", None)
        port = ins.port
        if frame is not None:
            return arg_values[(port.name, frame.name)]
        return port_arg[port.name]

    # Emit in time order, inserting delays to pin absolute times.
    port_free: dict[str, int] = {}
    waveform_cache: dict[str, Any] = {}
    captures: list[Any] = []
    for item in schedule.ordered():
        ins = item.instruction
        if isinstance(ins, (Barrier, Delay)):
            # Pure timing: barriers and delays carry no information once
            # times are absolute; the gap logic below re-inserts exactly
            # the delays needed to pin the next event, making
            # lift(interp(lift(s))) a fixed point.
            continue
        pname = ins.port.name
        free = port_free.get(pname, 0)
        if free < item.t0:
            sb.delay(port_arg[pname], item.t0 - free)
        elif free > item.t0:
            raise LoweringError(
                f"schedule lift: port {pname!r} event at t={item.t0} "
                f"precedes port free time {free}"
            )
        if isinstance(ins, Play):
            fp = ins.waveform.fingerprint()
            wf_value = waveform_cache.get(fp)
            if wf_value is None:
                wf_value = sb.waveform(ins.waveform)
                waveform_cache[fp] = wf_value
            sb.play(mf_of(ins), wf_value)
        elif isinstance(ins, FrameChange):
            sb.frame_change(mf_of(ins), ins.frequency, ins.phase)
        elif isinstance(ins, SetFrequency):
            sb.set_frequency(mf_of(ins), ins.frequency)
        elif isinstance(ins, ShiftFrequency):
            sb.shift_frequency(mf_of(ins), ins.delta)
        elif isinstance(ins, SetPhase):
            sb.set_phase(mf_of(ins), ins.phase)
        elif isinstance(ins, ShiftPhase):
            sb.shift_phase(mf_of(ins), ins.delta)
        elif isinstance(ins, Capture):
            captures.append(
                sb.capture(mf_of(ins), ins.memory_slot, ins.duration_samples)
            )
        else:
            raise LoweringError(f"schedule lift: unsupported instruction {ins!r}")
        port_free[pname] = item.t0 + ins.duration
    sb.ret(*captures)
    return sb.module


# ---- pulse module -> schedule --------------------------------------------------------


def mlir_pulse_to_schedule(
    payload: "Module | str",
    device: Any,
    scalar_args: Mapping[str, float] | None = None,
    *,
    sequence_name: str | None = None,
) -> PulseSchedule:
    """Interpret an MLIR pulse payload (module object or text) into a
    schedule bound to *device*."""
    module = parse_module(payload) if isinstance(payload, str) else payload
    return module_to_schedule(
        module, device, scalar_args, sequence_name=sequence_name
    )
