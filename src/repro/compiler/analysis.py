"""Schedule timing analysis.

Reports the quantities an HPC-side scheduler and the compiler's
cost models need: per-port occupancy, the critical path (the port chain
that determines total duration), achieved parallelism, and instruction
histograms. Used by the Fig. 1 benchmark and available to users for
profiling lowering output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instructions import Delay, Play
from repro.core.schedule import PulseSchedule


@dataclass
class ScheduleProfile:
    """Timing profile of one pulse schedule."""

    name: str
    duration_samples: int
    n_instructions: int
    n_timed: int
    n_virtual: int
    per_port_busy: dict[str, int] = field(default_factory=dict)
    per_port_utilization: dict[str, float] = field(default_factory=dict)
    critical_port: str = ""
    parallelism: float = 0.0  # total busy samples / duration
    instruction_histogram: dict[str, int] = field(default_factory=dict)
    total_played_samples: int = 0

    def rows(self) -> list[tuple]:
        """Table form for reports."""
        out = [
            ("duration (samples)", self.duration_samples),
            ("instructions (timed/virtual)", f"{self.n_timed}/{self.n_virtual}"),
            ("critical port", self.critical_port),
            ("parallelism", round(self.parallelism, 2)),
            ("played samples", self.total_played_samples),
        ]
        for port, util in sorted(self.per_port_utilization.items()):
            out.append((f"utilization {port}", f"{util:.0%}"))
        return out


def profile_schedule(schedule: PulseSchedule) -> ScheduleProfile:
    """Compute the timing profile of *schedule*."""
    duration = schedule.duration
    busy: dict[str, int] = {}
    histogram: dict[str, int] = {}
    n_timed = n_virtual = 0
    played = 0
    for item in schedule.ordered():
        ins = item.instruction
        kind = type(ins).__name__
        histogram[kind] = histogram.get(kind, 0) + 1
        if ins.duration > 0:
            n_timed += 1
            if not isinstance(ins, Delay):
                for p in ins.ports:
                    busy[p.name] = busy.get(p.name, 0) + ins.duration
        else:
            n_virtual += 1
        if isinstance(ins, Play):
            played += ins.waveform.duration
    utilization = {
        name: (b / duration if duration else 0.0) for name, b in busy.items()
    }
    critical = max(busy, key=busy.get) if busy else ""
    parallelism = (sum(busy.values()) / duration) if duration else 0.0
    return ScheduleProfile(
        name=schedule.name,
        duration_samples=duration,
        n_instructions=len(schedule),
        n_timed=n_timed,
        n_virtual=n_virtual,
        per_port_busy=busy,
        per_port_utilization=utilization,
        critical_port=critical,
        parallelism=parallelism,
        instruction_histogram=histogram,
        total_played_samples=played,
    )


def compare_profiles(a: ScheduleProfile, b: ScheduleProfile) -> dict[str, float]:
    """Relative comparison (b vs a) of the headline metrics."""
    def ratio(x: float, y: float) -> float:
        return y / x if x else float("inf")

    return {
        "duration_ratio": ratio(a.duration_samples, b.duration_samples),
        "instruction_ratio": ratio(a.n_instructions, b.n_instructions),
        "played_ratio": ratio(a.total_played_samples, b.total_played_samples),
    }
