"""The JIT compiler: QDMI-informed compilation to the exchange format.

Reproduces the paper's pipeline (§5.5 "Consistency Across the Stack"):

1. accept a payload from an adapter — a gate-level ``quantum`` module,
   a ``pulse`` module (object or text), or a raw schedule;
2. query the target device over QDMI for its pulse constraints
   (challenge C3: "query relevant hardware constraints" during JIT
   compilation);
3. lower gates to pulses through the device's calibrations;
4. run the pulse pass pipeline — canonicalize, CSE, DCE, and the
   constraint legalization built from the queried constraints;
5. emit QIR with the Pulse Profile (challenge C4) and/or the executable
   schedule.

Compilations are cached: the cache key combines the payload's stable
fingerprint with the device name and its current calibration state, so
a re-calibrated device (new frame frequencies) correctly invalidates
old compilations — the behaviour automated calibration (paper §2.1)
depends on.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.schedule import PulseSchedule
from repro.errors import CompilationError
from repro.compiler.lowering import (
    mlir_pulse_to_schedule,
    quantum_module_to_schedule,
    schedule_to_pulse_module,
)
from repro.mlir.context import MLIRContext, default_context
from repro.obs.metrics import REGISTRY, CacheStats
from repro.obs.tracing import span
from repro.mlir.ir import Module, print_module
from repro.mlir.passes import (
    DeadWaveformEliminationPass,
    PassManager,
    PulseCanonicalizePass,
    PulseLegalizationPass,
    WaveformCSEPass,
)
from repro.qdmi.properties import DeviceProperty
from repro.qir.emitter import schedule_to_qir


@dataclass
class CompiledProgram:
    """Output of one JIT compilation."""

    device_name: str
    schedule: PulseSchedule
    pulse_module: Module
    qir: str
    pass_report: Any
    compile_time_s: float
    cache_hit: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def duration_samples(self) -> int:
        return self.schedule.duration


class JITCompiler:
    """Compiles adapter payloads for a concrete QDMI device.

    The internal memo is a bounded LRU: parameter-binding hot loops
    (``Executable.bind`` with a fresh point per iteration) and long
    scalar-argument sweeps insert one artifact per distinct binding, so
    an unbounded dict would grow for the life of the process.  Shared
    multi-tenant traffic should use the serving layer's
    :class:`~repro.serving.cache.CompileCache` instead, which is
    additionally thread-safe and instrumented.
    """

    def __init__(
        self,
        context: MLIRContext | None = None,
        *,
        max_cache_entries: int = 512,
    ) -> None:
        if max_cache_entries < 1:
            raise CompilationError(
                f"max_cache_entries must be >= 1, got {max_cache_entries}"
            )
        self.context = context if context is not None else default_context()
        self.max_cache_entries = max_cache_entries
        self._cache: OrderedDict[str, CompiledProgram] = OrderedDict()
        # CacheStats keeps the historical key names (``compilations``,
        # ``cache_hits``) for dict access while ``stats()`` maps them
        # onto the uniform hits/misses/evictions shape shared with
        # CompileCache and PropagatorCache.
        self.stats = CacheStats(
            lambda: len(self._cache),
            lambda: self.max_cache_entries,
            aliases={"hits": "cache_hits", "misses": "compilations"},
            compilations=0,
            cache_hits=0,
            evictions=0,
        )
        REGISTRY.register_cache(
            REGISTRY.autoname("jit"), self, kind="jit-artifact"
        )

    # ---- cache keys ---------------------------------------------------------------

    def payload_fingerprint(
        self, payload: Any, scalar_args: Mapping | None = None
    ) -> str:
        """Stable content hash of a payload (+ bound scalar arguments).

        Device-independent half of :meth:`cache_key`; the serving
        layer's request coalescing also keys on it.
        """
        if isinstance(payload, PulseSchedule):
            base = payload.fingerprint()
        elif isinstance(payload, Module):
            base = hashlib.sha256(print_module(payload).encode()).hexdigest()[:16]
        elif isinstance(payload, str):
            base = hashlib.sha256(payload.encode()).hexdigest()[:16]
        else:
            raise CompilationError(
                f"unsupported payload type {type(payload).__name__}"
            )
        if scalar_args:
            base += self._scalar_suffix(scalar_args)
        return base

    @staticmethod
    def _scalar_suffix(scalar_args: Mapping) -> str:
        extra = repr(sorted(scalar_args.items()))
        return hashlib.sha256(extra.encode()).hexdigest()[:8]

    def device_state_key(self, device: Any) -> str:
        """Device identity + calibration state.

        Recalibration changes the key, so stale compilations are never
        served after a calibration: the believed frequencies cover
        frame write-backs directly, and the device's
        ``calibration_epoch`` (bumped by *every* write-back, including
        DRAG-beta and readout refreshes that move no frequency) covers
        the rest. Devices without an epoch counter — remote proxies,
        external backends — degrade to the frequency-only key.
        """
        freqs = tuple(
            round(device.believed_frequency(s), 3)
            for s in range(device.config.num_sites)
        )
        epoch = getattr(device, "calibration_epoch", 0)
        digest = hashlib.sha256(repr((epoch, freqs)).encode()).hexdigest()[:8]
        return f"{device.name}:{digest}"

    def cache_key(
        self,
        payload: Any,
        device: Any,
        scalar_args: Mapping | None = None,
        *,
        backend: str | None = None,
    ) -> str:
        """Content-addressed compilation key: payload x device state.

        This is the public cache-key surface consumed by
        :class:`repro.serving.cache.CompileCache`; two requests with
        equal keys are guaranteed to compile to the same program.
        *backend* namespaces the key by array backend/dtype spec
        (``"numpy/complex64"``) when execution is scoped to one — an
        artifact compiled for one numeric policy never answers for
        another.
        """
        return self.compose_cache_key(
            self.payload_fingerprint(payload),
            device,
            scalar_args,
            backend=backend,
        )

    def compose_cache_key(
        self,
        payload_fingerprint: str,
        device: Any,
        scalar_args: Mapping | None = None,
        *,
        backend: str | None = None,
    ) -> str:
        """:meth:`cache_key` from a precomputed payload fingerprint.

        Hot loops (``Executable.bind``) fingerprint the payload once
        and recompose the key per parameter binding; the result is
        byte-identical to :meth:`cache_key` on the same inputs.
        """
        base = payload_fingerprint
        if scalar_args:
            base += self._scalar_suffix(scalar_args)
        key = f"{base}@{self.device_state_key(device)}"
        if backend:
            key += f"#{backend}"
        return key

    # ---- compilation -----------------------------------------------------------------

    def compile(
        self,
        payload: Any,
        device: Any,
        *,
        scalar_args: Mapping[str, float] | None = None,
        use_cache: bool = True,
    ) -> CompiledProgram:
        """Compile *payload* for *device*; returns a CompiledProgram.

        Payload kinds: a gate-level MLIR module (``quantum.circuit``),
        a pulse MLIR module or its text, or a :class:`PulseSchedule`.
        """
        key = self.cache_key(payload, device, scalar_args)
        if use_cache:
            cached = self.lookup(key)
            if cached is not None:
                return cached

        with span("compile.jit", device=device.name):
            return self._compile_cold(
                payload, device, scalar_args, key, use_cache
            )

    def _compile_cold(
        self,
        payload: Any,
        device: Any,
        scalar_args: Mapping[str, float] | None,
        key: str,
        use_cache: bool,
    ) -> CompiledProgram:
        t0 = time.perf_counter()
        self.stats["compilations"] += 1

        # 1-3. Front-end: get to a schedule, through the calibrations.
        schedule = self._to_schedule(payload, device, scalar_args)

        # 4. Pulse-level pass pipeline on the lifted module, informed by
        #    the constraints queried over QDMI.
        constraints = device.query_device_property(
            DeviceProperty.PULSE_CONSTRAINTS
        )
        pulse_module = schedule_to_pulse_module(schedule)
        pm = (
            PassManager(self.context)
            .add(PulseCanonicalizePass())
            .add(WaveformCSEPass())
            .add(DeadWaveformEliminationPass())
            .add(PulseLegalizationPass(constraints))
        )
        report = pm.run(pulse_module)

        # Re-extract the (legalized) schedule and hard-check constraints.
        final_schedule = mlir_pulse_to_schedule(pulse_module, device)
        constraints.validate_schedule(final_schedule)

        # 5. Exchange format.
        qir = schedule_to_qir(final_schedule)

        program = CompiledProgram(
            device_name=device.name,
            schedule=final_schedule,
            pulse_module=pulse_module,
            qir=qir,
            pass_report=report,
            compile_time_s=time.perf_counter() - t0,
            metadata={
                "granularity": constraints.granularity,
                "dt": constraints.dt,
            },
        )
        if use_cache:
            self.store(key, program)
        return program

    def _to_schedule(
        self, payload: Any, device: Any, scalar_args: Mapping | None
    ) -> PulseSchedule:
        if isinstance(payload, PulseSchedule):
            return payload
        if isinstance(payload, Module):
            dialects = payload.dialects_used()
            if "quantum" in dialects and "pulse" not in dialects:
                return quantum_module_to_schedule(payload, device)
            return mlir_pulse_to_schedule(payload, device, scalar_args)
        if isinstance(payload, str):
            return mlir_pulse_to_schedule(payload, device, scalar_args)
        raise CompilationError(
            f"unsupported payload type {type(payload).__name__}"
        )

    # ---- cache surface ---------------------------------------------------------------

    def lookup(self, key: str) -> CompiledProgram | None:
        """The memoized program under *key* (marked as a hit); None on miss.

        Part of the public cache surface used by the unified execution
        API: misses are silent so callers can probe before deciding how
        to produce the artifact.
        """
        cached = self._cache.get(key)
        if cached is None:
            return None
        self._cache.move_to_end(key)
        self.stats["cache_hits"] += 1
        return replace(cached, cache_hit=True, metadata=dict(cached.metadata))

    def store(self, key: str, program: CompiledProgram) -> None:
        """Remember *program* under *key* (bound-template artifacts use
        this to make revisited parameter points cache hits), evicting
        the least-recently-used entries beyond the memo bound."""
        self._cache[key] = program
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_cache_entries:
            self._cache.popitem(last=False)
            self.stats["evictions"] += 1

    def clear_cache(self) -> None:
        """Drop all cached compilations."""
        self._cache.clear()
