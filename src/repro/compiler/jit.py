"""The JIT compiler: QDMI-informed compilation to the exchange format.

Reproduces the paper's pipeline (§5.5 "Consistency Across the Stack"):

1. accept a payload from an adapter — a gate-level ``quantum`` module,
   a ``pulse`` module (object or text), or a raw schedule;
2. query the target device over QDMI for its pulse constraints
   (challenge C3: "query relevant hardware constraints" during JIT
   compilation);
3. lower gates to pulses through the device's calibrations;
4. run the pulse pass pipeline — canonicalize, CSE, DCE, and the
   constraint legalization built from the queried constraints;
5. emit QIR with the Pulse Profile (challenge C4) and/or the executable
   schedule.

Compilations are cached: the cache key combines the payload's stable
fingerprint with the device name and its current calibration state, so
a re-calibrated device (new frame frequencies) correctly invalidates
old compilations — the behaviour automated calibration (paper §2.1)
depends on.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.schedule import PulseSchedule
from repro.errors import CompilationError
from repro.compiler.lowering import (
    mlir_pulse_to_schedule,
    quantum_module_to_schedule,
    schedule_to_pulse_module,
)
from repro.mlir.context import MLIRContext, default_context
from repro.mlir.ir import Module, print_module
from repro.mlir.passes import (
    DeadWaveformEliminationPass,
    PassManager,
    PulseCanonicalizePass,
    PulseLegalizationPass,
    WaveformCSEPass,
)
from repro.qdmi.properties import DeviceProperty
from repro.qir.emitter import schedule_to_qir


@dataclass
class CompiledProgram:
    """Output of one JIT compilation."""

    device_name: str
    schedule: PulseSchedule
    pulse_module: Module
    qir: str
    pass_report: Any
    compile_time_s: float
    cache_hit: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def duration_samples(self) -> int:
        return self.schedule.duration


class JITCompiler:
    """Compiles adapter payloads for a concrete QDMI device."""

    def __init__(self, context: MLIRContext | None = None) -> None:
        self.context = context if context is not None else default_context()
        self._cache: dict[str, CompiledProgram] = {}
        self.stats = {"compilations": 0, "cache_hits": 0}

    # ---- cache keys ---------------------------------------------------------------

    def payload_fingerprint(
        self, payload: Any, scalar_args: Mapping | None = None
    ) -> str:
        """Stable content hash of a payload (+ bound scalar arguments).

        Device-independent half of :meth:`cache_key`; the serving
        layer's request coalescing also keys on it.
        """
        if isinstance(payload, PulseSchedule):
            base = payload.fingerprint()
        elif isinstance(payload, Module):
            base = hashlib.sha256(print_module(payload).encode()).hexdigest()[:16]
        elif isinstance(payload, str):
            base = hashlib.sha256(payload.encode()).hexdigest()[:16]
        else:
            raise CompilationError(
                f"unsupported payload type {type(payload).__name__}"
            )
        if scalar_args:
            extra = repr(sorted(scalar_args.items()))
            base += hashlib.sha256(extra.encode()).hexdigest()[:8]
        return base

    def device_state_key(self, device: Any) -> str:
        """Device identity + calibration state (believed frequencies).

        Recalibration (a frame-frequency write-back) changes the key,
        so stale compilations are never served after a calibration.
        """
        freqs = tuple(
            round(device.believed_frequency(s), 3)
            for s in range(device.config.num_sites)
        )
        digest = hashlib.sha256(repr(freqs).encode()).hexdigest()[:8]
        return f"{device.name}:{digest}"

    def cache_key(
        self, payload: Any, device: Any, scalar_args: Mapping | None = None
    ) -> str:
        """Content-addressed compilation key: payload x device state.

        This is the public cache-key surface consumed by
        :class:`repro.serving.cache.CompileCache`; two requests with
        equal keys are guaranteed to compile to the same program.
        """
        return (
            f"{self.payload_fingerprint(payload, scalar_args)}"
            f"@{self.device_state_key(device)}"
        )

    # ---- compilation -----------------------------------------------------------------

    def compile(
        self,
        payload: Any,
        device: Any,
        *,
        scalar_args: Mapping[str, float] | None = None,
        use_cache: bool = True,
    ) -> CompiledProgram:
        """Compile *payload* for *device*; returns a CompiledProgram.

        Payload kinds: a gate-level MLIR module (``quantum.circuit``),
        a pulse MLIR module or its text, or a :class:`PulseSchedule`.
        """
        key = self.cache_key(payload, device, scalar_args)
        if use_cache and key in self._cache:
            self.stats["cache_hits"] += 1
            cached = self._cache[key]
            return CompiledProgram(
                device_name=cached.device_name,
                schedule=cached.schedule,
                pulse_module=cached.pulse_module,
                qir=cached.qir,
                pass_report=cached.pass_report,
                compile_time_s=cached.compile_time_s,
                cache_hit=True,
                metadata=dict(cached.metadata),
            )

        t0 = time.perf_counter()
        self.stats["compilations"] += 1

        # 1-3. Front-end: get to a schedule, through the calibrations.
        schedule = self._to_schedule(payload, device, scalar_args)

        # 4. Pulse-level pass pipeline on the lifted module, informed by
        #    the constraints queried over QDMI.
        constraints = device.query_device_property(
            DeviceProperty.PULSE_CONSTRAINTS
        )
        pulse_module = schedule_to_pulse_module(schedule)
        pm = (
            PassManager(self.context)
            .add(PulseCanonicalizePass())
            .add(WaveformCSEPass())
            .add(DeadWaveformEliminationPass())
            .add(PulseLegalizationPass(constraints))
        )
        report = pm.run(pulse_module)

        # Re-extract the (legalized) schedule and hard-check constraints.
        final_schedule = mlir_pulse_to_schedule(pulse_module, device)
        constraints.validate_schedule(final_schedule)

        # 5. Exchange format.
        qir = schedule_to_qir(final_schedule)

        program = CompiledProgram(
            device_name=device.name,
            schedule=final_schedule,
            pulse_module=pulse_module,
            qir=qir,
            pass_report=report,
            compile_time_s=time.perf_counter() - t0,
            metadata={
                "granularity": constraints.granularity,
                "dt": constraints.dt,
            },
        )
        if use_cache:
            self._cache[key] = program
        return program

    def _to_schedule(
        self, payload: Any, device: Any, scalar_args: Mapping | None
    ) -> PulseSchedule:
        if isinstance(payload, PulseSchedule):
            return payload
        if isinstance(payload, Module):
            dialects = payload.dialects_used()
            if "quantum" in dialects and "pulse" not in dialects:
                return quantum_module_to_schedule(payload, device)
            return mlir_pulse_to_schedule(payload, device, scalar_args)
        if isinstance(payload, str):
            return mlir_pulse_to_schedule(payload, device, scalar_args)
        raise CompilationError(
            f"unsupported payload type {type(payload).__name__}"
        )

    def clear_cache(self) -> None:
        """Drop all cached compilations."""
        self._cache.clear()
