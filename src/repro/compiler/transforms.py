"""Schedule-level transforms: dynamical decoupling / Hahn echo.

Pulse-level access "enables the implementation of a wide range of
strategies from the field of quantum optimal control ... applying
dynamical decoupling techniques" (paper §2.2). This transform rewrites
long idle gaps on drive ports into echo sequences: the gap

    <------------------ tau ------------------>

becomes (CPMG-2, net identity)

    tau/4  X  tau/2  X  tau/4

Two calibrated pi pulses return the qubit to its original frame while
refocusing phase accumulated from *static* frequency miscalibration —
the error source our drifting devices actually exhibit between
calibrations. The transform preserves every original event's absolute
time (echo pulses only occupy previously-idle windows).
"""

from __future__ import annotations

from repro.core.instructions import Delay, Play
from repro.core.port import Port, PortKind
from repro.core.schedule import PulseSchedule
from repro.errors import PassError

#: Port kinds that may receive echo pulses.
_DRIVE_KINDS = (PortKind.DRIVE, PortKind.RF, PortKind.LASER)


def _idle_windows(schedule: PulseSchedule, port: Port) -> list[tuple[int, int]]:
    """Idle [start, end) windows on *port* between its timed events."""
    busy = sorted(
        (it.t0, it.t1)
        for it in schedule.ordered()
        if port in it.instruction.ports
        and it.instruction.duration > 0
        and not isinstance(it.instruction, Delay)  # delays ARE idle time
    )
    windows = []
    cursor = 0
    for t0, t1 in busy:
        if t0 > cursor:
            windows.append((cursor, t0))
        cursor = max(cursor, t1)
    return windows


def insert_echo_sequences(
    schedule: PulseSchedule,
    device,
    *,
    min_gap: int | None = None,
) -> PulseSchedule:
    """Insert CPMG-2 echoes into long idle gaps on drive ports.

    Parameters
    ----------
    schedule:
        The source schedule (not mutated).
    device:
        Supplies the calibrated X pulse per site (``x_waveform``) and
        the timing granularity.
    min_gap:
        Minimum idle length (samples) worth echoing; defaults to four
        X-pulse durations.

    Returns
    -------
    A new schedule with identical original events plus echo pulses.
    """
    constraints = device.config.constraints
    g = constraints.granularity
    x_duration = device.calibrations.get("x", (0,)).duration
    if min_gap is None:
        min_gap = 4 * x_duration
    if min_gap < 2 * x_duration:
        raise PassError("min_gap must fit two echo pulses")

    out = PulseSchedule(schedule.name + "+dd")
    for item in schedule.ordered():
        if isinstance(item.instruction, Delay):
            continue  # timing is reconstructed from absolute placement
        out.insert(item.t0, item.instruction)

    for port in schedule.ports():
        if port.kind not in _DRIVE_KINDS or not port.targets:
            continue
        site = port.targets[0]
        if not device.calibrations.has("x", (site,)):
            continue
        frame = device.default_frame(port)
        wf = device.x_waveform()
        for start, end in _idle_windows(schedule, port):
            tau = end - start
            if tau < min_gap:
                continue
            # Place two pi pulses at the 1/4 and 3/4 points of the idle
            # window (grid-aligned), i.e. tau/4 X tau/2 X tau/4.
            first = start + ((tau // 4) // g) * g
            second = start + ((3 * tau // 4) // g) * g
            if second + x_duration > end or second < first + x_duration:
                continue
            out.insert(first, Play(port, frame, wf))
            out.insert(second, Play(port, frame, wf))
    return out


def idle_fraction(schedule: PulseSchedule, port: Port) -> float:
    """Fraction of the schedule duration *port* spends idle."""
    total = schedule.duration
    if total == 0:
        return 0.0
    idle = sum(end - start for start, end in _idle_windows(schedule, port))
    # Also count trailing idle time.
    busy_end = max(
        (
            it.t1
            for it in schedule.ordered()
            if port in it.instruction.ports
            and it.instruction.duration > 0
            and not isinstance(it.instruction, Delay)
        ),
        default=0,
    )
    idle += total - busy_end
    return idle / total
