"""The JIT compiler driver (paper Fig. 2: "QRM & Compiler
Infrastructure").

Glues the layers together into the paper's end-to-end pipeline:

    adapter payload  ->  gate-level MLIR  ->  (QDMI-informed passes)
                     ->  pulse-level MLIR ->  QIR Pulse Profile
                     ->  QDMI job

:mod:`repro.compiler.lowering` holds the representation conversions
(gate module -> schedule, schedule <-> pulse module);
:mod:`repro.compiler.jit` holds the :class:`JITCompiler` that queries
device constraints over QDMI, runs the pass pipeline, emits the
exchange format and caches compilations.
"""

from repro.compiler.lowering import (
    mlir_pulse_to_schedule,
    quantum_module_to_schedule,
    schedule_to_pulse_module,
)
from repro.compiler.jit import CompiledProgram, JITCompiler
from repro.compiler.analysis import ScheduleProfile, compare_profiles, profile_schedule
from repro.compiler.transforms import idle_fraction, insert_echo_sequences

__all__ = [
    "quantum_module_to_schedule",
    "schedule_to_pulse_module",
    "mlir_pulse_to_schedule",
    "JITCompiler",
    "CompiledProgram",
    "profile_schedule",
    "compare_profiles",
    "ScheduleProfile",
    "insert_echo_sequences",
    "idle_fraction",
]
