"""Shared machinery of the Sampler/Estimator primitives.

A primitive is constructed from any :class:`~repro.api.target.Target`
(or a bare device, or — for in-process callers like the variational
algorithms — directly from a :class:`~repro.sim.executor.ScheduleExecutor`)
and owns one dispatch decision for all its PUBs:

* **direct** — the target is a local simulated device (or a raw
  executor): every PUB point across every PUB becomes one schedule,
  and the whole batch runs through
  :meth:`ScheduleExecutor.execute_batch
  <repro.sim.executor.ScheduleExecutor.execute_batch>` — one stacked
  propagator (or Lindblad superpropagator) call instead of a
  per-point ``run()`` loop.
* **service** — the target dispatches through a
  :class:`~repro.serving.service.PulseService`: each PUB expands into
  one sweep (``PulseService`` fan-out, coalescing, failover) and the
  primitives collect the tickets.
* **client** — anything else (remote QDMI routing): the per-point
  ``Executable`` loop, kept as the correctness baseline.

Schedules for parametric programs are minted through
:meth:`Executable.specialize <repro.api.executable.Executable.specialize>`
— the PR-4 template fast path — falling back to :meth:`Executable.bind`
when the template is unavailable, so PUB evaluation never recompiles
the front-end per point.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from repro.api.executable import Executable
from repro.api.target import Target
from repro.errors import ValidationError
from repro.obs.metrics import REGISTRY, CacheStats
from repro.obs.tracing import span

#: Dispatch modes (documented above).
_DIRECT, _SERVICE, _CLIENT = "direct", "service", "client"


class BasePrimitive:
    """Target resolution + batched PUB execution shared by primitives."""

    #: Compiled executables kept warm per primitive (identity-keyed by
    #: Program; optimizer loops re-submitting one Program skip the
    #: re-prepare + template re-trace entirely).
    _MAX_EXECUTABLE_MEMO = 128

    def __init__(
        self,
        target: Any = None,
        *,
        executor: Any = None,
        seed: int | None = None,
        backend: str | None = None,
    ) -> None:
        self._seed = seed
        #: Array backend/dtype spec ("numpy/complex64", "cupy", ...)
        #: every dispatch runs its evolution under; None keeps the
        #: ambient repro.xp scope.
        self._backend = backend
        self._executor = None
        self._target: Target | None = None
        self._executables: OrderedDict[Any, Executable] = OrderedDict()
        #: Uniform hit/miss/eviction accounting for the executable memo
        #: (the "template cache"), exported to the metrics registry like
        #: every other cache in the stack.
        self.stats = CacheStats(
            lambda: len(self._executables),
            lambda: self._MAX_EXECUTABLE_MEMO,
            hits=0,
            misses=0,
            evictions=0,
        )
        REGISTRY.register_cache(
            REGISTRY.autoname("template"), self, kind="template"
        )
        if executor is not None:
            if target is not None:
                raise ValidationError(
                    "pass either a target or an executor, not both"
                )
            self._executor = executor
            self._mode = _DIRECT
            return
        if target is None:
            raise ValidationError("a primitive needs a target (or executor)")
        resolved = Target.resolve(target)
        self._target = resolved
        if resolved.is_async:
            self._mode = _SERVICE
        elif resolved.direct and not resolved.is_remote:
            device = resolved.device
            if hasattr(device, "executor"):
                self._mode = _DIRECT
                self._executor = device.executor
            else:  # a direct target without a simulator: client loop
                self._mode = _CLIENT
        else:
            self._mode = _CLIENT

    @classmethod
    def from_executor(cls, executor: Any, **kwargs: Any):
        """A primitive over a bare :class:`ScheduleExecutor`.

        The in-process route for callers that already hold an executor
        (variational algorithms, mitigation validation): PUB programs
        must be pulse schedules, and everything dispatches through
        :meth:`ScheduleExecutor.execute_batch` with zero compile-layer
        overhead.
        """
        return cls(executor=executor, **kwargs)

    # ---- introspection ---------------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"direct"``, ``"service"`` or ``"client"`` dispatch."""
        return self._mode

    @property
    def target(self) -> Target | None:
        return self._target

    def _device_name(self) -> str:
        if self._target is not None:
            return self._target.device_name
        model = self._executor.model
        return f"executor[{'x'.join(str(d) for d in model.dims)}]"

    def _dims(self) -> tuple[int, ...]:
        """Per-site dimensions of the simulated system (direct only)."""
        return tuple(self._executor.model.dims)

    # ---- schedule minting ------------------------------------------------------------

    def _point_schedules(self, pub, *, stretch: float | None = None) -> list[Any]:
        """One concrete schedule per *unique* binding point of *pub*.

        Compiles the PUB's program once (template for parametric
        programs), then specializes per point through the fast path.
        In executor mode the program must already be a schedule.

        *stretch* dilates every minted schedule by a ZNE stretch factor
        (:mod:`repro.core.stretch`). The template fast path stretches
        inside :meth:`Executable.specialize
        <repro.api.executable.Executable.specialize>`; when the
        template is unavailable the fallback binds through the full JIT
        and stretches the bound schedule *explicitly* — an impossible
        stretch raises :class:`~repro.errors.ValidationError`, it never
        silently returns an un-stretched bind.
        """
        from repro.core.stretch import coerce_stretch_factor, stretch_schedule

        if stretch is not None:
            stretch = coerce_stretch_factor(stretch)
            if stretch == 1.0:
                stretch = None
        bindings = pub.bindings
        n_points = bindings.size
        if self._executor is not None and self._target is None:
            if pub.program.kind != "schedule":
                raise ValidationError(
                    "an executor-backed primitive takes pulse-schedule "
                    f"programs only, got kind {pub.program.kind!r}; "
                    "construct the primitive from a Target to compile "
                    "other front ends"
                )
            if bindings.num_parameters:
                raise ValidationError(
                    "an executor-backed primitive cannot bind parametric "
                    "programs; construct it from a Target instead"
                )
            source = pub.program.source
            if stretch is not None:
                source = stretch_schedule(source, stretch)
            return [source] * n_points
        executable = self._executables.get(pub.program)
        if executable is None:
            self.stats["misses"] += 1
            with span("compile", program=pub.program.name):
                executable = Executable.prepare(pub.program, self._target)
                executable.compile()
            self._executables[pub.program] = executable
            while len(self._executables) > self._MAX_EXECUTABLE_MEMO:
                self._executables.popitem(last=False)
                self.stats["evictions"] += 1
        else:
            self.stats["hits"] += 1
            self._executables.move_to_end(pub.program)
        if self._mode == _CLIENT and stretch is not None:
            raise ValidationError(
                "pulse stretching needs a locally minted schedule; "
                f"{self._mode!r} dispatch hands executables to the remote "
                "side — run ZNE against a direct or service target"
            )
        constraints = (
            self._target.constraints if self._mode != _CLIENT else None
        )
        if not pub.program.is_parametric:
            if self._mode == _CLIENT:
                return [executable] * n_points
            schedule = executable._ensure_compiled().schedule
            if stretch is not None:
                schedule = stretch_schedule(
                    schedule, stretch, constraints=constraints
                )
            return [schedule] * n_points
        schedules: list[Any] = []
        with span("specialize", points=n_points):
            for i in range(n_points):
                point = bindings.point(i)
                if self._mode == _CLIENT:
                    schedules.append(executable.bind(point))
                    continue
                schedule = executable.specialize(point, stretch=stretch)
                if schedule is None:  # template unavailable: full bind
                    schedule = executable.bind(point).schedule
                    if stretch is not None:
                        # the fallback stretches explicitly — a silent
                        # un-stretched bind would corrupt the ZNE sweep
                        schedule = stretch_schedule(
                            schedule, stretch, constraints=constraints
                        )
                schedules.append(schedule)
        return schedules

    # ---- batched dispatch ------------------------------------------------------------

    def _execute_all(
        self,
        per_pub: Sequence[tuple[Any, list[Any], int]],
        *,
        timeout: float | None = None,
    ) -> list[list[Any]]:
        """Execute every pub's points; returns per-pub result lists.

        *per_pub* entries are ``(pub, point_handles, shots)`` where the
        handles are schedules (direct/service) or executables (client).
        Direct dispatch batches all pubs sharing a shot count into one
        :meth:`execute_batch` call; service dispatch admits every sweep
        before collecting any ticket, so pubs overlap in the worker
        pools.
        """
        with span("dispatch", mode=self._mode, pubs=len(per_pub)):
            if self._mode == _DIRECT:
                out: list[list[Any]] = [
                    [None] * len(h) for _, h, _ in per_pub
                ]
                groups: dict[int, list[tuple[int, int, Any]]] = {}
                for p, (_, handles, shots) in enumerate(per_pub):
                    for i, handle in enumerate(handles):
                        groups.setdefault(shots, []).append((p, i, handle))
                for shots, entries in groups.items():
                    results = self._executor.execute_batch(
                        [e[2] for e in entries],
                        shots=shots,
                        seed=self._seed,
                        backend=self._backend,
                    )
                    for (p, i, _), result in zip(entries, results):
                        out[p][i] = result
                return out
            if self._mode == _SERVICE:
                from repro.serving.sweeps import SweepRequest

                if self._backend is not None:
                    raise ValidationError(
                        "backend= is not supported on service dispatch: "
                        "sweep workers own their execution scope; run "
                        "against a direct target, or scope the service "
                        "process with repro.xp.use_backend"
                    )
                service = self._target.service
                tickets = []
                for _, handles, shots in per_pub:
                    sweep = SweepRequest.from_programs(
                        list(handles),
                        self._target.device_name,
                        shots=shots,
                        seed=self._seed,
                    )
                    tickets.append(service._admit_sweep(sweep))
                return [t.results(timeout) for t in tickets]
            return [
                [
                    handle.run(
                        shots=shots,
                        seed=self._seed,
                        timeout=timeout,
                        backend=self._backend,
                    )
                    for handle in handles
                ]
                for _, handles, shots in per_pub
            ]

    # ---- result-shape helpers --------------------------------------------------------

    @staticmethod
    def _batch_profile(results: Sequence[Any]) -> dict | None:
        """The shared ``metadata["profile"]`` of a result batch, if any.

        Present on direct-dispatch results when profiling is enabled
        (:func:`repro.obs.enable_profiling`); every result of a batch
        carries the same summary object, so the first one wins.
        """
        for result in results:
            meta = getattr(result, "metadata", None)
            if isinstance(meta, dict) and "profile" in meta:
                return meta["profile"]
        return None

    @staticmethod
    def _object_array(shape: tuple[int, ...], values: list[Any]) -> np.ndarray:
        """Object ndarray of *shape* filled from flat *values*."""
        out = np.empty(shape, dtype=object)
        flat = out.reshape(-1) if shape else out
        if shape:
            for i, v in enumerate(values):
                flat[i] = v
        else:
            out[()] = values[0]
        return out
