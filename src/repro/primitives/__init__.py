"""repro.primitives — Sampler/Estimator over broadcastable PUBs.

The workload tier of the stack: instead of hand-rolling an
``Executable.run`` loop per algorithm, callers describe *what* they
want measured — a program, its parameter axes, optionally the
observables — and the primitives batch, cache and route the whole
request through the fastest execution path the target supports
(batched propagators, the Lindblad engine, or served sweeps).

::

    est = Estimator(target)
    result = est.run([(program, [["ZI"], ["IZ"]], {"theta": grid})])
    result[0].data.evs        # shape (2, len(grid)): the (2, 1)
                              # observables broadcast across the points

* :class:`Observable` — Pauli-string algebra; the stack's single
  expectation engine (the historical per-result ``expectation_z``
  accessors are deprecation shims over it).
* :class:`SamplerPub` / :class:`EstimatorPub` — ``(program,
  parameter_values, shots)`` / ``(program, observables,
  parameter_values)`` with NumPy-style broadcasting.
* :class:`Sampler` / :class:`Estimator` — the primitives.
* :class:`DataBin` / :class:`PubResult` / :class:`PrimitiveResult` —
  the unified result layer.
"""

from repro.primitives.containers import DataBin, PrimitiveResult, PubResult
from repro.primitives.estimator import Estimator
from repro.primitives.observables import Observable
from repro.primitives.pubs import (
    BindingsArray,
    EstimatorPub,
    ObservablesArray,
    SamplerPub,
)
from repro.primitives.sampler import Sampler

__all__ = [
    "Observable",
    "Sampler",
    "Estimator",
    "SamplerPub",
    "EstimatorPub",
    "BindingsArray",
    "ObservablesArray",
    "DataBin",
    "PubResult",
    "PrimitiveResult",
]
