"""Sampler: shot-based execution of broadcastable PUBs.

``Sampler.run([(program, parameter_values, shots), ...])`` executes
every parameter point of every PUB and returns one
:class:`~repro.primitives.containers.PubResult` per PUB whose
:class:`~repro.primitives.containers.DataBin` holds, per point:

* ``counts`` — sampled shot counts after readout error (exactly what
  ``Executable.run`` returns);
* ``quasi_dists`` — normalized counts, or — with ``mitigation=True``
  on a direct simulator target — the confusion-inverted readout
  mitigation of them (:mod:`repro.mitigation.readout`), alongside the
  per-point ``condition_numbers`` of the inversion;
* ``probabilities`` — the exact pre-readout outcome distribution the
  backend reports (shot-noise free);
* direct simulator targets additionally expose the exact post-readout
  ``noisy_probabilities`` — the ground truth the mitigation literature
  scores against — and per-point ``leakage``.

All points dispatch through one batched evolution pass on direct
targets (:meth:`ScheduleExecutor.execute_batch`), a served sweep on
service targets, or the per-point ``Executable`` loop on remote
clients — see :mod:`repro.primitives.base`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.obs.tracing import span
from repro.primitives.base import BasePrimitive
from repro.primitives.containers import DataBin, PrimitiveResult, PubResult
from repro.primitives.pubs import SamplerPub


class Sampler(BasePrimitive):
    """Shot sampler over one execution target.

    Parameters
    ----------
    target:
        A :class:`~repro.api.target.Target`, or anything
        :meth:`Target.resolve <repro.api.target.Target.resolve>`
        accepts (e.g. a bare device). Alternatively build from a raw
        executor with :meth:`from_executor`.
    default_shots:
        Shots for PUBs that do not carry their own.
    seed:
        Seed forwarded to every execution (reproducible sampling).
    mitigation:
        Apply confusion-matrix readout mitigation to the counts; the
        mitigated distributions land in ``quasi_dists`` and the
        inversion's ``condition_numbers`` ride along. Direct simulator
        targets only (the confusion matrices live on the executor).
    """

    def __init__(
        self,
        target: Any = None,
        *,
        executor: Any = None,
        default_shots: int = 1024,
        seed: int | None = None,
        mitigation: bool = False,
        backend: str | None = None,
        options: Any = None,
    ) -> None:
        super().__init__(target, executor=executor, seed=seed, backend=backend)
        if default_shots < 0:
            raise ValidationError(
                f"default_shots must be >= 0, got {default_shots}"
            )
        self.default_shots = int(default_shots)
        self.mitigation = bool(mitigation)
        if self.mitigation and self.mode != "direct":
            raise ValidationError(
                "readout mitigation needs a direct simulator target "
                "(the confusion matrices live on the device executor)"
            )
        #: Optional :class:`repro.qem.SamplerOptions` — when set,
        #: ``run`` routes through the composable mitigation engine
        #: (twirling + readout inversion folded into ``quasi_dists``).
        #: The legacy ``mitigation=True`` flag is the readout-only
        #: special case and stays on its original path.
        self.options = options
        if options is not None:
            if not hasattr(options, "mitigation"):
                raise ValidationError(
                    "options must be a repro.qem.SamplerOptions "
                    f"(got {type(options).__name__})"
                )
            if self.mitigation:
                raise ValidationError(
                    "pass either mitigation=True (legacy readout-only) "
                    "or options=SamplerOptions(...), not both"
                )
            if self.mode != "direct":
                raise ValidationError(
                    "mitigation options need a direct simulator target "
                    "(the confusion matrices live on the device executor)"
                )

    def run(
        self,
        pubs: Iterable[Any],
        *,
        shots: int | None = None,
        timeout: float | None = None,
    ) -> PrimitiveResult:
        """Execute *pubs*; results align with the input order.

        *shots* overrides the sampler default for PUBs that carry no
        shot count of their own.
        """
        coerced = [SamplerPub.coerce(p) for p in pubs]
        if not coerced:
            raise ValidationError("Sampler.run needs at least one PUB")
        if self.options is not None:
            from repro.qem.engine import run_mitigated_sampler

            specs = [
                (
                    pub,
                    pub.shots
                    if pub.shots is not None
                    else (self.default_shots if shots is None else int(shots)),
                )
                for pub in coerced
            ]
            with span("sampler.run", pubs=len(coerced), mode=self.mode):
                return run_mitigated_sampler(self, specs, timeout=timeout)
        with span("sampler.run", pubs=len(coerced), mode=self.mode):
            per_pub = []
            for pub in coerced:
                pub_shots = (
                    pub.shots
                    if pub.shots is not None
                    else (self.default_shots if shots is None else int(shots))
                )
                per_pub.append((pub, self._point_schedules(pub), pub_shots))
            results = self._execute_all(per_pub, timeout=timeout)
            with span("measurement", pubs=len(coerced)):
                pub_results = [
                    self._assemble(pub, shots_, res)
                    for (pub, _, shots_), res in zip(per_pub, results)
                ]
        return PrimitiveResult(
            pub_results, metadata={"dispatch": self.mode, "seed": self._seed}
        )

    # ---- assembly --------------------------------------------------------------------

    def _assemble(self, pub: SamplerPub, shots: int, results: Sequence[Any]):
        shape = pub.shape
        counts: list[dict] = []
        probabilities: list[dict] = []
        noisy: list[dict] = []
        quasi: list[dict] = []
        conditions: list[float] = []
        leakage: list[float] = []
        direct = self.mode == "direct"
        for r in results:
            if direct:  # ExecutionResult
                r_counts = dict(r.counts)
                r_probs = dict(r.ideal_probabilities)
                r_noisy = dict(r.probabilities)
                noisy.append(r_noisy)
                leakage.append(float(sum(r.leakage.values())))
            else:  # ClientResult
                r_counts = dict(r.counts)
                r_probs = dict(r.probabilities)
                r_noisy = {}
            counts.append(r_counts)
            probabilities.append(r_probs)
            if self.mitigation:
                mitigated, cond = self._mitigate(r, r_counts, r_noisy, shots)
                quasi.append(mitigated)
                conditions.append(cond)
            elif shots > 0 and r_counts:
                total = sum(r_counts.values())
                quasi.append({k: v / total for k, v in r_counts.items()})
            else:
                quasi.append(dict(r_noisy if direct else r_probs))
        fields: dict[str, Any] = {
            "counts": self._object_array(shape, counts),
            "quasi_dists": self._object_array(shape, quasi),
            "probabilities": self._object_array(shape, probabilities),
        }
        if direct:
            fields["noisy_probabilities"] = self._object_array(shape, noisy)
            fields["leakage"] = np.asarray(leakage, dtype=np.float64).reshape(
                shape
            )
        if self.mitigation:
            fields["condition_numbers"] = np.asarray(
                conditions, dtype=np.float64
            ).reshape(shape)
        metadata: dict[str, Any] = {
            "shots": shots,
            "target": self._device_name(),
            "dispatch": self.mode,
            "mitigated": self.mitigation,
        }
        profile = self._batch_profile(results)
        if profile is not None:
            metadata["profile"] = profile
        return PubResult(DataBin(shape=shape, **fields), metadata=metadata)

    def _mitigate(
        self, result: Any, counts: dict, noisy: dict, shots: int
    ) -> tuple[dict, float]:
        """Confusion-invert one point's observed distribution."""
        from repro.qem.readout import mitigate_distribution
        from repro.sim.measurement import ReadoutModel

        observed = (
            {k: v / sum(counts.values()) for k, v in counts.items()}
            if shots > 0 and counts
            else dict(noisy)
        )
        if not observed:
            return {}, float("nan")
        models = [
            self._executor.readout.get(site, ReadoutModel())
            for site in result.measured_sites
        ]
        mitigated = mitigate_distribution(observed, models)
        return mitigated.distribution, mitigated.condition_number
