"""Result containers for the primitives tier.

One result shape for every workload: a primitive ``run`` returns a
:class:`PrimitiveResult` — one :class:`PubResult` per input PUB, each
holding a :class:`DataBin` whose fields are arrays shaped like the
PUB's broadcast shape. Counts, quasi-distributions, expectation
values and standard errors all travel through this one container
instead of thirteen ad-hoc result dataclasses.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ValidationError


class DataBin:
    """A named bundle of result arrays sharing one leading shape.

    Fields are exposed as attributes (``bin.evs``, ``bin.counts``,
    ``bin.stds``...). Every field is an :class:`numpy.ndarray` whose
    leading dimensions equal :attr:`shape` — object arrays for
    per-point mappings (counts, distributions), float arrays for
    numerics. Which fields are present depends on the primitive and
    the dispatch path; ``in`` and :attr:`fields` let callers probe.
    """

    __slots__ = ("_fields", "_shape")

    def __init__(self, *, shape: tuple[int, ...] = (), **fields: Any) -> None:
        self._shape = tuple(int(s) for s in shape)
        self._fields: dict[str, np.ndarray] = {}
        for name, value in fields.items():
            arr = value if isinstance(value, np.ndarray) else np.asarray(value)
            if arr.shape[: len(self._shape)] != self._shape:
                raise ValidationError(
                    f"DataBin field {name!r} has shape {arr.shape}, "
                    f"expected leading dims {self._shape}"
                )
            self._fields[name] = arr

    @property
    def shape(self) -> tuple[int, ...]:
        """The PUB's broadcast shape all fields share."""
        return self._shape

    @property
    def fields(self) -> tuple[str, ...]:
        """Names of the fields present, sorted."""
        return tuple(sorted(self._fields))

    def __contains__(self, name: object) -> bool:
        return name in self._fields

    def __getattr__(self, name: str) -> np.ndarray:
        # Underscore lookups must fail fast: copy/pickle protocols probe
        # special attributes on a not-yet-initialized instance, and
        # touching self._fields here would recurse back into __getattr__.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            fields = object.__getattribute__(self, "_fields")
        except AttributeError:
            raise AttributeError(name) from None
        try:
            return fields[name]
        except KeyError:
            raise AttributeError(
                f"DataBin has no field {name!r}; present: "
                f"{list(sorted(fields))}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._fields:
            raise ValidationError(
                f"DataBin has no field {name!r}; present: "
                f"{list(sorted(self._fields))}"
            )
        return self._fields[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{k}={v.dtype}{v.shape}" for k, v in sorted(self._fields.items())
        )
        return f"DataBin(shape={self._shape}, {inner})"


class PubResult:
    """The result of one PUB: a :class:`DataBin` plus metadata."""

    __slots__ = ("data", "metadata")

    def __init__(
        self, data: DataBin, metadata: Mapping[str, Any] | None = None
    ) -> None:
        self.data = data
        self.metadata: dict[str, Any] = dict(metadata or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PubResult({self.data!r})"


class PrimitiveResult(Sequence):
    """Results of one primitive ``run``, aligned with the input PUBs."""

    __slots__ = ("_pub_results", "metadata")

    def __init__(
        self,
        pub_results: Sequence[PubResult],
        metadata: Mapping[str, Any] | None = None,
    ) -> None:
        self._pub_results = list(pub_results)
        self.metadata: dict[str, Any] = dict(metadata or {})

    def __len__(self) -> int:
        return len(self._pub_results)

    def __getitem__(self, index):  # type: ignore[override]
        return self._pub_results[index]

    def __iter__(self) -> Iterator[PubResult]:
        return iter(self._pub_results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrimitiveResult(<{len(self._pub_results)} pubs>, "
            f"metadata={self.metadata})"
        )
