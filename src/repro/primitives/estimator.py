"""Estimator: expectation values of broadcastable observable PUBs.

``Estimator.run([(program, observables, parameter_values), ...])``
evaluates every broadcast point of every PUB and returns one
:class:`~repro.primitives.containers.PubResult` per PUB whose
:class:`~repro.primitives.containers.DataBin` holds:

* ``evs`` — expectation values, shaped like the PUB's broadcast shape
  (:func:`numpy.broadcast_shapes` of the observables' and parameter
  values' shapes);
* ``stds`` — standard errors ``sqrt(var / shots)`` for the
  estimator's configured shot budget (0.0 when the budget is 0:
  exact estimation);
* ``leakage`` — per-point total leakage population (direct simulator
  targets).

Each *unique* parameter point executes once — observables fan out
over the resulting state/distribution without re-running anything —
and the whole batch of points dispatches through one batched
evolution pass (:meth:`ScheduleExecutor.execute_batch`) on direct
targets, a served sweep on service targets, or the per-point
``Executable`` loop on remote clients.

Evaluation conventions (see :mod:`repro.primitives.observables`):
diagonal observables on measuring programs evaluate from the exact
*pre-readout* outcome distribution — bit-for-bit the quantity
``Executable.run`` results report (``ClientResult.probabilities`` is
the ideal distribution; ``ExecutionResult.expectation_z`` differs
when a readout-error model is configured, since it reads the
post-readout distribution). Non-diagonal observables (and
capture-less programs) evaluate from the simulator state through the
computational-subspace embedding, which is what the variational
algorithms score. Non-diagonal observables therefore need a direct
simulator target.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.obs.tracing import span
from repro.primitives.base import BasePrimitive
from repro.primitives.containers import DataBin, PrimitiveResult, PubResult
from repro.primitives.pubs import EstimatorPub


class Estimator(BasePrimitive):
    """Expectation-value estimator over one execution target.

    Parameters
    ----------
    target, executor, seed:
        As for :class:`~repro.primitives.sampler.Sampler`.
    shots:
        Shot budget the reported standard errors correspond to;
        ``0`` (default) means exact estimation with ``stds == 0``.
        Expectation values themselves are always the exact ones the
        backend can provide — shots only set the error bars.
    """

    def __init__(
        self,
        target: Any = None,
        *,
        executor: Any = None,
        seed: int | None = None,
        shots: int = 0,
        backend: str | None = None,
        options: Any = None,
    ) -> None:
        super().__init__(target, executor=executor, seed=seed, backend=backend)
        if shots < 0:
            raise ValidationError(f"shots must be >= 0, got {shots}")
        self.shots = int(shots)
        #: Optional :class:`repro.qem.EstimatorOptions` — when set,
        #: ``run`` routes through the composable mitigation engine
        #: (:mod:`repro.qem.engine`): evaluation switches to the exact
        #: *post-readout* distribution and the declared stack (ZNE /
        #: twirling / readout inversion) expands and folds around it.
        #: An empty stack is the unmitigated noisy baseline.
        self.options = options
        if options is not None:
            if not hasattr(options, "mitigation"):
                raise ValidationError(
                    "options must be a repro.qem.EstimatorOptions "
                    f"(got {type(options).__name__})"
                )
            if self.mode != "direct":
                raise ValidationError(
                    "mitigation options need a direct simulator target "
                    "(the engine folds exact post-readout distributions "
                    "only the local executor reports)"
                )

    def run(
        self,
        pubs: Iterable[Any],
        *,
        timeout: float | None = None,
    ) -> PrimitiveResult:
        """Evaluate *pubs*; results align with the input order."""
        coerced = [EstimatorPub.coerce(p) for p in pubs]
        if not coerced:
            raise ValidationError("Estimator.run needs at least one PUB")
        if self.options is not None:
            from repro.qem.engine import run_mitigated_estimator

            with span(
                "estimator.run", pubs=len(coerced), mode=self.mode
            ):
                return run_mitigated_estimator(
                    self, coerced, timeout=timeout
                )
        with span("estimator.run", pubs=len(coerced), mode=self.mode):
            per_pub = [
                (pub, self._point_schedules(pub), 0) for pub in coerced
            ]
            results = self._execute_all(per_pub, timeout=timeout)
            with span("measurement", pubs=len(coerced)):
                pub_results = [
                    self._assemble(pub, res)
                    for (pub, _, _), res in zip(per_pub, results)
                ]
        return PrimitiveResult(
            pub_results, metadata={"dispatch": self.mode, "seed": self._seed}
        )

    # ---- assembly --------------------------------------------------------------------

    def _assemble(self, pub: EstimatorPub, results: Sequence[Any]) -> PubResult:
        shape = pub.shape
        size = pub.size
        bind_idx = pub.binding_indices().reshape(-1) if shape else None
        obs_idx = pub.observable_indices().reshape(-1) if shape else None
        observables = pub.observables.flat()
        direct = self.mode == "direct"
        evs = np.empty(size, dtype=np.float64)
        variances = np.empty(size, dtype=np.float64)
        leakage = np.empty(size, dtype=np.float64) if direct else None
        # Each (binding, observable) pair evaluates once even when the
        # broadcast repeats it (e.g. a degenerate axis), and the lifted
        # observable matrices of the state path build once per
        # (observable, site-mapping) instead of once per point.
        memo: dict[tuple[int, int], tuple[float, float]] = {}
        matrices: dict[tuple[int, tuple[int, ...] | None], list] = {}
        for flat in range(size):
            b = int(bind_idx[flat]) if bind_idx is not None else 0
            o = int(obs_idx[flat]) if obs_idx is not None else 0
            key = (b, o)
            if key not in memo:
                memo[key] = self._evaluate(
                    observables[o], results[b], o, matrices
                )
            evs[flat], variances[flat] = memo[key]
            if leakage is not None:
                leakage[flat] = float(sum(results[b].leakage.values()))
        stds = (
            np.sqrt(variances / self.shots)
            if self.shots > 0
            else np.zeros(size, dtype=np.float64)
        )
        fields: dict[str, Any] = {
            "evs": evs.reshape(shape),
            "stds": stds.reshape(shape),
        }
        if leakage is not None:
            fields["leakage"] = leakage.reshape(shape)
        metadata: dict[str, Any] = {
            "shots": self.shots,
            "target": self._device_name(),
            "dispatch": self.mode,
        }
        profile = self._batch_profile(results)
        if profile is not None:
            metadata["profile"] = profile
        return PubResult(DataBin(shape=shape, **fields), metadata=metadata)

    def _evaluate(
        self,
        observable,
        result,
        obs_index: int = 0,
        matrices: dict | None = None,
    ) -> tuple[float, float]:
        """``(expectation, variance)`` of one observable at one point."""
        if self.mode == "direct":  # ExecutionResult: state available
            sites = result.measured_sites
            if observable.is_diagonal and sites:
                return self._distribution_moments(
                    observable, result.ideal_probabilities, len(sites)
                )
            from repro.control.hamiltonians import expectation

            dims = self._dims()
            state = result.final_state
            site_map = sites if sites else None
            matrix_key = (obs_index, site_map)
            entry = None if matrices is None else matrices.get(matrix_key)
            if entry is None:
                # [O, O^2]; the square materializes lazily (first
                # shot-budgeted evaluation) and is then shared by every
                # point of the PUB.
                entry = [observable.matrix(dims, site_map), None]
                if matrices is not None:
                    matrices[matrix_key] = entry
            op = entry[0]
            ev = expectation(state, op)
            if self.shots > 0:
                if entry[1] is None:
                    entry[1] = op @ op
                var = max(0.0, expectation(state, entry[1]) - ev * ev)
            else:
                var = 0.0
            return float(ev), var
        # ClientResult: only the exact outcome distribution travels.
        if not observable.is_diagonal:
            raise ValidationError(
                "non-diagonal observables need a direct simulator target "
                "(only the measured outcome distribution crosses the "
                f"{self.mode!r} boundary)"
            )
        return self._distribution_moments(
            observable, result.probabilities, None
        )

    def _distribution_moments(
        self, observable, probabilities, n_slots: int | None
    ) -> tuple[float, float]:
        """``(mean, variance)`` from one per-outcome pass."""
        values, probs = observable.values_per_outcome(
            probabilities, n_slots=n_slots
        )
        values = values.real
        mean = float(np.dot(values, probs))
        var = (
            max(0.0, float(np.dot(values * values, probs)) - mean * mean)
            if self.shots > 0
            else 0.0
        )
        return mean, var
