"""Observable algebra: the stack's single expectation engine.

An :class:`Observable` is a weighted sum of Pauli strings over
measurement *slots* (qubit indices). Every expectation value the stack
reports — result-type ``expectation_z`` accessors, Estimator PUBs,
VQE energies, sweep curves — evaluates through this one module, so
slot validation, width checks and qudit-embedding conventions live in
exactly one place instead of four result dataclasses.

Two evaluation paths, chosen by what the backend can provide:

* **distribution path** (:meth:`Observable.expectation`) — for
  *diagonal* observables (``I``/``Z`` factors only) against a
  bitstring outcome distribution. Levels ``>= 1`` were discriminated
  as bit ``1`` by the readout model, so on qudits this path carries
  the *threshold* convention: leakage counts toward the ``-1``
  eigenvalue, exactly like the sampled counts it must stay consistent
  with. This is the path the deprecated per-result ``expectation_z``
  shims delegate to.
* **state path** (:meth:`Observable.expectation_from_state`) — for
  arbitrary observables against an exact simulator state (ket or
  density matrix). The Pauli-string matrix is lifted into the device
  dimensions through :func:`repro.control.hamiltonians.embed_qubit_operator`,
  i.e. the *computational-subspace* convention: the operator is zero
  on leakage levels. This matches how the variational algorithms
  (GateVQE, CtrlVQE) have always scored their ansatz states.

The conventions agree exactly on true qubits (``dims == (2, ...)``)
and differ on qudits only by leakage-population terms — which is why
the Estimator evaluates diagonal observables through the distribution
path whenever the program captured measurements (bit-for-bit parity
with the pre-readout distribution ``Executable.run`` results carry)
and reserves the state path for non-diagonal observables and
capture-less programs.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.core.distributions import distribution_width
from repro.errors import ValidationError


def expectation_z(
    probabilities: Mapping[str, float],
    slot: int,
    *,
    n_slots: int | None = None,
    empty_message: str | None = None,
) -> float:
    """``<Z>`` of one slot — the engine behind the deprecated accessors.

    The four historical result types (``ExecutionResult``,
    ``ClientResult``, ``QuantumResult``, ``MitigatedResult``) all
    delegate their ``expectation_z`` here, and this entry delegates to
    the one validated kernel in :mod:`repro.core.distributions` — so
    slot/width validation, error wording and the threshold convention
    live in exactly one place. (:meth:`Observable.expectation` is the
    general engine for weighted Pauli sums; for the single-``Z`` case
    the two compute the identical sum.)
    """
    from repro.core.distributions import distribution_expectation_z

    return distribution_expectation_z(
        probabilities, slot, n_slots=n_slots, empty_message=empty_message
    )


#: Sparse term key: sorted ``((slot, pauli_char), ...)`` with pauli in
#: {"X", "Y", "Z"} (identity factors are simply absent).
_TermKey = tuple[tuple[int, str], ...]

_PAULIS = frozenset("XYZ")

#: Coefficients below this magnitude are dropped by the algebra.
_COEFF_TOL = 0.0


def _validate_key(key: _TermKey) -> _TermKey:
    seen: set[int] = set()
    for slot, ch in key:
        if not isinstance(slot, (int, np.integer)) or slot < 0:
            raise ValidationError(
                f"observable slot must be a non-negative int, got {slot!r}"
            )
        if slot in seen:
            raise ValidationError(
                f"observable term repeats slot {slot}"
            )
        if ch not in _PAULIS:
            raise ValidationError(
                f"unknown Pauli factor {ch!r}; expected one of X, Y, Z"
            )
        seen.add(int(slot))
    return tuple(sorted((int(s), str(c)) for s, c in key))


class Observable:
    """A weighted sum of Pauli strings over measurement slots.

    Construct through the classmethods (:meth:`z`, :meth:`from_pauli`,
    :meth:`from_terms`, :meth:`identity`) or combine existing
    observables with ``+``, ``-`` and scalar ``*`` — the algebra keeps
    terms merged and sparse. Instances are immutable and hashable on
    their term structure, so they can key caches and deduplicate
    broadcast PUB grids.
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[_TermKey, complex]) -> None:
        merged: dict[_TermKey, complex] = {}
        for key, coeff in terms.items():
            key = _validate_key(tuple(key))
            value = merged.get(key, 0.0) + complex(coeff)
            if value == 0 and key in merged:
                del merged[key]
            elif value != 0 or key not in merged:
                merged[key] = value
        self._terms: dict[_TermKey, complex] = {
            k: v for k, v in merged.items() if abs(v) > _COEFF_TOL
        }
        self._hash: int | None = None

    # ---- constructors ----------------------------------------------------------------

    @classmethod
    def identity(cls, coeff: complex = 1.0) -> "Observable":
        """The identity observable (a constant energy offset)."""
        return cls({(): coeff})

    @classmethod
    def z(cls, slot: int = 0, coeff: complex = 1.0) -> "Observable":
        """``Z`` on one measurement slot — the ``expectation_z`` engine."""
        return cls({((int(slot), "Z"),): coeff})

    @classmethod
    def from_pauli(cls, label: str, coeff: complex = 1.0) -> "Observable":
        """One Pauli string, e.g. ``"ZI"`` (index 0 is the leftmost
        character — the :func:`repro.control.hamiltonians.pauli_sum`
        convention)."""
        if not isinstance(label, str) or not label:
            raise ValidationError(f"Pauli label must be a non-empty str, got {label!r}")
        key = []
        for slot, ch in enumerate(label.upper()):
            if ch == "I":
                continue
            key.append((slot, ch))
        return cls({tuple(key): coeff})

    @classmethod
    def from_terms(cls, terms: Mapping[str, complex]) -> "Observable":
        """A weighted Pauli sum from ``{label: coefficient}``.

        Accepts exactly the dictionaries the variational experiments
        already use (e.g. :data:`repro.control.hamiltonians.H2_TERMS`).
        """
        out = cls({})
        for label, coeff in terms.items():
            out = out + cls.from_pauli(label, coeff)
        return out

    @classmethod
    def from_matrix(
        cls, matrix: np.ndarray, *, tol: float = 1e-12
    ) -> "Observable":
        """Pauli-decompose a dense ``2^n x 2^n`` qubit operator.

        ``coeff_P = tr(P M) / 2^n`` over the n-qubit Pauli basis;
        terms below *tol* are dropped. This is how the variational
        algorithms feed their dense Hamiltonians (e.g. the H2 matrix)
        into the Estimator.
        """
        import itertools

        from repro.sim.operators import kron_all, pauli

        m = np.asarray(matrix, dtype=np.complex128)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValidationError(
                f"observable matrix must be square, got shape {m.shape}"
            )
        n = int(m.shape[0]).bit_length() - 1
        if 2**n != m.shape[0] or n < 1:
            raise ValidationError(
                f"observable matrix dimension {m.shape[0]} is not a "
                "power of two >= 2"
            )
        dim = m.shape[0]
        terms: dict[str, complex] = {}
        for labels in itertools.product("IXYZ", repeat=n):
            p = kron_all([pauli(ch) for ch in labels])
            coeff = complex(np.trace(p @ m)) / dim  # paulis are Hermitian
            if abs(coeff) > tol:
                terms["".join(labels)] = coeff
        return cls.from_terms(terms)

    @classmethod
    def coerce(cls, obj: Any) -> "Observable":
        """Normalize *obj* into an Observable.

        Accepts an :class:`Observable`, a Pauli label string, or a
        ``{label: coefficient}`` mapping.
        """
        if isinstance(obj, cls):
            return obj
        if isinstance(obj, str):
            return cls.from_pauli(obj)
        if isinstance(obj, Mapping):
            return cls.from_terms(obj)
        raise ValidationError(
            f"cannot build an Observable from {type(obj).__name__}; "
            "expected an Observable, a Pauli label, or a {label: coeff} "
            "mapping"
        )

    # ---- structure -------------------------------------------------------------------

    @property
    def terms(self) -> dict[_TermKey, complex]:
        """The merged sparse terms (copy)."""
        return dict(self._terms)

    @property
    def num_slots(self) -> int:
        """Slots this observable touches: ``max slot + 1`` (0 if none)."""
        slots = [s for key in self._terms for s, _ in key]
        return max(slots) + 1 if slots else 0

    @property
    def is_diagonal(self) -> bool:
        """Whether every factor is ``Z`` (evaluable from counts)."""
        return all(ch == "Z" for key in self._terms for _, ch in key)

    @property
    def is_hermitian(self) -> bool:
        """Whether every coefficient is real (within rounding)."""
        return all(
            abs(c.imag) <= 1e-14 * max(1.0, abs(c))
            for c in self._terms.values()
        )

    def labels(self, width: int | None = None) -> dict[str, complex]:
        """Dense ``{label: coefficient}`` view padded to *width* slots."""
        width = self.num_slots if width is None else int(width)
        if width < self.num_slots:
            raise ValidationError(
                f"width {width} cannot hold an observable on "
                f"{self.num_slots} slot(s)"
            )
        out: dict[str, complex] = {}
        for key, coeff in self._terms.items():
            chars = ["I"] * max(width, 1)
            for slot, ch in key:
                chars[slot] = ch
            out["".join(chars)] = coeff
        return out

    # ---- algebra ---------------------------------------------------------------------

    def __add__(self, other: "Observable | float | int | complex") -> "Observable":
        if isinstance(other, (int, float, complex)):
            other = Observable.identity(other)
        if not isinstance(other, Observable):
            return NotImplemented
        terms = dict(self._terms)
        for key, coeff in other._terms.items():
            terms[key] = terms.get(key, 0.0) + coeff
        return Observable(terms)

    __radd__ = __add__

    def __sub__(self, other: "Observable | float | int | complex") -> "Observable":
        return self + (-1.0) * (
            Observable.identity(other)
            if isinstance(other, (int, float, complex))
            else other
        )

    def __mul__(self, scalar: float | int | complex) -> "Observable":
        if not isinstance(scalar, (int, float, complex)):
            return NotImplemented
        return Observable({k: v * scalar for k, v in self._terms.items()})

    __rmul__ = __mul__

    def __neg__(self) -> "Observable":
        return self * -1.0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Observable) and self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __iter__(self) -> Iterator[tuple[_TermKey, complex]]:
        return iter(self._terms.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._terms:
            return "Observable(0)"
        parts = []
        for label, coeff in sorted(self.labels().items()):
            c = coeff.real if abs(coeff.imag) < 1e-14 else coeff
            parts.append(f"{c:+g}*{label}")
        return f"Observable({' '.join(parts)})"

    # ---- distribution path -----------------------------------------------------------

    def values_per_outcome(
        self, probabilities: Mapping[str, float], *, n_slots: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(values, probs)`` of the observable per measured outcome.

        Diagonal observables only. Validates the distribution is
        non-empty, the key widths are consistent, and every touched
        slot exists; the returned arrays align outcome-for-outcome.
        """
        if not self.is_diagonal:
            raise ValidationError(
                "observable has X/Y factors and cannot be evaluated from "
                "a Z-basis outcome distribution; evaluate it from the "
                "state (direct simulator targets) instead"
            )
        width = distribution_width(probabilities, n_slots=n_slots)
        if self.num_slots > width:
            raise ValidationError(
                f"slot {self.num_slots - 1} out of range: result has "
                f"{width} measured slot(s)"
            )
        keys = list(probabilities)
        probs = np.array([probabilities[k] for k in keys], dtype=np.float64)
        # (outcome, slot) sign table built once; each term then reduces
        # over its touched slots instead of re-walking every key.
        bit_signs = np.array(
            [[1.0 if ch == "0" else -1.0 for ch in k] for k in keys],
            dtype=np.float64,
        )
        values = np.zeros(len(keys), dtype=np.complex128)
        for term, coeff in self._terms.items():
            slots = [s for s, _ in term]
            values += coeff * bit_signs[:, slots].prod(axis=1)
        return values, probs

    def expectation(
        self, probabilities: Mapping[str, float], *, n_slots: int | None = None
    ) -> float:
        """Expectation against a bitstring distribution (diagonal only).

        The threshold-discrimination convention: whatever the readout
        called bit ``1`` (including leakage levels on qudits) carries
        the ``-1`` eigenvalue. Raises
        :class:`~repro.errors.ValidationError` on an empty
        distribution, inconsistent key widths, out-of-range slots, or
        non-diagonal terms.
        """
        values, probs = self.values_per_outcome(
            probabilities, n_slots=n_slots
        )
        total = complex(np.dot(values, probs))
        return total.real if self.is_hermitian else total  # type: ignore[return-value]

    def variance(
        self, probabilities: Mapping[str, float], *, n_slots: int | None = None
    ) -> float:
        """``E[O^2] - E[O]^2`` under the distribution (diagonal only)."""
        values, probs = self.values_per_outcome(
            probabilities, n_slots=n_slots
        )
        values = values.real
        mean = float(np.dot(values, probs))
        return max(0.0, float(np.dot(values * values, probs)) - mean * mean)

    # ---- state path ------------------------------------------------------------------

    def qubit_matrix(self, width: int | None = None) -> np.ndarray:
        """The dense ``2^w x 2^w`` matrix on *width* qubit slots."""
        from repro.control.hamiltonians import pauli_sum

        width = max(self.num_slots, 1) if width is None else int(width)
        return pauli_sum(self.labels(width), width)

    def matrix(
        self,
        dims: Sequence[int],
        sites: Sequence[int] | None = None,
    ) -> np.ndarray:
        """The observable lifted into the full device space.

        *dims* are the per-site Hilbert dimensions; *sites* maps
        observable slot ``i`` to device site ``sites[i]`` (identity:
        slot i = site i). Qudit embedding goes through
        :func:`repro.control.hamiltonians.embed_qubit_operator`: the
        computational-subspace convention, zero on leakage levels.
        """
        from repro.control.hamiltonians import embed_qubit_operator, pauli_sum

        n = len(dims)
        sites = list(range(self.num_slots)) if sites is None else list(sites)
        if len(set(sites)) != len(sites):
            raise ValidationError("observable site mapping must be distinct")
        if self.num_slots > len(sites):
            raise ValidationError(
                f"observable touches {self.num_slots} slot(s) but only "
                f"{len(sites)} site(s) are mapped"
            )
        if any(not 0 <= s < n for s in sites):
            raise ValidationError(
                f"observable site mapping {sites} out of range for "
                f"{n} device site(s)"
            )
        # Re-key each term from slots onto device sites, then embed the
        # dense n-qubit operator into the qudit dimensions.
        site_terms: dict[str, complex] = {}
        for key, coeff in self._terms.items():
            chars = ["I"] * n
            for slot, ch in key:
                chars[sites[slot]] = ch
            label = "".join(chars)
            site_terms[label] = site_terms.get(label, 0.0) + coeff
        return embed_qubit_operator(pauli_sum(site_terms, n), dims)

    def expectation_from_state(
        self,
        state: np.ndarray,
        dims: Sequence[int],
        sites: Sequence[int] | None = None,
    ) -> float:
        """``<psi|O|psi>`` / ``tr(rho O)`` in the full device space."""
        from repro.control.hamiltonians import expectation

        value = expectation(state, self.matrix(dims, sites))
        return value

    def variance_from_state(
        self,
        state: np.ndarray,
        dims: Sequence[int],
        sites: Sequence[int] | None = None,
    ) -> float:
        """``<O^2> - <O>^2`` in the full device space."""
        from repro.control.hamiltonians import expectation

        op = self.matrix(dims, sites)
        mean = expectation(state, op)
        return max(0.0, expectation(state, op @ op) - mean * mean)
