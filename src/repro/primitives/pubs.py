"""PUBs — Primitive Unified Blocs — with NumPy-style broadcasting.

A PUB is one unit of primitive work: a program plus the axes it is
evaluated over. ``Sampler`` takes ``(program, parameter_values,
shots)``; ``Estimator`` takes ``(program, observables,
parameter_values)``. Parameter values and observables are *arrays*
— any leading shape — and broadcast against each other exactly like
NumPy operands (:func:`numpy.broadcast_shapes`), so a 1-D parameter
scan against a ``(n_obs, 1)``-shaped observable array becomes a 2-D
grid without the caller writing a loop.

:class:`BindingsArray` normalizes parameter values (positional array
with a trailing parameter axis, or a ``{name: array}`` mapping whose
value shapes broadcast together); :class:`ObservablesArray` normalizes
(nested) observable collections into an object ndarray. The PUB's
:attr:`shape` is their :func:`numpy.broadcast_shapes`, and
:meth:`binding_indices` / :meth:`observable_indices` give each
broadcast point its source entry — the primitive executes each
*unique* binding point once and fans the result out across the
observable axes.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.api.program import Program
from repro.errors import ValidationError
from repro.primitives.observables import Observable


class BindingsArray:
    """Parameter bindings for one program, any broadcast shape.

    Normalized to a dense ``shape + (num_parameters,)`` float array in
    the program's declared parameter order. ``None`` (no bindings) is
    the scalar shape ``()`` with zero parameters — valid only for a
    non-parametric program.
    """

    __slots__ = ("names", "shape", "_values")

    def __init__(self, data: Any, parameter_names: Sequence[str]) -> None:
        self.names = tuple(str(n) for n in parameter_names)
        n = len(self.names)
        if data is None:
            if n:
                raise ValidationError(
                    f"program declares parameters {list(self.names)} but the "
                    "PUB carries no parameter values"
                )
            self.shape: tuple[int, ...] = ()
            self._values = np.zeros((0,), dtype=np.float64)
            return
        if isinstance(data, Mapping):
            extra = set(map(str, data)) - set(self.names)
            missing = set(self.names) - set(map(str, data))
            if extra or missing:
                raise ValidationError(
                    f"parameter values do not match program parameters: "
                    f"missing {sorted(missing)}, unknown {sorted(extra)}"
                )
            arrays = {str(k): np.asarray(v, dtype=np.float64) for k, v in data.items()}
            self.shape = np.broadcast_shapes(*(a.shape for a in arrays.values()))
            stacked = np.empty(self.shape + (n,), dtype=np.float64)
            for j, name in enumerate(self.names):
                stacked[..., j] = np.broadcast_to(arrays[name], self.shape)
            self._values = stacked
            return
        arr = np.asarray(data, dtype=np.float64)
        if n == 0:
            raise ValidationError(
                "the program declares no parameters; drop the parameter "
                "values from the PUB"
            )
        if arr.ndim == 1 and n == 1:
            # A flat array for a single-parameter program is always a
            # scan — including length 1, so a degenerate 1-point grid
            # keeps the same result shape as every other length (a
            # single *point* is the mapping form, or shape ()).
            arr = arr[:, None]
        if arr.ndim == 0 or arr.shape[-1] != n:
            raise ValidationError(
                f"parameter values must have a trailing axis of length "
                f"{n} (program parameters {list(self.names)}), got shape "
                f"{arr.shape}"
            )
        self.shape = arr.shape[:-1]
        self._values = np.ascontiguousarray(arr)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def num_parameters(self) -> int:
        return len(self.names)

    def values(self) -> np.ndarray:
        """The dense ``shape + (num_parameters,)`` value array."""
        return self._values

    def point(self, flat_index: int) -> dict[str, float]:
        """The ``{name: value}`` mapping of one flat point index."""
        if not self.names:
            return {}
        flat = self._values.reshape(-1, len(self.names))
        row = flat[flat_index]
        return {name: float(v) for name, v in zip(self.names, row)}


class ObservablesArray:
    """An object ndarray of :class:`Observable`, any broadcast shape."""

    __slots__ = ("shape", "_array")

    def __init__(self, data: Any) -> None:
        self._array = self._coerce(data)
        self.shape = self._array.shape

    @staticmethod
    def _coerce(data: Any) -> np.ndarray:
        if isinstance(data, ObservablesArray):
            return data._array
        if isinstance(data, (Observable, str, Mapping)):
            out = np.empty((), dtype=object)
            out[()] = Observable.coerce(data)
            return out
        if isinstance(data, np.ndarray):
            # Any dtype: object arrays of Observables/mappings, but
            # also plain string arrays of Pauli labels.
            out = np.empty(data.shape, dtype=object)
            for idx in np.ndindex(*data.shape):
                entry = data[idx]
                out[idx] = Observable.coerce(
                    str(entry) if isinstance(entry, np.str_) else entry
                )
            return out
        if isinstance(data, Sequence):
            children = [ObservablesArray._coerce(c) for c in data]
            if not children:
                raise ValidationError("observables array cannot be empty")
            shape = children[0].shape
            if any(c.shape != shape for c in children):
                raise ValidationError(
                    "ragged observables array: nested entries have "
                    "mismatched shapes"
                )
            out = np.empty((len(children),) + shape, dtype=object)
            for i, c in enumerate(children):
                for idx in np.ndindex(*shape):
                    out[(i,) + idx] = c[idx]
            return out
        raise ValidationError(
            f"cannot build observables from {type(data).__name__}"
        )

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def flat(self) -> list[Observable]:
        return list(self._array.reshape(-1))

    def __getitem__(self, idx) -> Observable:
        return self._array[idx]


def _broadcast_flat_indices(
    inner_shape: tuple[int, ...], inner_size: int, shape: tuple[int, ...]
) -> np.ndarray:
    """Flat source index of each broadcast point, shaped *shape*."""
    idx = np.arange(inner_size, dtype=np.intp).reshape(inner_shape or ())
    return np.ascontiguousarray(np.broadcast_to(idx, shape))


class SamplerPub:
    """One Sampler work unit: ``(program, parameter_values, shots)``."""

    __slots__ = ("program", "bindings", "shots", "shape")

    def __init__(
        self,
        program: Any,
        parameter_values: Any = None,
        shots: int | None = None,
    ) -> None:
        self.program = Program.coerce(program)
        self.bindings = BindingsArray(parameter_values, self.program.parameters)
        if shots is not None and int(shots) < 0:
            raise ValidationError(f"shots must be >= 0, got {shots}")
        self.shots = None if shots is None else int(shots)
        self.shape = self.bindings.shape

    @classmethod
    def coerce(cls, pub_like: Any) -> "SamplerPub":
        if isinstance(pub_like, cls):
            return pub_like
        if isinstance(pub_like, tuple):
            if not 1 <= len(pub_like) <= 3:
                raise ValidationError(
                    "a Sampler PUB is (program, parameter_values=None, "
                    f"shots=None); got a {len(pub_like)}-tuple"
                )
            return cls(*pub_like)
        return cls(pub_like)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def binding_indices(self) -> np.ndarray:
        return _broadcast_flat_indices(
            self.bindings.shape, self.bindings.size, self.shape
        )


class EstimatorPub:
    """One Estimator work unit: ``(program, observables, parameter_values)``."""

    __slots__ = ("program", "observables", "bindings", "shape")

    def __init__(
        self,
        program: Any,
        observables: Any,
        parameter_values: Any = None,
    ) -> None:
        self.program = Program.coerce(program)
        self.observables = ObservablesArray(observables)
        for obs in self.observables.flat():
            # Estimator results are real arrays; a non-Hermitian
            # observable would silently lose its imaginary part.
            if not obs.is_hermitian:
                raise ValidationError(
                    f"Estimator observables must be Hermitian (real "
                    f"coefficients); got {obs!r}"
                )
        self.bindings = BindingsArray(parameter_values, self.program.parameters)
        self.shape = np.broadcast_shapes(
            self.observables.shape, self.bindings.shape
        )

    @classmethod
    def coerce(cls, pub_like: Any) -> "EstimatorPub":
        if isinstance(pub_like, cls):
            return pub_like
        if isinstance(pub_like, tuple):
            if not 2 <= len(pub_like) <= 3:
                raise ValidationError(
                    "an Estimator PUB is (program, observables, "
                    f"parameter_values=None); got a {len(pub_like)}-tuple"
                )
            return cls(*pub_like)
        raise ValidationError(
            "an Estimator PUB needs at least (program, observables)"
        )

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def binding_indices(self) -> np.ndarray:
        """Flat index into the bindings for each broadcast point."""
        return _broadcast_flat_indices(
            self.bindings.shape, self.bindings.size, self.shape
        )

    def observable_indices(self) -> np.ndarray:
        """Flat index into the observables for each broadcast point."""
        return _broadcast_flat_indices(
            self.observables.shape, self.observables.size, self.shape
        )
