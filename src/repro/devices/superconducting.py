"""Simulated superconducting transmon device.

Models a line of fixed-frequency transmons with tunable couplers:

* three levels per transmon (the |2> state matters for DRAG and
  ctrl-VQE), anharmonicity ~ -300 MHz,
* one drive, readout and acquire port per qubit; one coupler port per
  neighboring pair whose drive applies an effective ZZ interaction
  (phase accumulation on |11>), giving an exact CZ at pulse area 1/2,
* DRAG ``x``/``sx`` calibrations, virtual ``rz``, flat-top ``cz``,
  dispersive-style ``measure``,
* minutes-scale qubit-frequency drift (paper §2.1: superconducting
  transition frequencies "drift on timescales of minutes to hours" and
  need Ramsey-based tracking).
"""

from __future__ import annotations


import numpy as np

from repro.core.constraints import PulseConstraints
from repro.core.instructions import Capture, Play, ShiftPhase
from repro.core.port import Port
from repro.core.schedule import PulseSchedule
from repro.core.waveform import (
    drag_waveform,
    gaussian_square_waveform,
)
from repro.devices.base import DeviceConfig, SimulatedDevice
from repro.devices.calibrations import CalibrationEntry, CalibrationSet
from repro.qdmi.types import OperationInfo
from repro.sim.measurement import ReadoutModel
from repro.sim.model import DecoherenceSpec, SystemModel, transmon_model
from repro.sim.operators import basis_state


def _zz_projector(site_a: int, site_b: int, dims: tuple[int, ...]) -> np.ndarray:
    """Projector onto |1>_a |1>_b (identity elsewhere): the effective
    coupler Hamiltonian. ``exp(-i*pi*P11)`` is exactly CZ."""
    dim = int(np.prod(dims))
    proj = np.zeros((dim, dim), dtype=np.complex128)
    labels = [0] * len(dims)
    # Sum |x><x| over all basis states with 1 at both sites.
    for idx in np.ndindex(*dims):
        if idx[site_a] == 1 and idx[site_b] == 1:
            v = basis_state(list(idx), dims)
            proj += np.outer(v, v.conj())
    del labels
    return proj


class SuperconductingDevice(SimulatedDevice):
    """A transmon chip exposed over QDMI."""

    #: Calibrated pulse shape parameters (samples).
    X_DURATION = 32
    X_SIGMA = 8
    CZ_DURATION = 64
    CZ_SIGMA = 8
    CZ_WIDTH = 32
    READOUT_DURATION = 96

    def __init__(
        self,
        name: str = "sc-transmon",
        num_qubits: int = 2,
        *,
        seed: int = 0,
        with_decoherence: bool = False,
        t1: float = 80e-6,
        t2: float = 60e-6,
        drift_rate: float = 1e3,
        rabi_rate: float = 50e6,
        coupler_rate: float = 20e6,
        drag_beta: float = 0.0,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        dt = 1e-9
        base_freqs = [5.0e9 + 0.1e9 * q for q in range(num_qubits)]
        anharms = [-300e6] * num_qubits
        rabis = [rabi_rate] * num_qubits
        pairs = [(q, q + 1) for q in range(num_qubits - 1)]
        deco = (
            [DecoherenceSpec(t1=t1, t2=t2)] * num_qubits
            if with_decoherence
            else None
        )

        def model_factory(offsets: np.ndarray) -> SystemModel:
            model = transmon_model(
                num_qubits,
                qubit_frequencies=[f + o for f, o in zip(base_freqs, offsets)],
                anharmonicities=anharms,
                rabi_rates=rabis,
                couplings={p: coupler_rate for p in pairs},
                dt=dt,
                levels=3,
                decoherence=deco,
            )
            # Replace exchange couplers with the effective ZZ projector
            # (clean CZ physics; see module docstring).
            from repro.sim.model import ChannelCoupling

            for lo, hi in pairs:
                model.channels[f"q{lo}q{hi}-coupler-port"] = ChannelCoupling(
                    operator=_zz_projector(lo, hi, model.dims),
                    reference_frequency=0.0,
                    rabi_rate=coupler_rate,
                    hermitian=True,
                )
            return model

        ports: list[Port] = []
        for q in range(num_qubits):
            ports.append(Port.drive(q))
            ports.append(Port.readout(q))
            ports.append(Port.acquire(q))
        for lo, hi in pairs:
            ports.append(Port.coupler(lo, hi))

        operations = [
            OperationInfo("x", 1),
            OperationInfo("sx", 1),
            OperationInfo("rz", 1, ("theta",), is_virtual=True),
            OperationInfo("cz", 2),
            OperationInfo("measure", 1),
        ]

        constraints = PulseConstraints(
            dt=dt,
            granularity=8,
            min_pulse_duration=8,
            max_pulse_duration=65536,
            max_amplitude=1.0,
            supported_envelopes=frozenset(
                {"gaussian", "drag", "gaussian_square", "constant", "square"}
            ),
            min_frequency=0.0,
            max_frequency=12e9,
            num_memory_slots=max(num_qubits, 8),
            supports_raw_samples=True,
        )

        config = DeviceConfig(
            name=name,
            technology="superconducting",
            num_sites=num_qubits,
            constraints=constraints,
            drift_rate=drift_rate,
            extra={
                "anharmonicities": anharms,
                "fidelities": {
                    "x": 0.9995,
                    "sx": 0.9996,
                    "cz": 0.993,
                    "measure": 0.985,
                },
            },
        )

        readout = {
            q: ReadoutModel(p01=0.01, p10=0.02) for q in range(num_qubits)
        }

        super().__init__(
            config,
            model_factory=model_factory,
            base_frequencies=base_freqs,
            ports=ports,
            operations=operations,
            calibrations=CalibrationSet(),
            readout=readout,
            seed=seed,
        )
        self._rabi = rabi_rate
        self._coupler_rate = coupler_rate
        self._drag_beta = drag_beta
        self._pairs = pairs
        self._build_calibrations(num_qubits)

    # ---- calibration builders --------------------------------------------------------

    def _pi_amp(self, rotation: float) -> float:
        """Amplitude for a DRAG pulse producing *rotation* (units of pi).

        theta = 2*pi * rabi * amp * I * dt, with I the unit-amplitude
        envelope integral in samples; theta = pi * rotation.
        """
        unit = drag_waveform(self.X_DURATION, 1.0, self.X_SIGMA, 0.0)
        integral = float(np.real(unit.samples()).sum()) * self.config.constraints.dt
        return rotation * 0.5 / (self._rabi * integral)

    def x_waveform(self, rotation: float = 1.0):
        """The calibrated DRAG waveform for a pi (or pi*rotation) pulse."""
        return drag_waveform(
            self.X_DURATION, self._pi_amp(rotation), self.X_SIGMA, self._drag_beta
        )

    def cz_waveform(self):
        """The calibrated flat-top coupler waveform for CZ."""
        unit = gaussian_square_waveform(
            self.CZ_DURATION, 1.0, self.CZ_SIGMA, self.CZ_WIDTH
        )
        integral = float(np.real(unit.samples()).sum()) * self.config.constraints.dt
        amp = 0.5 / (self._coupler_rate * integral)
        return gaussian_square_waveform(
            self.CZ_DURATION, amp, self.CZ_SIGMA, self.CZ_WIDTH
        )

    def readout_waveform(self):
        """The readout stimulus pulse."""
        return gaussian_square_waveform(self.READOUT_DURATION, 0.3, 8, 64)

    def set_drag_beta(self, beta: float) -> None:
        """Write-back hook for DRAG calibration: re-register the X/SX
        calibrations with the new quadrature coefficient."""
        self._drag_beta = float(beta)
        for q in range(self.config.num_sites):
            self.calibrations.add(self._make_x_entry("x", q, 1.0), overwrite=True)
            self.calibrations.add(self._make_x_entry("sx", q, 0.5), overwrite=True)
        # A beta write-back changes compiled pulses without moving any
        # believed frequency; the epoch bump is what invalidates caches.
        self.bump_calibration()

    def _build_calibrations(self, num_qubits: int) -> None:
        cal = self.calibrations

        for q in range(num_qubits):
            cal.add(self._make_x_entry("x", q, rotation=1.0))
            cal.add(self._make_x_entry("sx", q, rotation=0.5))
            cal.add(self._make_rz_entry(q))
            cal.add(self._make_measure_entry(q))
        for lo, hi in self._pairs:
            cal.add(self._make_cz_entry(lo, hi))

    def _make_x_entry(self, name: str, q: int, rotation: float) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            port = self.drive_port(q)
            sched.append(
                Play(port, self.default_frame(port), self.x_waveform(rotation))
            )

        return CalibrationEntry(name, (q,), builder, self.X_DURATION)

    def _make_rz_entry(self, q: int) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            port = self.drive_port(q)
            sched.append(ShiftPhase(port, self.default_frame(port), -float(params[0])))

        return CalibrationEntry("rz", (q,), builder, 0, num_params=1, is_virtual=True)

    def _make_cz_entry(self, lo: int, hi: int) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            dlo, dhi = self.drive_port(lo), self.drive_port(hi)
            coupler = self.coupler_port(lo, hi)
            sched.barrier(dlo, dhi, coupler)
            sched.append(Play(coupler, self.default_frame(coupler), self.cz_waveform()))
            sched.barrier(dlo, dhi, coupler)

        return CalibrationEntry("cz", (lo, hi), builder, self.CZ_DURATION)

    def _make_measure_entry(self, q: int) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            drive = self.drive_port(q)
            ro, acq = self.readout_port(q), self.acquire_port(q)
            sched.barrier(drive, ro, acq)
            sched.append(Play(ro, self.default_frame(ro), self.readout_waveform()))
            sched.append(
                Capture(
                    acq,
                    self.default_frame(acq),
                    int(params[0]),
                    self.READOUT_DURATION,
                )
            )

        return CalibrationEntry(
            "measure", (q,), builder, self.READOUT_DURATION, num_params=1
        )
