"""Simulated trapped-ion device.

Models a linear ion chain:

* two-level optical qubits (no leakage level),
* one RF/addressing port per ion; effective entangling ports per ion
  pair (the shared motional bus compiled down to an effective ZZ
  interaction, the standard Mølmer–Sørensen result after closing the
  phase-space loop),
* much slower gates (kHz-scale Rabi rates) with coarse 10 ns samples
  and granularity 16 — the platform diversity that exercises the
  constraint-aware JIT experiment (E7),
* hour-scale trap drift (paper §2.1: "motional modes frequencies
  experiencing hour-to-hour drifts of a few hundred hertz"), far slower
  than the superconducting device's drift.
"""

from __future__ import annotations

import numpy as np

from repro.core.constraints import PulseConstraints
from repro.core.instructions import Capture, Play, ShiftPhase
from repro.core.port import Port, PortDirection, PortKind
from repro.core.schedule import PulseSchedule
from repro.core.waveform import gaussian_square_waveform
from repro.devices.base import DeviceConfig, SimulatedDevice
from repro.devices.calibrations import CalibrationEntry, CalibrationSet
from repro.qdmi.types import OperationInfo
from repro.sim.measurement import ReadoutModel
from repro.sim.model import ChannelCoupling, SystemModel
from repro.sim.operators import basis_state, destroy_on


def _zz_projector(site_a: int, site_b: int, dims: tuple[int, ...]) -> np.ndarray:
    """Projector onto |1>_a |1>_b in the full space."""
    dim = int(np.prod(dims))
    proj = np.zeros((dim, dim), dtype=np.complex128)
    for idx in np.ndindex(*dims):
        if idx[site_a] == 1 and idx[site_b] == 1:
            v = basis_state(list(idx), dims)
            proj += np.outer(v, v.conj())
    return proj


class TrappedIonDevice(SimulatedDevice):
    """An ion chain exposed over QDMI."""

    X_DURATION = 512  # samples of 10 ns -> 5.12 us pi pulse
    X_SIGMA = 64
    X_WIDTH = 384
    MS_DURATION = 2048  # ~20 us entangling gate
    MS_SIGMA = 64
    MS_WIDTH = 1792
    READOUT_DURATION = 4096  # fluorescence collection window

    def __init__(
        self,
        name: str = "ion-chain",
        num_qubits: int = 2,
        *,
        seed: int = 0,
        drift_rate: float = 10.0,
        rabi_rate: float = 125e3,
        ms_rate: float = 50e3,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        dt = 1e-8
        # Optical qubit transitions (order-of-magnitude: hundreds of THz
        # would be unwieldy; we model the addressing AOM offset band).
        base_freqs = [200e6 + 1e6 * q for q in range(num_qubits)]
        # All-to-all connectivity through the shared motional bus.
        pairs = [
            (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
        ]
        dims = tuple([2] * num_qubits)

        def model_factory(offsets: np.ndarray) -> SystemModel:
            dim = int(np.prod(dims))
            channels: dict[str, ChannelCoupling] = {}
            for q in range(num_qubits):
                channels[f"ion{q}-rf-port"] = ChannelCoupling(
                    operator=destroy_on(q, dims),
                    reference_frequency=float(base_freqs[q] + offsets[q]),
                    rabi_rate=rabi_rate,
                )
            for lo, hi in pairs:
                channels[f"ion{lo}ion{hi}-ms-port"] = ChannelCoupling(
                    operator=_zz_projector(lo, hi, dims),
                    reference_frequency=0.0,
                    rabi_rate=ms_rate,
                    hermitian=True,
                )
            return SystemModel(
                dims=dims,
                drift=np.zeros((dim, dim), dtype=np.complex128),
                channels=channels,
                dt=dt,
                site_frequencies=tuple(
                    float(f + o) for f, o in zip(base_freqs, offsets)
                ),
            )

        ports: list[Port] = []
        for q in range(num_qubits):
            ports.append(Port(f"ion{q}-rf-port", PortKind.RF, (q,)))
            ports.append(Port(f"ion{q}-readout-port", PortKind.READOUT, (q,)))
            ports.append(
                Port(
                    f"ion{q}-acquire-port",
                    PortKind.ACQUIRE,
                    (q,),
                    PortDirection.OUTPUT,
                )
            )
        for lo, hi in pairs:
            ports.append(Port(f"ion{lo}ion{hi}-ms-port", PortKind.COUPLER, (lo, hi)))

        operations = [
            OperationInfo("x", 1),
            OperationInfo("sx", 1),
            OperationInfo("rz", 1, ("theta",), is_virtual=True),
            OperationInfo("cz", 2),
            OperationInfo("measure", 1),
        ]

        constraints = PulseConstraints(
            dt=dt,
            granularity=16,
            min_pulse_duration=16,
            max_pulse_duration=1 << 20,
            max_amplitude=1.0,
            # The ion AWG only understands parametric flat-top pulses.
            supported_envelopes=frozenset(
                {"gaussian_square", "constant", "square", "gaussian"}
            ),
            min_frequency=0.0,
            max_frequency=1e9,
            num_memory_slots=max(num_qubits, 8),
            supports_raw_samples=False,
        )

        config = DeviceConfig(
            name=name,
            technology="trapped-ion",
            num_sites=num_qubits,
            constraints=constraints,
            drift_rate=drift_rate,
            extra={
                "fidelities": {"x": 0.9999, "sx": 0.9999, "cz": 0.997, "measure": 0.995}
            },
        )

        readout = {q: ReadoutModel(p01=0.002, p10=0.004) for q in range(num_qubits)}

        super().__init__(
            config,
            model_factory=model_factory,
            base_frequencies=base_freqs,
            ports=ports,
            operations=operations,
            calibrations=CalibrationSet(),
            readout=readout,
            seed=seed,
        )
        self._rabi = rabi_rate
        self._ms_rate = ms_rate
        self._pairs = pairs
        self._build_calibrations(num_qubits)

    # ---- calibrated waveforms --------------------------------------------------------

    def x_waveform(self, rotation: float = 1.0):
        """Flat-top addressing pulse for a pi*rotation rotation."""
        unit = gaussian_square_waveform(
            self.X_DURATION, 1.0, self.X_SIGMA, self.X_WIDTH
        )
        integral = float(np.real(unit.samples()).sum()) * self.config.constraints.dt
        amp = rotation * 0.5 / (self._rabi * integral)
        return gaussian_square_waveform(
            self.X_DURATION, amp, self.X_SIGMA, self.X_WIDTH
        )

    def ms_waveform(self):
        """Effective entangling (geometric-phase) pulse for CZ."""
        unit = gaussian_square_waveform(
            self.MS_DURATION, 1.0, self.MS_SIGMA, self.MS_WIDTH
        )
        integral = float(np.real(unit.samples()).sum()) * self.config.constraints.dt
        amp = 0.5 / (self._ms_rate * integral)
        return gaussian_square_waveform(
            self.MS_DURATION, amp, self.MS_SIGMA, self.MS_WIDTH
        )

    def readout_waveform(self):
        """Fluorescence stimulus pulse."""
        return gaussian_square_waveform(self.READOUT_DURATION, 0.2, 64, 3840)

    def _build_calibrations(self, num_qubits: int) -> None:
        cal = self.calibrations
        for q in range(num_qubits):
            cal.add(self._make_x_entry("x", q, 1.0))
            cal.add(self._make_x_entry("sx", q, 0.5))
            cal.add(self._make_rz_entry(q))
            cal.add(self._make_measure_entry(q))
        for lo, hi in self._pairs:
            cal.add(self._make_cz_entry(lo, hi))

    def _make_x_entry(self, name: str, q: int, rotation: float) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            port = self.drive_port(q)
            sched.append(
                Play(port, self.default_frame(port), self.x_waveform(rotation))
            )

        return CalibrationEntry(name, (q,), builder, self.X_DURATION)

    def _make_rz_entry(self, q: int) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            port = self.drive_port(q)
            sched.append(ShiftPhase(port, self.default_frame(port), -float(params[0])))

        return CalibrationEntry("rz", (q,), builder, 0, num_params=1, is_virtual=True)

    def _make_cz_entry(self, lo: int, hi: int) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            dlo, dhi = self.drive_port(lo), self.drive_port(hi)
            ms = self.coupler_port(lo, hi)
            sched.barrier(dlo, dhi, ms)
            sched.append(Play(ms, self.default_frame(ms), self.ms_waveform()))
            sched.barrier(dlo, dhi, ms)

        return CalibrationEntry("cz", (lo, hi), builder, self.MS_DURATION)

    def _make_measure_entry(self, q: int) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            drive = self.drive_port(q)
            ro, acq = self.readout_port(q), self.acquire_port(q)
            sched.barrier(drive, ro, acq)
            sched.append(Play(ro, self.default_frame(ro), self.readout_waveform()))
            sched.append(
                Capture(
                    acq,
                    self.default_frame(acq),
                    int(params[0]),
                    self.READOUT_DURATION,
                )
            )

        return CalibrationEntry(
            "measure", (q,), builder, self.READOUT_DURATION, num_params=1
        )
