"""Gate calibrations: the gate -> pulse lowering tables.

Each device publishes, per (operation, site tuple), a *builder* that
appends the operation's pulse implementation to a schedule. This is the
"provided calibration waveforms" mechanism of the IBM pulse dialect the
paper adopts (§5.2): "every gate has an associated pulse waveform", and
the gate->pulse lowering pass replaces each gate op with its calibrated
pulse sequence.

Footnote 2 of the paper highlights that treating pulses as first-class
IR makes the native gate set *extensible*: "an expert can define a new
quantum gate by providing its pulse waveform". That is
:meth:`CalibrationSet.register_custom_gate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.frame import Frame
from repro.core.instructions import Play
from repro.core.port import Port
from repro.core.schedule import PulseSchedule
from repro.core.waveform import Waveform
from repro.errors import LoweringError, ValidationError

#: A builder appends one operation's pulses to *schedule*; *params* are
#: the operation's continuous parameters (e.g. the angle of ``rz``).
CalibrationBuilder = Callable[[PulseSchedule, Sequence[float]], None]


@dataclass(frozen=True)
class CalibrationEntry:
    """One calibrated operation on concrete sites.

    Attributes
    ----------
    operation:
        Operation name (``"x"``, ``"cz"``, ``"measure"``...).
    sites:
        The concrete site tuple this calibration applies to.
    builder:
        Appends the pulse implementation to a schedule.
    duration:
        Wall-clock cost in samples (0 for virtual operations).
    num_params:
        Number of continuous parameters the builder expects.
    is_virtual:
        True when the operation is frame updates only.
    """

    operation: str
    sites: tuple[int, ...]
    builder: CalibrationBuilder
    duration: int
    num_params: int = 0
    is_virtual: bool = False

    def __post_init__(self) -> None:
        if not self.operation:
            raise ValidationError("calibration operation name must be non-empty")
        if self.duration < 0:
            raise ValidationError("calibration duration must be >= 0")
        if self.is_virtual and self.duration != 0:
            raise ValidationError("virtual operations must have zero duration")

    def apply(self, schedule: PulseSchedule, params: Sequence[float]) -> None:
        """Append this operation's pulses to *schedule*."""
        if len(params) != self.num_params:
            raise LoweringError(
                f"operation {self.operation!r} on sites {self.sites} expects "
                f"{self.num_params} parameters, got {len(params)}"
            )
        self.builder(schedule, params)


class CalibrationSet:
    """All calibrated operations of one device."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, tuple[int, ...]], CalibrationEntry] = {}

    def add(self, entry: CalibrationEntry, *, overwrite: bool = False) -> None:
        """Register *entry*; refuses silent redefinition unless asked.

        Calibration loops legitimately *re*-calibrate, so ``overwrite``
        exists; accidental double-registration is still an error.
        """
        key = (entry.operation, entry.sites)
        if key in self._entries and not overwrite:
            raise ValidationError(
                f"calibration for {entry.operation!r} on {entry.sites} exists; "
                "pass overwrite=True to re-calibrate"
            )
        self._entries[key] = entry

    def get(self, operation: str, sites: Sequence[int]) -> CalibrationEntry:
        """Lookup; raises :class:`LoweringError` when missing — the
        failure mode that aborts gate->pulse lowering."""
        key = (operation, tuple(sites))
        try:
            return self._entries[key]
        except KeyError:
            raise LoweringError(
                f"no pulse calibration for {operation!r} on sites {tuple(sites)}"
            ) from None

    def has(self, operation: str, sites: Sequence[int]) -> bool:
        return (operation, tuple(sites)) in self._entries

    def operations(self) -> list[str]:
        """Distinct calibrated operation names, sorted."""
        return sorted({op for op, _ in self._entries})

    def entries(self) -> list[CalibrationEntry]:
        """All entries, deterministically ordered."""
        return [self._entries[k] for k in sorted(self._entries)]

    def site_tuples(self, operation: str) -> list[tuple[int, ...]]:
        """Site tuples for which *operation* is calibrated."""
        return sorted(s for op, s in self._entries if op == operation)

    def register_custom_gate(
        self,
        name: str,
        sites: Sequence[int],
        port: Port,
        frame: Frame,
        waveform: Waveform,
        *,
        overwrite: bool = False,
    ) -> CalibrationEntry:
        """Define a new gate by its pulse waveform (paper footnote 2).

        The gate becomes indistinguishable from a native one: the
        lowering pass will inline the waveform wherever the gate
        appears.
        """

        def builder(schedule: PulseSchedule, params: Sequence[float]) -> None:
            schedule.append(Play(port, frame, waveform))

        entry = CalibrationEntry(
            operation=name,
            sites=tuple(sites),
            builder=builder,
            duration=waveform.duration,
            num_params=0,
        )
        self.add(entry, overwrite=overwrite)
        return entry
