"""Shared machinery for simulated QDMI devices.

A :class:`SimulatedDevice` owns:

* a :class:`~repro.sim.model.SystemModel` factory parameterized by the
  device's *true* (drifting, hidden) qubit-frequency offsets,
* the published ports, frames and :class:`PulseConstraints`,
* a :class:`~repro.devices.calibrations.CalibrationSet`,
* the QDMI query + job implementation.

Drift vs. calibration — the device keeps two offset vectors:

* ``_true_offsets`` — where the qubit transition frequencies actually
  are. :meth:`advance_time` random-walks them (paper §2.1: transition
  frequencies "drift on timescales of minutes to hours").
* ``_believed_offsets`` — what the published default frames assume.
  Calibration routines (:mod:`repro.calibration`) measure the true
  values and update these via :meth:`set_frame_frequency`.

A program built against the published frames is therefore *detuned* by
exactly the tracking error — which is what makes the automated
calibration experiment (E9 in DESIGN.md) physically meaningful.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.constraints import PulseConstraints
from repro.core.frame import Frame
from repro.core.port import Port, PortKind
from repro.core.schedule import PulseSchedule
from repro.devices.calibrations import CalibrationSet
from repro.errors import (
    CancelledError,
    ConstraintError,
    JobError,
    QDMIError,
    UnsupportedQueryError,
)
from repro.qdmi.device import QDMIDevice
from repro.qdmi.job import QDMIJob
from repro.qdmi.properties import (
    DeviceProperty,
    DeviceStatus,
    FrameProperty,
    JobStatus,
    OperationProperty,
    PortProperty,
    ProgramFormat,
    PulseSupportLevel,
    SiteProperty,
)
from repro.qdmi.types import OperationInfo, Site
from repro.sim.executor import ScheduleExecutor
from repro.sim.measurement import ReadoutModel
from repro.sim.model import DecoherenceSpec, SystemModel


@dataclass
class DeviceConfig:
    """Static configuration of a simulated device."""

    name: str
    technology: str
    num_sites: int
    constraints: PulseConstraints
    pulse_support: PulseSupportLevel = PulseSupportLevel.PORT
    supported_formats: tuple[ProgramFormat, ...] = (
        ProgramFormat.PULSE_SCHEDULE,
        ProgramFormat.QIR_PULSE,
        ProgramFormat.MLIR_PULSE,
        ProgramFormat.QIR_BASE,
    )
    drift_rate: float = 0.0  # Hz of frequency drift per sqrt(second)
    version: str = "1.0"
    extra: dict = field(default_factory=dict)


class SimulatedDevice(QDMIDevice):
    """A QDMI device whose "hardware" is the :mod:`repro.sim` engine."""

    #: Largest number of decoherence-override executors kept warm.
    _MAX_NOISY_EXECUTORS = 64

    def __init__(
        self,
        config: DeviceConfig,
        *,
        model_factory: Callable[[np.ndarray], SystemModel],
        base_frequencies: Sequence[float],
        ports: Sequence[Port],
        operations: Sequence[OperationInfo],
        calibrations: CalibrationSet,
        readout: Mapping[int, ReadoutModel] | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self._model_factory = model_factory
        self._base_frequencies = np.asarray(base_frequencies, dtype=np.float64)
        if self._base_frequencies.shape != (config.num_sites,):
            raise QDMIError(
                "base_frequencies must list one frequency per site"
            )
        self._ports: dict[str, Port] = {p.name: p for p in ports}
        if len(self._ports) != len(ports):
            raise QDMIError("duplicate port names on device")
        self._operations = {op.name: op for op in operations}
        self.calibrations = calibrations
        self._readout = dict(readout or {})
        self._rng = np.random.default_rng(seed)
        self._true_offsets = np.zeros(config.num_sites, dtype=np.float64)
        self._believed_offsets = np.zeros(config.num_sites, dtype=np.float64)
        self._status = DeviceStatus.IDLE
        self._executor: ScheduleExecutor | None = None
        # Executors for per-job decoherence overrides (noise sweeps),
        # keyed by the override tuple; they share the base executor's
        # propagator cache (unitaries don't depend on T1/T2, and the
        # open-system entries are namespaced per dissipator) and are
        # invalidated together with it on frequency drift. LRU-bounded
        # so adaptive sweeps with ever-new grid points cannot grow the
        # device's memory monotonically.
        self._noisy_executors: OrderedDict[
            tuple[DecoherenceSpec, ...], ScheduleExecutor
        ] = OrderedDict()
        self._jobs: list[QDMIJob] = []
        self.elapsed_seconds = 0.0
        #: Monotonic calibration generation. Every committed write-back
        #: (frame frequency, DRAG beta, readout refresh) bumps it, and
        #: the compiler folds it into ``device_state_key`` — so caches
        #: keyed on device state invalidate even for write-backs that
        #: do not move a believed frequency.
        self.calibration_epoch = 0

    # ---- identity -------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.config.name

    # ---- physics / drift ------------------------------------------------------------

    @property
    def model(self) -> SystemModel:
        """The current (true-frequency) system model."""
        return self._current_executor().model

    @property
    def executor(self) -> ScheduleExecutor:
        """Direct simulator access (bypasses the job interface; used by
        calibration routines and variational algorithms that need exact
        states rather than shot counts)."""
        return self._current_executor()

    def _current_executor(self) -> ScheduleExecutor:
        if self._executor is None:
            model = self._model_factory(self._true_offsets.copy())
            self._executor = ScheduleExecutor(model, readout=self._readout)
        return self._executor

    def _executor_for(self, decoherence: Sequence | None) -> ScheduleExecutor:
        """The executor for an optional per-job decoherence override.

        *decoherence* lists one :class:`DecoherenceSpec` — or a
        ``(t1, t2)`` pair — per site; ``None`` means the device's own
        noise model. Override executors are memoized per spec tuple so
        a noise sweep builds each grid point's model once.
        """
        base = self._current_executor()
        if decoherence is None:
            return base
        specs = tuple(
            spec
            if isinstance(spec, DecoherenceSpec)
            else DecoherenceSpec(t1=float(spec[0]), t2=float(spec[1]))
            for spec in decoherence
        )
        if len(specs) != self.config.num_sites:
            raise JobError(
                f"decoherence override lists {len(specs)} specs for "
                f"{self.config.num_sites} sites"
            )
        executor = self._noisy_executors.get(specs)
        if executor is None:
            model = dataclasses.replace(base.model, decoherence=specs)
            executor = ScheduleExecutor(
                model,
                readout=self._readout,
                propagator_cache=base.propagator_cache,
            )
            self._noisy_executors[specs] = executor
            while len(self._noisy_executors) > self._MAX_NOISY_EXECUTORS:
                self._noisy_executors.popitem(last=False)
        else:
            self._noisy_executors.move_to_end(specs)
        return executor

    def advance_time(self, seconds: float) -> None:
        """Let wall-clock time pass: qubit frequencies random-walk.

        The step is a Wiener process with the device's configured
        ``drift_rate`` (Hz / sqrt(s)), seeded at construction.
        """
        if seconds < 0:
            raise QDMIError("cannot advance time backwards")
        if seconds == 0:
            return
        self.elapsed_seconds += seconds
        if self.config.drift_rate > 0:
            step = self.config.drift_rate * np.sqrt(seconds)
            self._true_offsets += step * self._rng.standard_normal(
                self.config.num_sites
            )
            self._executor = None  # model must be rebuilt
            self._noisy_executors.clear()

    def true_frequency(self, site: int) -> float:
        """Ground truth transition frequency (hidden from clients; used
        by experiments to score calibration tracking)."""
        return float(self._base_frequencies[site] + self._true_offsets[site])

    def believed_frequency(self, site: int) -> float:
        """The frequency the published default frame currently assumes."""
        return float(self._base_frequencies[site] + self._believed_offsets[site])

    def set_frame_frequency(self, site: int, frequency: float) -> None:
        """Calibration write-back: update the published default frame."""
        if not 0 <= site < self.config.num_sites:
            raise QDMIError(f"site {site} out of range")
        self._believed_offsets[site] = frequency - self._base_frequencies[site]
        self.bump_calibration()

    def bump_calibration(self) -> int:
        """Advance the calibration generation; returns the new epoch.

        Called by every write-back path so compile/payload caches keyed
        on :meth:`repro.compiler.jit.JITCompiler.device_state_key` miss
        cleanly after a calibration commit.
        """
        self.calibration_epoch += 1
        return self.calibration_epoch

    def tracking_error(self, site: int) -> float:
        """|believed - true| frequency error in Hz."""
        return abs(self.believed_frequency(site) - self.true_frequency(site))

    # ---- ports and frames ------------------------------------------------------------

    def port(self, name: str) -> Port:
        """Lookup a port by name."""
        try:
            return self._ports[name]
        except KeyError:
            raise QDMIError(
                f"device {self.name!r} has no port {name!r}"
            ) from None

    def drive_port(self, site: int) -> Port:
        """The drive port of *site* (kind DRIVE/RF/LASER, single target)."""
        for p in self._ports.values():
            if p.targets == (site,) and p.kind in (
                PortKind.DRIVE,
                PortKind.RF,
                PortKind.LASER,
            ):
                return p
        raise QDMIError(f"device {self.name!r} has no drive port for site {site}")

    def readout_port(self, site: int) -> Port:
        """The readout stimulus port of *site*."""
        for p in self._ports.values():
            if p.targets == (site,) and p.kind is PortKind.READOUT:
                return p
        raise QDMIError(f"device {self.name!r} has no readout port for site {site}")

    def acquire_port(self, site: int) -> Port:
        """The acquisition port of *site*."""
        for p in self._ports.values():
            if p.targets == (site,) and p.kind is PortKind.ACQUIRE:
                return p
        raise QDMIError(f"device {self.name!r} has no acquire port for site {site}")

    def coupler_port(self, site_a: int, site_b: int) -> Port:
        """The coupler port between two sites."""
        key = tuple(sorted((site_a, site_b)))
        for p in self._ports.values():
            if p.kind is PortKind.COUPLER and p.targets == key:
                return p
        raise QDMIError(
            f"device {self.name!r} has no coupler port for sites {key}"
        )

    def default_frame(self, port: Port) -> Frame:
        """The published default frame for *port*.

        Drive frames sit at the *believed* qubit frequency; readout and
        acquire frames at the site's readout frequency (modeled as 0 in
        the rotating frame); coupler frames are baseband.
        """
        if port.kind in (PortKind.DRIVE, PortKind.RF, PortKind.LASER):
            site = port.targets[0]
            return Frame(f"{port.name}-frame", self.believed_frequency(site), 0.0)
        return Frame(f"{port.name}-frame", 0.0, 0.0)

    # ---- QDMI query interface --------------------------------------------------------

    def query_device_property(self, prop: DeviceProperty) -> Any:
        cfg = self.config
        if prop is DeviceProperty.NAME:
            return cfg.name
        if prop is DeviceProperty.VERSION:
            return cfg.version
        if prop is DeviceProperty.TECHNOLOGY:
            return cfg.technology
        if prop is DeviceProperty.NUM_SITES:
            return cfg.num_sites
        if prop is DeviceProperty.STATUS:
            return self._status
        if prop is DeviceProperty.COUPLING_MAP:
            return tuple(
                p.targets
                for p in sorted(self._ports.values(), key=lambda p: p.name)
                if p.kind is PortKind.COUPLER
            )
        if prop is DeviceProperty.SUPPORTED_FORMATS:
            return cfg.supported_formats
        if prop is DeviceProperty.NATIVE_GATES:
            return tuple(
                self._operations[k] for k in sorted(self._operations)
            )
        if cfg.pulse_support is PulseSupportLevel.NONE:
            raise UnsupportedQueryError(
                f"device {cfg.name!r} exposes no pulse properties"
            )
        if prop is DeviceProperty.PULSE_SUPPORT_LEVEL:
            return cfg.pulse_support
        if prop is DeviceProperty.PULSE_CONSTRAINTS:
            return cfg.constraints
        if prop is DeviceProperty.PORTS:
            return tuple(sorted(self._ports.values(), key=lambda p: p.name))
        if prop is DeviceProperty.FRAMES:
            return tuple(
                self.default_frame(p)
                for p in sorted(self._ports.values(), key=lambda p: p.name)
                if not p.is_output
            )
        if prop is DeviceProperty.SAMPLE_RATE:
            return 1.0 / cfg.constraints.dt
        if prop is DeviceProperty.TIMING_GRANULARITY:
            return cfg.constraints.granularity
        if prop is DeviceProperty.SUPPORTED_ENVELOPES:
            env = cfg.constraints.supported_envelopes
            return tuple(sorted(env)) if env is not None else None
        raise UnsupportedQueryError(
            f"device {cfg.name!r} does not answer {prop.value!r}"
        )

    def query_site_property(self, site: Site, prop: SiteProperty) -> Any:
        idx = site.index
        if not 0 <= idx < self.config.num_sites:
            raise QDMIError(f"site {idx} out of range on {self.name!r}")
        model = self.model
        if prop is SiteProperty.INDEX:
            return idx
        if prop is SiteProperty.T1:
            return model.decoherence[idx].t1 if model.decoherence else float("inf")
        if prop is SiteProperty.T2:
            return model.decoherence[idx].t2 if model.decoherence else float("inf")
        if prop is SiteProperty.FREQUENCY:
            return self.believed_frequency(idx)
        if prop is SiteProperty.READOUT_ERROR:
            m = self._readout.get(idx, ReadoutModel())
            return 0.5 * (m.p01 + m.p10)
        if prop is SiteProperty.RABI_RATE:
            try:
                return model.channel(self.drive_port(idx).name).rabi_rate
            except QDMIError:
                raise UnsupportedQueryError("site has no drive channel") from None
        if prop is SiteProperty.DRIVE_PORT:
            return self.drive_port(idx)
        if prop is SiteProperty.READOUT_PORT:
            return self.readout_port(idx)
        if prop is SiteProperty.ACQUIRE_PORT:
            return self.acquire_port(idx)
        if prop is SiteProperty.DEFAULT_FRAME:
            return self.default_frame(self.drive_port(idx))
        if prop is SiteProperty.ANHARMONICITY:
            extra = self.config.extra.get("anharmonicities")
            if extra is None:
                raise UnsupportedQueryError(
                    f"device {self.name!r} has no anharmonicity data"
                )
            return extra[idx]
        raise UnsupportedQueryError(
            f"device {self.name!r} does not answer site property {prop.value!r}"
        )

    def query_operation_property(
        self, operation: str, sites: Sequence[Site], prop: OperationProperty
    ) -> Any:
        site_tuple = tuple(s.index for s in sites)
        if operation not in self._operations:
            raise QDMIError(
                f"device {self.name!r} has no operation {operation!r}"
            )
        info = self._operations[operation]
        if prop is OperationProperty.NAME:
            return info.name
        if prop is OperationProperty.NUM_QUBITS:
            return info.num_qubits
        if prop is OperationProperty.PARAMETERS:
            return info.parameters
        if prop is OperationProperty.IS_VIRTUAL:
            return info.is_virtual
        if prop is OperationProperty.HAS_PULSE_IMPLEMENTATION:
            return self.calibrations.has(operation, site_tuple)
        if prop is OperationProperty.DURATION:
            entry = self.calibrations.get(operation, site_tuple)
            return entry.duration * self.config.constraints.dt
        if prop is OperationProperty.PULSE_SCHEDULE:
            entry = self.calibrations.get(operation, site_tuple)
            sched = PulseSchedule(f"{operation}{site_tuple}")
            entry.apply(
                sched, [0.0] * entry.num_params
            )
            return sched
        if prop is OperationProperty.FIDELITY:
            fid = self.config.extra.get("fidelities", {}).get(operation)
            if fid is None:
                raise UnsupportedQueryError(
                    f"no fidelity data for {operation!r}"
                )
            return fid
        raise UnsupportedQueryError(
            f"device {self.name!r} does not answer operation property {prop.value!r}"
        )

    def query_port_property(self, port: Port, prop: PortProperty) -> Any:
        if prop is PortProperty.MAX_AMPLITUDE:
            return self.config.constraints.max_amplitude
        if prop is PortProperty.FREQUENCY_RANGE:
            c = self.config.constraints
            return (c.min_frequency, c.max_frequency)
        return super().query_port_property(port, prop)

    def query_frame_property(self, frame: Frame, prop: FrameProperty) -> Any:
        if prop is FrameProperty.PORT:
            # Default frames are named "<port>-frame".
            if frame.name.endswith("-frame"):
                port_name = frame.name[: -len("-frame")]
                if port_name in self._ports:
                    return self._ports[port_name]
            raise UnsupportedQueryError(
                f"frame {frame.name!r} is not a published default frame"
            )
        return super().query_frame_property(frame, prop)

    # ---- job interface ---------------------------------------------------------------

    def submit_job(self, job: QDMIJob) -> None:
        """Run *job* synchronously; terminal state is DONE or FAILED."""
        if job.status is not JobStatus.CREATED:
            raise JobError(
                f"job {job.job_id} already submitted (status {job.status.value})"
            )
        job.transition(JobStatus.SUBMITTED)
        if not self.supports_format(job.program_format):
            job.fail(
                f"device {self.name!r} does not accept format "
                f"{job.program_format.value!r}"
            )
            return
        job.transition(JobStatus.QUEUED)
        self._jobs.append(job)
        job.transition(JobStatus.RUNNING)
        self._status = DeviceStatus.BUSY
        try:
            schedule = self._payload_to_schedule(job)
            self.config.constraints.validate_schedule(schedule)
            executor = self._executor_for(job.metadata.get("decoherence"))
            result = executor.execute(
                schedule,
                shots=job.shots,
                seed=job.metadata.get("seed", job.job_id),
                backend=job.metadata.get("backend"),
                should_cancel=job.metadata.get("should_cancel"),
            )
            job.complete(result)
        except CancelledError:
            # Cooperative cancellation is not a device fault: let the
            # serving layer resolve the tickets CANCELLED.
            raise
        except Exception as exc:  # deliberate: device must not crash the stack
            job.fail(f"{type(exc).__name__}: {exc}")
        finally:
            self._status = DeviceStatus.IDLE

    def _payload_to_schedule(self, job: QDMIJob) -> PulseSchedule:
        """Decode a job payload into an executable pulse schedule."""
        fmt = job.program_format
        if fmt is ProgramFormat.PULSE_SCHEDULE:
            if not isinstance(job.payload, PulseSchedule):
                raise ConstraintError(
                    "PULSE_SCHEDULE payload must be a PulseSchedule object"
                )
            return job.payload
        if fmt is ProgramFormat.QIR_PULSE:
            # Local import: qir depends only on core, devices may depend on qir.
            from repro.qir.linker import link_qir_to_schedule

            return link_qir_to_schedule(job.payload, self)
        if fmt is ProgramFormat.MLIR_PULSE:
            from repro.compiler.lowering import mlir_pulse_to_schedule

            return mlir_pulse_to_schedule(job.payload, self)
        if fmt is ProgramFormat.QIR_BASE:
            from repro.qir.linker import link_qir_to_schedule

            return link_qir_to_schedule(job.payload, self)
        raise ConstraintError(f"format {fmt.value!r} not executable on this device")

    @property
    def executed_jobs(self) -> tuple[QDMIJob, ...]:
        """Jobs this device has accepted, in submission order."""
        return tuple(self._jobs)
