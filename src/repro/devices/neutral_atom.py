"""Simulated neutral-atom device.

Models a 1-D optical-tweezer atom array:

* two-level atoms driven by per-site laser ports,
* Rydberg-blockade entangling ports between neighboring atoms (the
  blockade interaction compiled to an effective controlled-phase term),
* MHz-scale Rabi rates, 2 ns samples, granularity 4,
* minute-scale laser-stability drift (paper §2.1: neutral-atom systems
  "are dominated by the stability of their laser control systems ...
  which requires calibration of parameters on a minute timescale") —
  the fastest drift of the three platforms,
* atom-loss-dominated readout asymmetry (loss reads as bright/dark
  misassignment).
"""

from __future__ import annotations

import numpy as np

from repro.core.constraints import PulseConstraints
from repro.core.instructions import Capture, Play, ShiftPhase
from repro.core.port import Port, PortDirection, PortKind
from repro.core.schedule import PulseSchedule
from repro.core.waveform import gaussian_waveform, gaussian_square_waveform
from repro.devices.base import DeviceConfig, SimulatedDevice
from repro.devices.calibrations import CalibrationEntry, CalibrationSet
from repro.qdmi.types import OperationInfo
from repro.sim.measurement import ReadoutModel
from repro.sim.model import ChannelCoupling, SystemModel
from repro.sim.operators import basis_state, destroy_on


def _zz_projector(site_a: int, site_b: int, dims: tuple[int, ...]) -> np.ndarray:
    """Projector onto |1>_a |1>_b (effective blockade phase term)."""
    dim = int(np.prod(dims))
    proj = np.zeros((dim, dim), dtype=np.complex128)
    for idx in np.ndindex(*dims):
        if idx[site_a] == 1 and idx[site_b] == 1:
            v = basis_state(list(idx), dims)
            proj += np.outer(v, v.conj())
    return proj


class NeutralAtomDevice(SimulatedDevice):
    """An optical-tweezer atom array exposed over QDMI."""

    X_DURATION = 248  # 2 ns samples -> ~500 ns pi pulse
    X_SIGMA = 60
    RYD_DURATION = 500  # ~1 us entangling pulse
    RYD_SIGMA = 50
    RYD_WIDTH = 300
    READOUT_DURATION = 5000  # 10 us imaging window

    def __init__(
        self,
        name: str = "atom-array",
        num_qubits: int = 2,
        *,
        seed: int = 0,
        drift_rate: float = 2e3,
        rabi_rate: float = 2e6,
        blockade_rate: float = 1e6,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        dt = 2e-9
        # Effective two-photon transition offsets.
        base_freqs = [500e6 + 2e6 * q for q in range(num_qubits)]
        pairs = [(q, q + 1) for q in range(num_qubits - 1)]
        dims = tuple([2] * num_qubits)

        def model_factory(offsets: np.ndarray) -> SystemModel:
            dim = int(np.prod(dims))
            channels: dict[str, ChannelCoupling] = {}
            for q in range(num_qubits):
                channels[f"atom{q}-laser-port"] = ChannelCoupling(
                    operator=destroy_on(q, dims),
                    reference_frequency=float(base_freqs[q] + offsets[q]),
                    rabi_rate=rabi_rate,
                )
            for lo, hi in pairs:
                channels[f"atom{lo}atom{hi}-rydberg-port"] = ChannelCoupling(
                    operator=_zz_projector(lo, hi, dims),
                    reference_frequency=0.0,
                    rabi_rate=blockade_rate,
                    hermitian=True,
                )
            return SystemModel(
                dims=dims,
                drift=np.zeros((dim, dim), dtype=np.complex128),
                channels=channels,
                dt=dt,
                site_frequencies=tuple(
                    float(f + o) for f, o in zip(base_freqs, offsets)
                ),
            )

        ports: list[Port] = []
        for q in range(num_qubits):
            ports.append(Port(f"atom{q}-laser-port", PortKind.LASER, (q,)))
            ports.append(Port(f"atom{q}-readout-port", PortKind.READOUT, (q,)))
            ports.append(
                Port(
                    f"atom{q}-acquire-port",
                    PortKind.ACQUIRE,
                    (q,),
                    PortDirection.OUTPUT,
                )
            )
        for lo, hi in pairs:
            ports.append(
                Port(f"atom{lo}atom{hi}-rydberg-port", PortKind.COUPLER, (lo, hi))
            )

        operations = [
            OperationInfo("x", 1),
            OperationInfo("sx", 1),
            OperationInfo("rz", 1, ("theta",), is_virtual=True),
            OperationInfo("cz", 2),
            OperationInfo("measure", 1),
        ]

        constraints = PulseConstraints(
            dt=dt,
            granularity=4,
            min_pulse_duration=4,
            max_pulse_duration=1 << 18,
            max_amplitude=1.0,
            supported_envelopes=frozenset(
                {
                    "gaussian",
                    "gaussian_square",
                    "constant",
                    "square",
                    "sine",
                    "blackman",
                }
            ),
            min_frequency=0.0,
            max_frequency=2e9,
            num_memory_slots=max(num_qubits, 8),
            supports_raw_samples=True,
        )

        config = DeviceConfig(
            name=name,
            technology="neutral-atom",
            num_sites=num_qubits,
            constraints=constraints,
            drift_rate=drift_rate,
            extra={
                "fidelities": {"x": 0.999, "sx": 0.999, "cz": 0.995, "measure": 0.98}
            },
        )

        # Atom loss during imaging dominates: 1 -> 0 misassignment.
        readout = {q: ReadoutModel(p01=0.005, p10=0.03) for q in range(num_qubits)}

        super().__init__(
            config,
            model_factory=model_factory,
            base_frequencies=base_freqs,
            ports=ports,
            operations=operations,
            calibrations=CalibrationSet(),
            readout=readout,
            seed=seed,
        )
        self._rabi = rabi_rate
        self._blockade = blockade_rate
        self._pairs = pairs
        self._build_calibrations(num_qubits)

    # ---- calibrated waveforms --------------------------------------------------------

    def x_waveform(self, rotation: float = 1.0):
        """Gaussian laser pulse for a pi*rotation rotation."""
        unit = gaussian_waveform(self.X_DURATION, 1.0, self.X_SIGMA)
        integral = float(np.real(unit.samples()).sum()) * self.config.constraints.dt
        amp = rotation * 0.5 / (self._rabi * integral)
        return gaussian_waveform(self.X_DURATION, amp, self.X_SIGMA)

    def rydberg_waveform(self):
        """Effective blockade-phase pulse for CZ."""
        unit = gaussian_square_waveform(
            self.RYD_DURATION, 1.0, self.RYD_SIGMA, self.RYD_WIDTH
        )
        integral = float(np.real(unit.samples()).sum()) * self.config.constraints.dt
        amp = 0.5 / (self._blockade * integral)
        return gaussian_square_waveform(
            self.RYD_DURATION, amp, self.RYD_SIGMA, self.RYD_WIDTH
        )

    def readout_waveform(self):
        """Imaging stimulus pulse."""
        return gaussian_square_waveform(self.READOUT_DURATION, 0.1, 100, 4600)

    def _build_calibrations(self, num_qubits: int) -> None:
        cal = self.calibrations
        for q in range(num_qubits):
            cal.add(self._make_x_entry("x", q, 1.0))
            cal.add(self._make_x_entry("sx", q, 0.5))
            cal.add(self._make_rz_entry(q))
            cal.add(self._make_measure_entry(q))
        for lo, hi in self._pairs:
            cal.add(self._make_cz_entry(lo, hi))

    def _make_x_entry(self, name: str, q: int, rotation: float) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            port = self.drive_port(q)
            sched.append(
                Play(port, self.default_frame(port), self.x_waveform(rotation))
            )

        return CalibrationEntry(name, (q,), builder, self.X_DURATION)

    def _make_rz_entry(self, q: int) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            port = self.drive_port(q)
            sched.append(ShiftPhase(port, self.default_frame(port), -float(params[0])))

        return CalibrationEntry("rz", (q,), builder, 0, num_params=1, is_virtual=True)

    def _make_cz_entry(self, lo: int, hi: int) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            dlo, dhi = self.drive_port(lo), self.drive_port(hi)
            ryd = self.coupler_port(lo, hi)
            sched.barrier(dlo, dhi, ryd)
            sched.append(Play(ryd, self.default_frame(ryd), self.rydberg_waveform()))
            sched.barrier(dlo, dhi, ryd)

        return CalibrationEntry("cz", (lo, hi), builder, self.RYD_DURATION)

    def _make_measure_entry(self, q: int) -> CalibrationEntry:
        def builder(sched: PulseSchedule, params) -> None:
            drive = self.drive_port(q)
            ro, acq = self.readout_port(q), self.acquire_port(q)
            sched.barrier(drive, ro, acq)
            sched.append(Play(ro, self.default_frame(ro), self.readout_waveform()))
            sched.append(
                Capture(
                    acq,
                    self.default_frame(acq),
                    int(params[0]),
                    self.READOUT_DURATION,
                )
            )

        return CalibrationEntry(
            "measure", (q,), builder, self.READOUT_DURATION, num_params=1
        )
