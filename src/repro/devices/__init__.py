"""Simulated QDMI devices (paper Fig. 2, bottom row).

The paper's architecture diagram shows QDMI devices of many kinds —
superconducting, neutral-atom and trapped-ion accelerators, classical
simulators, and databases. Real hardware is access-gated, so this
package provides simulated stand-ins that implement the full
:class:`~repro.qdmi.device.QDMIDevice` protocol and execute pulse jobs
on the :mod:`repro.sim` dynamics engine:

* :class:`SuperconductingDevice` — fixed-frequency transmons (qutrit
  levels, DRAG calibrations, tunable couplers, minutes-scale frequency
  drift per paper §2.1).
* :class:`TrappedIonDevice` — ion chain with slow motional-mode drift,
  coarse timing granularity, long coherence.
* :class:`NeutralAtomDevice` — atom array with Rydberg-blockade
  entangling port, laser drive channels, atom-loss readout errors.
* :class:`CalibrationDatabaseDevice` — a query-only QDMI device backed
  by a key-value store, demonstrating that non-QPU services speak the
  same interface.
"""

from repro.devices.base import DeviceConfig, SimulatedDevice
from repro.devices.calibrations import CalibrationEntry, CalibrationSet
from repro.devices.superconducting import SuperconductingDevice
from repro.devices.trapped_ion import TrappedIonDevice
from repro.devices.neutral_atom import NeutralAtomDevice
from repro.devices.database import CalibrationDatabaseDevice

__all__ = [
    "SimulatedDevice",
    "DeviceConfig",
    "CalibrationSet",
    "CalibrationEntry",
    "SuperconductingDevice",
    "TrappedIonDevice",
    "NeutralAtomDevice",
    "CalibrationDatabaseDevice",
]
