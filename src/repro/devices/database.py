"""A query-only QDMI device backed by a key-value store.

Fig. 2 of the paper lists *databases* among the QDMI devices — services
that speak the same C interface but store calibration records instead
of running quantum jobs. This device demonstrates that diversity: it
answers device-property queries from a stored snapshot, exposes
arbitrary calibration records, and rejects job submission (it has no
quantum execution capability and advertises no supported formats).
"""

from __future__ import annotations

from typing import Any

from repro.errors import JobError, UnsupportedQueryError
from repro.qdmi.device import QDMIDevice
from repro.qdmi.job import QDMIJob
from repro.qdmi.properties import (
    DeviceProperty,
    DeviceStatus,
    OperationProperty,
    PulseSupportLevel,
    SiteProperty,
)
from repro.qdmi.types import Site


class CalibrationDatabaseDevice(QDMIDevice):
    """Stores calibration/telemetry records; query-only."""

    def __init__(self, name: str = "calibration-db") -> None:
        self._name = name
        self._records: dict[str, Any] = {}

    @property
    def name(self) -> str:
        return self._name

    # ---- record store ---------------------------------------------------------------

    def put_record(self, key: str, value: Any) -> None:
        """Store a calibration/telemetry record."""
        self._records[key] = value

    def get_record(self, key: str) -> Any:
        """Retrieve a stored record; raises UnsupportedQueryError when absent."""
        try:
            return self._records[key]
        except KeyError:
            raise UnsupportedQueryError(
                f"database {self._name!r} has no record {key!r}"
            ) from None

    def keys(self) -> list[str]:
        """All stored record keys, sorted."""
        return sorted(self._records)

    # ---- QDMI query interface --------------------------------------------------------

    def query_device_property(self, prop: DeviceProperty) -> Any:
        if prop is DeviceProperty.NAME:
            return self._name
        if prop is DeviceProperty.VERSION:
            return "1.0"
        if prop is DeviceProperty.TECHNOLOGY:
            return "database"
        if prop is DeviceProperty.NUM_SITES:
            return 0
        if prop is DeviceProperty.STATUS:
            return DeviceStatus.IDLE
        if prop is DeviceProperty.SUPPORTED_FORMATS:
            return ()
        if prop is DeviceProperty.NATIVE_GATES:
            return ()
        if prop is DeviceProperty.PULSE_SUPPORT_LEVEL:
            return PulseSupportLevel.NONE
        raise UnsupportedQueryError(
            f"database {self._name!r} does not answer {prop.value!r}"
        )

    def query_site_property(self, site: Site, prop: SiteProperty) -> Any:
        raise UnsupportedQueryError(f"database {self._name!r} has no sites")

    def query_operation_property(
        self, operation, sites, prop: OperationProperty
    ) -> Any:
        raise UnsupportedQueryError(f"database {self._name!r} has no operations")

    # ---- job interface ---------------------------------------------------------------

    def submit_job(self, job: QDMIJob) -> None:
        raise JobError(f"database {self._name!r} does not execute jobs")
