"""MQSS adapters: front-end formats -> compiler payloads.

Each adapter accepts one front-end representation and produces a
payload the JIT compiler understands (a gate-level MLIR module, a pulse
module, or a pulse schedule). The client looks adapters up by name and
by payload type, mirroring the adapter boxes of the paper's Fig. 2.
"""

from __future__ import annotations

import abc
import re
from typing import Any

from repro.core.instructions import Play
from repro.core.schedule import PulseSchedule
from repro.core.waveform import ParametricWaveform
from repro.errors import ParseError
from repro.mlir.ir import Module
from repro.qpi.compile import qpi_to_schedule
from repro.qpi.pythonic import PythonicCircuit
from repro.qpi.qpi import QCircuit


class Adapter(abc.ABC):
    """Normalizes one front-end format into a compiler payload."""

    #: Registry name, e.g. "qpi".
    name: str = ""

    @abc.abstractmethod
    def accepts(self, program: Any) -> bool:
        """Whether *program* is this adapter's front-end format."""

    @abc.abstractmethod
    def to_payload(self, program: Any, device: Any) -> Any:
        """Convert *program* into a compiler payload for *device*."""


class QPIAdapter(Adapter):
    """The native C-style QPI adapter (paper §5.1)."""

    name = "qpi"

    def accepts(self, program: Any) -> bool:
        return isinstance(program, QCircuit)

    def to_payload(self, program: QCircuit, device: Any) -> PulseSchedule:
        return qpi_to_schedule(program, device)


class CircuitAdapter(Adapter):
    """Adapter for dynamic circuit objects and gate-level MLIR modules
    (the Qiskit/CUDAQ/PennyLane stand-in)."""

    name = "circuit"

    def accepts(self, program: Any) -> bool:
        if isinstance(program, PythonicCircuit):
            return True
        return isinstance(program, Module) and "quantum" in program.dialects_used()

    def to_payload(self, program: Any, device: Any) -> Any:
        if isinstance(program, PythonicCircuit):
            return qpi_to_schedule(program.to_qcircuit(), device)
        return program  # gate-level module: the compiler lowers it


_QASM_GATE_RE = re.compile(
    r"^(x|sx)\s+q\[(\d+)\];$|^rz\(([-+0-9.eE]+)\)\s+q\[(\d+)\];$"
    r"|^cz\s+q\[(\d+)\]\s*,\s*q\[(\d+)\];$"
)
_QASM_MEASURE_RE = re.compile(r"^c\[(\d+)\]\s*=\s*measure\s+q\[(\d+)\];$")
_CAL_PLAY_RE = re.compile(
    r'^play\("([^"]+)",\s*(\w+)\(([^)]*)\)\);$'
)
_CAL_FRAME_RE = re.compile(
    r'^frame_change\("([^"]+)",\s*([-+0-9.eE]+),\s*([-+0-9.eE]+)\);$'
)
_CAL_DELAY_RE = re.compile(r'^delay\("([^"]+)",\s*(\d+)\);$')
_CAL_BARRIER_RE = re.compile(r'^barrier\(((?:"[^"]+",?\s*)+)\);$')


class QASM3Adapter(Adapter):
    """A miniature OpenQASM-3-style adapter with ``cal`` blocks.

    The paper notes OpenQASM 3 "defines calibration (cal) blocks that
    explicitly use the same three abstractions" and that a QPI pulse
    program "could be translated or interfaced with Braket- or
    OpenQASM3-style schedules". Supported subset::

        OPENQASM 3;
        qubit[2] q; bit[2] c;
        x q[0];  sx q[1];  rz(0.5) q[0];  cz q[0], q[1];
        cal { play("q0-drive-port", gaussian(32, 0.4, 8.0));
              frame_change("q0-drive-port", 5.0e9, 0.1);
              delay("q0-drive-port", 16); }
        c[0] = measure q[0];

    Cal-block envelope calls are ``name(duration, p1, p2...)`` with the
    positional parameter orders of the standard envelope library.
    """

    name = "qasm3"

    #: Positional parameter names per envelope.
    _ENVELOPE_PARAMS = {
        "constant": ("amp",),
        "square": ("amp",),
        "gaussian": ("amp", "sigma"),
        "drag": ("amp", "sigma", "beta"),
        "gaussian_square": ("amp", "sigma", "width"),
        "cosine": ("amp",),
        "sine": ("amp",),
        "sech": ("amp", "sigma"),
        "triangle": ("amp",),
        "blackman": ("amp",),
    }

    def accepts(self, program: Any) -> bool:
        return isinstance(program, str) and program.lstrip().startswith("OPENQASM")

    def to_payload(self, program: str, device: Any) -> PulseSchedule:
        schedule = PulseSchedule("qasm3")
        cal = device.calibrations
        statements = self._statements(program)
        for stmt in statements:
            if stmt.startswith(("OPENQASM", "qubit", "bit", "include")):
                continue
            if stmt.startswith("cal{") or stmt.startswith("cal {"):
                body = stmt[stmt.index("{") + 1 : stmt.rindex("}")]
                self._lower_cal_block(body, device, schedule)
                continue
            m = _QASM_MEASURE_RE.match(stmt)
            if m:
                cal.get("measure", (int(m.group(2)),)).apply(
                    schedule, [int(m.group(1))]
                )
                continue
            m = _QASM_GATE_RE.match(stmt)
            if m:
                if m.group(1):  # x / sx
                    cal.get(m.group(1), (int(m.group(2)),)).apply(schedule, [])
                elif m.group(3) is not None:  # rz
                    cal.get("rz", (int(m.group(4)),)).apply(
                        schedule, [float(m.group(3))]
                    )
                else:  # cz
                    lo, hi = sorted((int(m.group(5)), int(m.group(6))))
                    cal.get("cz", (lo, hi)).apply(schedule, [])
                continue
            raise ParseError(f"qasm3 adapter: cannot parse statement {stmt!r}")
        return schedule

    def _statements(self, program: str) -> list[str]:
        """Split into statements; a cal block is one statement."""
        text = re.sub(r"//[^\n]*", "", program)
        out: list[str] = []
        i = 0
        text = text.strip()
        while i < len(text):
            while i < len(text) and text[i].isspace():
                i += 1
            if i >= len(text):
                break
            if text[i : i + 3] == "cal":
                start = text.index("{", i)
                depth = 0
                j = start
                while j < len(text):
                    if text[j] == "{":
                        depth += 1
                    elif text[j] == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                if depth != 0:
                    raise ParseError("unterminated cal block")
                out.append(re.sub(r"\s+", " ", text[i : j + 1]).strip())
                i = j + 1
                continue
            j = text.find(";", i)
            if j < 0:
                if text[i:].strip():
                    raise ParseError(f"trailing input {text[i:]!r}")
                break
            stmt = re.sub(r"\s+", " ", text[i : j + 1]).strip()
            if stmt != ";":
                out.append(stmt)
            i = j + 1
        return out

    def _lower_cal_block(self, body: str, device: Any, schedule: PulseSchedule) -> None:
        frames: dict[str, Any] = {}

        def frame_of(port):
            if port.name not in frames:
                frames[port.name] = device.default_frame(port)
            return frames[port.name]

        for stmt in (s.strip() + ";" for s in body.split(";") if s.strip()):
            m = _CAL_PLAY_RE.match(stmt)
            if m:
                port = device.port(m.group(1))
                envelope = m.group(2)
                argv = (
                    [float(a) for a in m.group(3).split(",")]
                    if m.group(3).strip()
                    else []
                )
                try:
                    names = self._ENVELOPE_PARAMS[envelope]
                except KeyError:
                    raise ParseError(f"unknown cal envelope {envelope!r}") from None
                if len(argv) != len(names) + 1:
                    raise ParseError(
                        f"{envelope} takes (duration, {', '.join(names)})"
                    )
                wf = ParametricWaveform(
                    envelope, int(argv[0]), dict(zip(names, argv[1:]))
                )
                schedule.append(Play(port, frame_of(port), wf))
                continue
            m = _CAL_FRAME_RE.match(stmt)
            if m:
                from repro.core.instructions import FrameChange

                port = device.port(m.group(1))
                schedule.append(
                    FrameChange(
                        port, frame_of(port), float(m.group(2)), float(m.group(3))
                    )
                )
                continue
            m = _CAL_DELAY_RE.match(stmt)
            if m:
                from repro.core.instructions import Delay

                schedule.append(Delay(device.port(m.group(1)), int(m.group(2))))
                continue
            m = _CAL_BARRIER_RE.match(stmt)
            if m:
                names = re.findall(r'"([^"]+)"', m.group(1))
                schedule.barrier(*(device.port(n) for n in names))
                continue
            raise ParseError(f"cal block: cannot parse {stmt!r}")


class QIRAdapter(Adapter):
    """Adapter for QIR text with the Pulse Profile (paper Listing 3).

    Links the exchange-format payload back into a device-bound schedule
    through the QIR linker, making serialized programs a first-class
    front-end of the unified execution API rather than a
    remote-path-only wire format.
    """

    name = "qir"

    def accepts(self, program: Any) -> bool:
        # Keep in sync with _looks_like_qir in repro/api/program.py
        # (Program.coerce's fast-path classification).
        if not isinstance(program, str):
            return False
        return (
            program.lstrip().startswith("; ModuleID")
            or "__quantum__" in program
        )

    def to_payload(self, program: str, device: Any) -> PulseSchedule:
        from repro.qir.linker import link_qir_to_schedule

        return link_qir_to_schedule(program, device)


class PulseIRAdapter(Adapter):
    """Adapter for compiler-ready payloads: executable schedules, pulse
    MLIR modules, and pulse MLIR text.

    The JIT compiler understands these natively; the adapter is a
    passthrough that lets them travel the same client/serving/API route
    as every other front-end (including parametric sequences bound via
    ``scalar_args``).
    """

    name = "pulse-ir"

    def accepts(self, program: Any) -> bool:
        if isinstance(program, PulseSchedule):
            return True
        if isinstance(program, Module):
            return "pulse" in program.dialects_used()
        if isinstance(program, str):
            return "pulse.sequence" in program
        return False

    def to_payload(self, program: Any, device: Any) -> Any:
        return program


def default_adapters() -> list[Adapter]:
    """The standard adapter set, mirroring Fig. 2's adapter boxes."""
    return [
        QPIAdapter(),
        CircuitAdapter(),
        QASM3Adapter(),
        QIRAdapter(),
        PulseIRAdapter(),
    ]
