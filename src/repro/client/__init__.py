"""The MQSS Client layer (paper Fig. 2, top half).

"MQSS Adapters (e.g., Qiskit, CUDAQ, PennyLane, and its native C-based
QPI) submit gate- and pulse-based jobs to the MQSS Client, which
handles automatic routing for both local HPC jobs and remote
submissions."

* :mod:`repro.client.adapters` — the adapter registry: QPI circuits,
  Pythonic circuit objects, gate-level MLIR modules, and an
  OpenQASM-3-style text format with ``cal`` blocks all normalize into
  compiler payloads;
* :mod:`repro.client.client` — :class:`MQSSClient`: device selection,
  JIT compilation, local vs. remote routing, result delivery;
* :mod:`repro.client.remote` — :class:`RemoteDeviceProxy`: a QDMI
  device reachable only through a serialized text format (QIR), with a
  simulated network hop — the "remote submission" path of Fig. 2.
"""

from repro.client.adapters import (
    Adapter,
    CircuitAdapter,
    PulseIRAdapter,
    QASM3Adapter,
    QIRAdapter,
    QPIAdapter,
)
from repro.client.client import BatchFailure, ClientResult, JobRequest, MQSSClient
from repro.client.remote import RemoteDeviceProxy

__all__ = [
    "Adapter",
    "QPIAdapter",
    "CircuitAdapter",
    "QASM3Adapter",
    "QIRAdapter",
    "PulseIRAdapter",
    "MQSSClient",
    "JobRequest",
    "ClientResult",
    "BatchFailure",
    "RemoteDeviceProxy",
]
