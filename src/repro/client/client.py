"""MQSSClient: adapter dispatch, JIT compilation, job routing.

The client is the single entry point of Fig. 2: programs arrive from
any adapter, are JIT-compiled against the selected device's QDMI
constraints, and are routed either locally (in-memory schedule — the
fast HPC path) or remotely (serialized QIR with the Pulse Profile).
Per-stage timings are recorded for the architecture benchmark (E3).

The submission pipeline is split into two reusable halves so the
serving layer (:mod:`repro.serving`) can interpose between them:

* :meth:`MQSSClient.compile_request` — adapter selection + JIT
  compilation (optionally through a shared
  :class:`~repro.serving.cache.CompileCache`);
* :meth:`MQSSClient.execute_compiled` — session lease + format routing
  + execution + result assembly.

:meth:`MQSSClient.submit` composes the two; :class:`PulseService`
workers call them separately to insert caching, request coalescing and
failover in the middle.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.client.adapters import Adapter, default_adapters
from repro.compiler.jit import CompiledProgram, JITCompiler
from repro.errors import ExecutionError, QDMIError
from repro.qdmi.driver import QDMIDriver
from repro.qdmi.properties import JobStatus, ProgramFormat
from repro.qdmi.session import QDMISession


@dataclass
class JobRequest:
    """One client-side submission."""

    program: Any
    device: str
    shots: int = 1024
    adapter: str | None = None  # autodetect when None
    priority: int = 0
    scalar_args: dict[str, float] = field(default_factory=dict)
    seed: int | None = None
    metadata: dict = field(default_factory=dict)


@dataclass
class ClientResult:
    """What the client returns to the application."""

    device: str
    counts: dict[str, int]
    probabilities: dict[str, float]
    shots: int
    duration_samples: int
    timings_s: dict[str, float]
    job_id: int
    remote: bool
    qir_size_bytes: int = 0

    def expectation_z(self, slot: int = 0) -> float:
        """``<Z>`` of the bit at *slot* from exact probabilities.

        Raises :class:`~repro.errors.ValidationError` on an empty
        distribution or an out-of-range slot.

        .. deprecated::
            Thin view over the Observable engine; use
            ``repro.primitives.Observable.z(slot).expectation(...)``
            (or an :class:`~repro.primitives.Estimator` PUB) directly.
        """
        warnings.warn(
            "ClientResult.expectation_z is deprecated; evaluate "
            "repro.primitives.Observable.z(slot) (or run an Estimator "
            "PUB) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.primitives.observables import expectation_z

        return expectation_z(self.probabilities, slot)


@dataclass
class BatchFailure:
    """A failed entry in :meth:`MQSSClient.run_batch` output.

    Occupies the failed request's slot so the returned list stays
    aligned with the input order instead of silently dropping (or
    aborting) completed work.
    """

    request: JobRequest
    error: Exception
    index: int


class MQSSClient:
    """Routes jobs from adapters to QDMI devices (paper Fig. 2).

    Parameters
    ----------
    driver:
        The QDMI driver owning the device registry.
    compiler:
        JIT compiler instance; a fresh one when omitted.
    compile_cache:
        Optional :class:`repro.serving.cache.CompileCache`. When set,
        compilation goes through the shared content-addressed cache
        (thread-safe, bounded) instead of the compiler's internal one.
    persistent_sessions:
        When true, the client keeps one QDMI session open per device
        and reuses it across submissions instead of opening and
        closing a session per job — the serving layer's workers use
        this to avoid per-request session churn. Call :meth:`close`
        (or use the client as a context manager) to release them.
    """

    def __init__(
        self,
        driver: QDMIDriver,
        *,
        compiler: JITCompiler | None = None,
        client_name: str = "mqss-client",
        compile_cache: Any | None = None,
        persistent_sessions: bool = False,
    ) -> None:
        self.driver = driver
        self.compiler = compiler if compiler is not None else JITCompiler()
        self.client_name = client_name
        self.compile_cache = compile_cache
        self.persistent_sessions = persistent_sessions
        self._adapters: dict[str, Adapter] = {}
        self._session_pool: dict[str, QDMISession] = {}
        self._session_lock = threading.Lock()
        for adapter in default_adapters():
            self.register_adapter(adapter)

    # ---- adapters ------------------------------------------------------------------

    def register_adapter(self, adapter: Adapter) -> None:
        """Register an adapter under its name."""
        if adapter.name in self._adapters:
            raise QDMIError(f"adapter {adapter.name!r} already registered")
        self._adapters[adapter.name] = adapter

    def adapter_names(self) -> list[str]:
        return sorted(self._adapters)

    def select_adapter(self, request: JobRequest) -> Adapter:
        """The adapter serving *request* (explicit name or autodetect)."""
        if request.adapter is not None:
            try:
                return self._adapters[request.adapter]
            except KeyError:
                raise QDMIError(
                    f"unknown adapter {request.adapter!r}; have "
                    f"{self.adapter_names()}"
                ) from None
        for adapter in self._adapters.values():
            if adapter.accepts(request.program):
                return adapter
        raise QDMIError(
            f"no adapter accepts program of type "
            f"{type(request.program).__name__}"
        )

    # ---- device / session plumbing -----------------------------------------------

    def resolve_target(self, device_name: str) -> tuple[Any, Any, bool]:
        """``(device, compile_target, remote)`` for *device_name*.

        Remote devices hide the calibration-bearing inner device;
        compilation happens against the execution target.
        """
        from repro.client.remote import RemoteDeviceProxy

        device = self.driver.get_device(device_name)
        remote = isinstance(device, RemoteDeviceProxy)
        return device, (device.inner if remote else device), remote

    def _lease_session(self, device_name: str) -> tuple[QDMISession, bool]:
        """A session on *device_name* plus whether the caller must close it."""
        if not self.persistent_sessions:
            return self.driver.open_session(device_name, self.client_name), True
        with self._session_lock:
            session = self._session_pool.get(device_name)
            if session is None or not session.is_open:
                session = self.driver.open_session(device_name, self.client_name)
                self._session_pool[device_name] = session
            return session, False

    def close(self) -> None:
        """Close any persistent sessions held by this client."""
        with self._session_lock:
            for session in self._session_pool.values():
                if session.is_open:
                    session.close()
            self._session_pool.clear()

    def __enter__(self) -> "MQSSClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ---- submission ------------------------------------------------------------------

    def compile_request(
        self,
        request: JobRequest,
        *,
        device_name: str | None = None,
        timings: dict[str, float] | None = None,
    ) -> CompiledProgram:
        """Adapter -> JIT compile *request* for a device (default: its own).

        Routes through the unified compile/cache core
        (:mod:`repro.api.core`) shared with the serving workers and the
        two-phase ``Executable`` API.
        """
        from repro.api.core import adapter_payload, compile_payload

        _, target, _ = self.resolve_target(device_name or request.device)
        payload = adapter_payload(
            self,
            request.program,
            target,
            adapter=request.adapter,
            timings=timings,
        )
        return compile_payload(
            self.compiler,
            self.compile_cache,
            payload,
            target,
            scalar_args=request.scalar_args or None,
            timings=timings,
        )

    def execute_compiled(
        self,
        request: JobRequest,
        program: CompiledProgram,
        *,
        device_name: str | None = None,
        shots: int | None = None,
        timings: dict[str, float] | None = None,
        should_cancel: Any | None = None,
    ) -> ClientResult:
        """Route *program* to a device and execute it.

        *device_name* overrides the request's device (failover path);
        *shots* overrides the request's shot count (coalesced batches).
        *should_cancel* is an optional zero-arg callable the device
        executor polls at chunk boundaries; when it returns True the
        execution aborts with :class:`~repro.errors.CancelledError`.
        """
        name = device_name or request.device
        _, _, remote = self.resolve_target(name)
        session, close_after = self._lease_session(name)
        try:
            t0 = time.perf_counter()
            if remote:
                fmt, job_payload = ProgramFormat.QIR_PULSE, program.qir
            else:
                fmt, job_payload = ProgramFormat.PULSE_SCHEDULE, program.schedule
            metadata: dict = {}
            if request.seed is not None:
                metadata["seed"] = request.seed
            # Per-request decoherence overrides (noise-parameter
            # sweeps) ride through to the device executor.
            decoherence = (request.metadata or {}).get("decoherence")
            if decoherence is not None:
                metadata["decoherence"] = decoherence
            if should_cancel is not None:
                metadata["should_cancel"] = should_cancel
            job = session.run(
                fmt,
                job_payload,
                shots=shots if shots is not None else request.shots,
                metadata=metadata or None,
            )
            if timings is not None:
                timings["execute"] = time.perf_counter() - t0

            if job.status is not JobStatus.DONE:
                raise ExecutionError(
                    f"job {job.job_id} on {name!r} failed: {job.error}"
                )
            result = job.result
            return ClientResult(
                device=name,
                counts=result.counts,
                probabilities=result.ideal_probabilities,
                shots=result.shots,
                duration_samples=result.duration_samples,
                timings_s=timings if timings is not None else {},
                job_id=job.job_id,
                remote=remote,
                # Serialization cost is only paid (and only meaningful)
                # on the remote path; the local fast path skips it.
                qir_size_bytes=len(program.qir.encode()) if remote else 0,
            )
        finally:
            if close_after:
                session.close()

    def submit(self, request: JobRequest) -> ClientResult:
        """Adapter -> JIT -> route -> execute -> result.

        .. deprecated::
            Superseded by the two-phase API: ``repro.compile(program,
            target).run(shots=...)`` (see :mod:`repro.api`).  The shim
            keeps the old signature and routes through the same core.
        """
        warnings.warn(
            "MQSSClient.submit is deprecated; use repro.compile(program, "
            "Target.from_client(client, device)).run(...) or repro.run(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._submit(request)

    def _submit(self, request: JobRequest) -> ClientResult:
        """One submission through the unified Program/Target/Executable
        core (internal, warning-free)."""
        from repro.api.core import run_request

        return run_request(self, request)

    def run_batch(
        self, requests: list[JobRequest], *, raise_on_error: bool = False
    ) -> list[ClientResult | BatchFailure]:
        """Submit requests in priority order (higher first, then FIFO).

        The returned list is aligned with the input order. A failed
        submission does not abort the batch or drop earlier results:
        its slot holds a :class:`BatchFailure` carrying the request and
        the exception. With ``raise_on_error=True`` an
        :class:`~repro.errors.ExecutionError` summarizing all failures
        is raised after every request has been attempted.

        .. deprecated::
            Superseded by ``Executable.sweep(...)`` / the serving layer
            (:meth:`PulseService.submit_many`); kept as a shim over the
            unified core.
        """
        warnings.warn(
            "MQSSClient.run_batch is deprecated; use Executable.sweep(...) "
            "or PulseService for batch traffic",
            DeprecationWarning,
            stacklevel=2,
        )
        order = sorted(
            range(len(requests)), key=lambda i: (-requests[i].priority, i)
        )
        results: list[ClientResult | BatchFailure] = (
            [None] * len(requests)  # type: ignore[list-item]
        )
        failures: list[BatchFailure] = []
        for i in order:
            try:
                results[i] = self._submit(requests[i])
            except Exception as exc:
                failure = BatchFailure(request=requests[i], error=exc, index=i)
                results[i] = failure
                failures.append(failure)
        if failures and raise_on_error:
            summary = "; ".join(
                f"[{f.index}] {f.request.device}: {f.error}" for f in failures
            )
            raise ExecutionError(
                f"{len(failures)}/{len(requests)} batch requests failed: {summary}"
            )
        return results
