"""MQSSClient: adapter dispatch, JIT compilation, job routing.

The client is the single entry point of Fig. 2: programs arrive from
any adapter, are JIT-compiled against the selected device's QDMI
constraints, and are routed either locally (in-memory schedule — the
fast HPC path) or remotely (serialized QIR with the Pulse Profile).
Per-stage timings are recorded for the architecture benchmark (E3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.client.adapters import Adapter, default_adapters
from repro.compiler.jit import JITCompiler
from repro.errors import ExecutionError, QDMIError
from repro.qdmi.driver import QDMIDriver
from repro.qdmi.job import QDMIJob
from repro.qdmi.properties import JobStatus, ProgramFormat


@dataclass
class JobRequest:
    """One client-side submission."""

    program: Any
    device: str
    shots: int = 1024
    adapter: str | None = None  # autodetect when None
    priority: int = 0
    scalar_args: dict[str, float] = field(default_factory=dict)
    seed: int | None = None
    metadata: dict = field(default_factory=dict)


@dataclass
class ClientResult:
    """What the client returns to the application."""

    device: str
    counts: dict[str, int]
    probabilities: dict[str, float]
    shots: int
    duration_samples: int
    timings_s: dict[str, float]
    job_id: int
    remote: bool
    qir_size_bytes: int = 0

    def expectation_z(self, slot: int = 0) -> float:
        """``<Z>`` of the bit at *slot* from exact probabilities."""
        total = 0.0
        for key, p in self.probabilities.items():
            total += p * (1.0 if key[slot] == "0" else -1.0)
        return total


class MQSSClient:
    """Routes jobs from adapters to QDMI devices (paper Fig. 2)."""

    def __init__(
        self,
        driver: QDMIDriver,
        *,
        compiler: JITCompiler | None = None,
        client_name: str = "mqss-client",
    ) -> None:
        self.driver = driver
        self.compiler = compiler if compiler is not None else JITCompiler()
        self.client_name = client_name
        self._adapters: dict[str, Adapter] = {}
        for adapter in default_adapters():
            self.register_adapter(adapter)

    # ---- adapters ------------------------------------------------------------------

    def register_adapter(self, adapter: Adapter) -> None:
        """Register an adapter under its name."""
        if adapter.name in self._adapters:
            raise QDMIError(f"adapter {adapter.name!r} already registered")
        self._adapters[adapter.name] = adapter

    def adapter_names(self) -> list[str]:
        return sorted(self._adapters)

    def _select_adapter(self, request: JobRequest) -> Adapter:
        if request.adapter is not None:
            try:
                return self._adapters[request.adapter]
            except KeyError:
                raise QDMIError(
                    f"unknown adapter {request.adapter!r}; have "
                    f"{self.adapter_names()}"
                ) from None
        for adapter in self._adapters.values():
            if adapter.accepts(request.program):
                return adapter
        raise QDMIError(
            f"no adapter accepts program of type "
            f"{type(request.program).__name__}"
        )

    # ---- submission --------------------------------------------------------------------

    def submit(self, request: JobRequest) -> ClientResult:
        """Adapter -> JIT -> route -> execute -> result."""
        timings: dict[str, float] = {}
        device = self.driver.get_device(request.device)
        session = self.driver.open_session(request.device, self.client_name)
        try:
            # Remote devices hide the calibration-bearing inner device;
            # compile against the execution target.
            from repro.client.remote import RemoteDeviceProxy

            remote = isinstance(device, RemoteDeviceProxy)
            target = device.inner if remote else device

            t0 = time.perf_counter()
            adapter = self._select_adapter(request)
            payload = adapter.to_payload(request.program, target)
            timings["adapter"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            program = self.compiler.compile(
                payload, target, scalar_args=request.scalar_args or None
            )
            timings["compile"] = time.perf_counter() - t0

            t0 = time.perf_counter()
            if remote:
                fmt, job_payload = ProgramFormat.QIR_PULSE, program.qir
            else:
                fmt, job_payload = ProgramFormat.PULSE_SCHEDULE, program.schedule
            job = session.run(
                fmt,
                job_payload,
                shots=request.shots,
                metadata={"seed": request.seed} if request.seed is not None else None,
            )
            timings["execute"] = time.perf_counter() - t0

            if job.status is not JobStatus.DONE:
                raise ExecutionError(
                    f"job {job.job_id} on {request.device!r} failed: {job.error}"
                )
            result = job.result
            return ClientResult(
                device=request.device,
                counts=result.counts,
                probabilities=result.ideal_probabilities,
                shots=result.shots,
                duration_samples=result.duration_samples,
                timings_s=timings,
                job_id=job.job_id,
                remote=remote,
                qir_size_bytes=len(program.qir.encode()),
            )
        finally:
            session.close()

    def run_batch(self, requests: list[JobRequest]) -> list[ClientResult]:
        """Submit requests in priority order (higher first, then FIFO)."""
        order = sorted(
            range(len(requests)), key=lambda i: (-requests[i].priority, i)
        )
        results: list[ClientResult | None] = [None] * len(requests)
        for i in order:
            results[i] = self.submit(requests[i])
        return [r for r in results if r is not None]
