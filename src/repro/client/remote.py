"""Remote device proxy: the "remote submission" path of Fig. 2.

A :class:`RemoteDeviceProxy` wraps a real (simulated) device behind a
serialization boundary: only *textual* payloads cross it — in-memory
schedules and module objects are rejected, exactly like a job leaving
the HPC center for a vendor cloud. The proxy also keeps simple transfer
telemetry (bytes shipped, simulated round-trip latency) so the Fig. 2
benchmark can report local-vs-remote costs.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.qdmi.device import QDMIDevice
from repro.qdmi.job import QDMIJob
from repro.qdmi.properties import (
    DeviceProperty,
    FrameProperty,
    JobStatus,
    OperationProperty,
    PortProperty,
    ProgramFormat,
    SiteProperty,
)
from repro.qdmi.types import Site

#: Formats that serialize to text and may cross the network boundary.
_TEXT_FORMATS = (
    ProgramFormat.QIR_PULSE,
    ProgramFormat.QIR_BASE,
    ProgramFormat.MLIR_PULSE,
    ProgramFormat.QASM3,
)


class RemoteDeviceProxy(QDMIDevice):
    """A QDMI device reachable only through serialized payloads."""

    def __init__(
        self,
        inner: QDMIDevice,
        *,
        name: str | None = None,
        latency_s: float = 0.05,
        bandwidth_bytes_per_s: float = 10e6,
    ) -> None:
        self._inner = inner
        self._name = name or f"remote:{inner.name}"
        self.latency_s = latency_s
        self.bandwidth = bandwidth_bytes_per_s
        self.telemetry = {
            "jobs": 0,
            "bytes_sent": 0,
            "simulated_transfer_s": 0.0,
            "queries": 0,
        }

    @property
    def name(self) -> str:
        return self._name

    @property
    def inner(self) -> QDMIDevice:
        """The wrapped device (test access)."""
        return self._inner

    # ---- queries forward (with telemetry) --------------------------------------------

    def query_device_property(self, prop: DeviceProperty) -> Any:
        self.telemetry["queries"] += 1
        if prop is DeviceProperty.NAME:
            return self._name
        if prop is DeviceProperty.SUPPORTED_FORMATS:
            inner_formats = set(
                self._inner.query_device_property(DeviceProperty.SUPPORTED_FORMATS)
            )
            return tuple(f for f in _TEXT_FORMATS if f in inner_formats)
        return self._inner.query_device_property(prop)

    def query_site_property(self, site: Site, prop: SiteProperty) -> Any:
        self.telemetry["queries"] += 1
        return self._inner.query_site_property(site, prop)

    def query_operation_property(
        self, operation: str, sites: Sequence[Site], prop: OperationProperty
    ) -> Any:
        self.telemetry["queries"] += 1
        return self._inner.query_operation_property(operation, sites, prop)

    def query_port_property(self, port, prop: PortProperty) -> Any:
        self.telemetry["queries"] += 1
        return self._inner.query_port_property(port, prop)

    def query_frame_property(self, frame, prop: FrameProperty) -> Any:
        self.telemetry["queries"] += 1
        return self._inner.query_frame_property(frame, prop)

    # ---- job interface ---------------------------------------------------------------

    def submit_job(self, job: QDMIJob) -> None:
        """Ship a serialized job across the simulated network."""
        if job.program_format not in _TEXT_FORMATS:
            if job.status is JobStatus.CREATED:
                job.transition(JobStatus.SUBMITTED)
            job.fail(
                f"remote device {self._name!r} only accepts serialized "
                f"formats {[f.value for f in _TEXT_FORMATS]}, got "
                f"{job.program_format.value!r}"
            )
            return
        if not isinstance(job.payload, str):
            if job.status is JobStatus.CREATED:
                job.transition(JobStatus.SUBMITTED)
            job.fail("remote payloads must be serialized text")
            return
        payload_bytes = len(job.payload.encode())
        self.telemetry["jobs"] += 1
        self.telemetry["bytes_sent"] += payload_bytes
        self.telemetry["simulated_transfer_s"] += (
            self.latency_s + payload_bytes / self.bandwidth
        )
        # Hand the same job object to the inner device; from the FSM's
        # perspective the network hop is invisible.
        inner_job = job
        self._forward(inner_job)

    def _forward(self, job: QDMIJob) -> None:
        self._inner.submit_job(job)
