"""Front-end-agnostic programs: the first phase of compile -> bind -> run.

A :class:`Program` wraps any of the stack's front-end representations
behind one type so the rest of the API (``Target``, ``Executable``,
``repro.compile``) never needs to know which surface built the kernel:

============  =====================================================
kind          source
============  =====================================================
``qpi``       a :class:`~repro.qpi.qpi.QCircuit` (paper Listing 1)
``circuit``   a :class:`~repro.qpi.pythonic.PythonicCircuit` or a
              gate-level ``quantum`` MLIR module
``schedule``  a :class:`~repro.core.schedule.PulseSchedule`
``qir``       QIR text with the Pulse Profile (paper Listing 3)
``mlir``      a ``pulse`` dialect module or its text (Listing 2) —
              the only kind that can declare scalar parameters
``qasm3``     OpenQASM-3-style text with ``cal`` blocks
============  =====================================================

Construction never touches a device: payload generation happens later,
against a concrete :class:`~repro.api.target.Target`, through the
client adapter registry.  For ``mlir`` sources the parsed module and
the declared scalar-parameter names are cached here so an
:class:`~repro.api.executable.Executable` can bind parameters without
re-parsing.
"""

from __future__ import annotations

from typing import Any

from repro.core.schedule import PulseSchedule
from repro.errors import ValidationError
from repro.mlir.ir import F64, Module
from repro.qpi.pythonic import PythonicCircuit
from repro.qpi.qpi import QCircuit

#: kind -> adapter registry name (None: the payload is compiler-ready).
_KIND_ADAPTERS = {
    "qpi": "qpi",
    "circuit": "circuit",
    "schedule": "pulse-ir",
    "qir": "qir",
    "mlir": "pulse-ir",
    "qasm3": "qasm3",
}


def _looks_like_qir(text: str) -> bool:
    # Keep in sync with QIRAdapter.accepts in repro/client/adapters.py
    # (the registry's source of truth for autodetection).
    head = text.lstrip()
    return head.startswith("; ModuleID") or "__quantum__" in text


class Program:
    """A front-end program, normalized for the two-phase execution API."""

    __slots__ = ("source", "kind", "name", "adapter", "_module", "_parameters")

    def __init__(
        self,
        source: Any,
        kind: str,
        *,
        name: str | None = None,
        adapter: str | None = "auto",
    ) -> None:
        if kind not in _KIND_ADAPTERS:
            raise ValidationError(
                f"unknown program kind {kind!r}; expected one of "
                f"{sorted(_KIND_ADAPTERS)}"
            )
        self.source = source
        self.kind = kind
        self.name = name or kind
        # "auto" pins the kind's canonical adapter; an explicit name is
        # kept verbatim; None defers to the registry's autodetection
        # (so unrecognized objects fail with the registry's QDMIError
        # and custom client adapters get their chance).
        self.adapter = _KIND_ADAPTERS[kind] if adapter == "auto" else adapter
        self._module: Module | None = None
        self._parameters: tuple[str, ...] | None = None

    # ---- constructors ----------------------------------------------------------------

    @classmethod
    def from_qpi(cls, circuit: QCircuit, *, name: str | None = None) -> "Program":
        """A program from a QPI circuit handle."""
        if not isinstance(circuit, QCircuit):
            raise ValidationError(
                f"from_qpi expects a QCircuit, got {type(circuit).__name__}"
            )
        return cls(circuit, "qpi", name=name)

    @classmethod
    def from_circuit(cls, circuit: Any, *, name: str | None = None) -> "Program":
        """A program from a Pythonic circuit or a gate-level MLIR module."""
        ok = isinstance(circuit, PythonicCircuit) or (
            isinstance(circuit, Module) and "quantum" in circuit.dialects_used()
        )
        if not ok:
            raise ValidationError(
                "from_circuit expects a PythonicCircuit or a quantum-dialect "
                f"module, got {type(circuit).__name__}"
            )
        return cls(circuit, "circuit", name=name)

    @classmethod
    def from_schedule(
        cls, schedule: PulseSchedule, *, name: str | None = None
    ) -> "Program":
        """A program from an executable pulse schedule."""
        if not isinstance(schedule, PulseSchedule):
            raise ValidationError(
                f"from_schedule expects a PulseSchedule, got "
                f"{type(schedule).__name__}"
            )
        return cls(schedule, "schedule", name=name or schedule.name)

    @classmethod
    def from_qir(cls, text: str, *, name: str | None = None) -> "Program":
        """A program from QIR text carrying the Pulse Profile."""
        if not isinstance(text, str) or not _looks_like_qir(text):
            raise ValidationError("from_qir expects QIR text")
        return cls(text, "qir", name=name)

    @classmethod
    def from_mlir(
        cls, payload: "Module | str", *, name: str | None = None
    ) -> "Program":
        """A program from a pulse-dialect module or its printed text.

        The only program kind that can declare scalar parameters
        (``pulse.sequence`` block arguments of type ``f64``); see
        :meth:`parameters` and :meth:`Executable.bind
        <repro.api.executable.Executable.bind>`.
        """
        if not isinstance(payload, (Module, str)):
            raise ValidationError(
                f"from_mlir expects a Module or MLIR text, got "
                f"{type(payload).__name__}"
            )
        return cls(payload, "mlir", name=name)

    @classmethod
    def from_qasm3(cls, text: str, *, name: str | None = None) -> "Program":
        """A program from OpenQASM-3-style text (with ``cal`` blocks)."""
        if not isinstance(text, str) or not text.lstrip().startswith("OPENQASM"):
            raise ValidationError("from_qasm3 expects OpenQASM 3 text")
        return cls(text, "qasm3", name=name)

    @classmethod
    def coerce(cls, obj: Any, *, adapter: str | None = None) -> "Program":
        """Normalize *obj* (any front-end object, or a Program) to a Program.

        An explicit *adapter* name overrides autodetection and is passed
        through to the client's adapter registry unchanged — custom
        adapters registered on a client keep working.
        """
        if isinstance(obj, Program):
            if adapter is not None:
                return cls(obj.source, obj.kind, name=obj.name, adapter=adapter)
            return obj
        if isinstance(obj, QCircuit):
            program = cls(obj, "qpi")
        elif isinstance(obj, PythonicCircuit):
            program = cls(obj, "circuit")
        elif isinstance(obj, PulseSchedule):
            program = cls(obj, "schedule", name=obj.name)
        elif isinstance(obj, Module):
            dialects = obj.dialects_used()
            gate_level = "quantum" in dialects and "pulse" not in dialects
            program = cls(obj, "circuit" if gate_level else "mlir")
        elif isinstance(obj, str):
            head = obj.lstrip()
            if head.startswith("OPENQASM"):
                program = cls(obj, "qasm3")
            elif _looks_like_qir(obj):
                program = cls(obj, "qir")
            elif "pulse.sequence" in obj:
                program = cls(obj, "mlir")
            else:
                # Unrecognized text: autodetect through the registry so
                # custom client-registered adapters keep working (and
                # truly unadaptable strings fail with the registry's
                # QDMIError, not a parse error deep in the JIT).  The
                # "circuit" kind is only a label here — it implies no
                # parsing and declares no parameters.
                program = cls(obj, "circuit", adapter=None)
        else:
            # Unknown type: leave the decision to the adapter registry so
            # client-registered custom adapters still get a chance (and
            # unadaptable objects fail with the registry's QDMIError).
            program = cls(obj, "circuit", adapter=None)
        if adapter is not None:
            program.adapter = adapter
        return program

    # ---- parametric structure --------------------------------------------------------

    @property
    def module(self) -> Module | None:
        """The parsed pulse module (``mlir`` kind only), parsed once."""
        if self.kind != "mlir":
            return None
        if self._module is None:
            if isinstance(self.source, Module):
                self._module = self.source
            else:
                from repro.mlir.parser import parse_module

                self._module = parse_module(self.source)
        return self._module

    @property
    def parameters(self) -> tuple[str, ...]:
        """Declared scalar parameter names, in declaration order.

        Non-``mlir`` programs have no declared parameters; binding them
        is a no-op that reuses the compiled artifact unchanged.
        """
        if self._parameters is None:
            names: list[str] = []
            module = self.module
            if module is not None:
                for seq in module.ops_of("pulse.sequence"):
                    entry = seq.region().entry
                    arg_names = seq.attr("pulse.args") or [
                        a.name for a in entry.arguments
                    ]
                    for arg, arg_name in zip(entry.arguments, arg_names):
                        if arg.type == F64 and arg_name not in names:
                            names.append(str(arg_name))
            self._parameters = tuple(names)
        return self._parameters

    @property
    def is_parametric(self) -> bool:
        """Whether the program declares scalar parameters."""
        return bool(self.parameters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = f", parameters={list(self.parameters)}" if self.is_parametric else ""
        return f"Program(kind={self.kind!r}, name={self.name!r}{params})"
