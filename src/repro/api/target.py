"""Execution targets: where a compiled program will run.

A :class:`Target` pins one device *and* the machinery that compiles
for and dispatches to it — resolving a device name to capabilities and
calibration state across the three execution surfaces the stack has:

* **a bare simulated device** (:meth:`Target.from_device`) — runs
  in-process through the device's own
  :class:`~repro.sim.executor.ScheduleExecutor`; dispatch goes straight
  to ``device.submit_job`` with no session churn (the low-overhead
  QPI-parity path);
* **a QDMI client** (:meth:`Target.from_client`) — any device in the
  client's driver registry, local or remote
  (:class:`~repro.client.remote.RemoteDeviceProxy` routes serialized
  QIR); dispatch via :meth:`MQSSClient.execute_compiled`;
* **a running service** (:meth:`Target.from_service`) — asynchronous
  dispatch through the :class:`~repro.serving.service.PulseService`
  queues (tickets, coalescing, failover), sharing the service's
  compile cache.

The target owns the *compile identity* of the device: its
:meth:`calibration_key` combines the device name with the believed
frame frequencies, so a recalibration invalidates every cached
executable — the same invalidation rule the serving cache uses.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ValidationError
from repro.qdmi.properties import DeviceProperty

#: Attribute under which :meth:`Target.from_device` memoizes its
#: Target on the device object itself.  Tying the memo's lifetime to
#: the device (instead of a module-level registry) means a transient
#: device's driver/client/compiler memo is collectable with it — the
#: reference cycle device -> target -> client -> driver -> device is
#: ordinary garbage the collector handles.
_DEVICE_TARGET_ATTR = "_repro_api_target"


class Target:
    """One resolved execution endpoint for the two-phase API."""

    def __init__(
        self,
        client: Any,
        device_name: str,
        *,
        service: Any | None = None,
        direct: bool = False,
    ) -> None:
        self.client = client
        self.device_name = device_name
        self.service = service
        #: Dispatch straight to ``device.submit_job`` (local fast path).
        self.direct = direct
        self._capabilities: dict[str, Any] | None = None

    # ---- constructors ----------------------------------------------------------------

    @classmethod
    def from_device(cls, device: Any) -> "Target":
        """A local target over a bare (typically simulated) device.

        The device is wrapped in a private driver + client so the one
        compile/cache path applies, but dispatch bypasses sessions and
        goes straight to ``device.submit_job`` — the behaviour the
        C-style ``qExecute`` had.  Targets are memoized per device
        object, so per-iteration calls in an optimizer loop reuse one
        client.
        """
        memo = getattr(device, _DEVICE_TARGET_ATTR, None)
        if isinstance(memo, cls):
            return memo
        from repro.client.client import MQSSClient
        from repro.qdmi.driver import QDMIDriver

        driver = QDMIDriver()
        driver.register_device(device)
        client = MQSSClient(driver, persistent_sessions=True)
        target = cls(client, device.name, direct=True)
        try:
            setattr(device, _DEVICE_TARGET_ATTR, target)
        except (AttributeError, TypeError):
            pass  # slotted/frozen device: just skip the memo
        return target

    @classmethod
    def from_client(cls, client: Any, device_name: str) -> "Target":
        """A target over a device registered with *client*'s driver."""
        return cls(client, device_name)

    @classmethod
    def from_service(cls, service: Any, device_name: str) -> "Target":
        """An asynchronous target dispatching through *service*.

        *service* may be a :class:`~repro.serving.service.PulseService`,
        a :class:`~repro.serving.cluster.ClusterService`, a connected
        :class:`~repro.serving.connect.ServiceClient`, or an
        ``http(s)://`` address of a running front-end (resolved via
        :func:`repro.serving.connect`).  Transports without a local
        client (cluster, HTTP) produce a *detached* target: requests
        carry the raw program and scalar args, and compilation happens
        service-side against the service's own compile cache.
        """
        if isinstance(service, str):
            from repro.serving.connect import connect

            service = connect(service)
        return cls(
            getattr(service, "client", None), device_name, service=service
        )

    @classmethod
    def resolve(cls, spec: Any, endpoint: Any | None = None) -> "Target":
        """Normalize ``(spec, endpoint)`` into a Target.

        *spec* may already be a Target (returned unchanged), a device
        object (wrapped via :meth:`from_device`), or a device name —
        in which case *endpoint* must be the client, service, or driver
        that knows the name.
        """
        if isinstance(spec, Target):
            return spec
        if isinstance(spec, str):
            if endpoint is None:
                raise ValidationError(
                    f"resolving device name {spec!r} needs a client, "
                    "service, or driver endpoint"
                )
            if isinstance(endpoint, str):  # front-end address
                return cls.from_service(endpoint, spec)
            if hasattr(endpoint, "submit_sweep"):  # service or client
                return cls.from_service(endpoint, spec)
            if hasattr(endpoint, "execute_compiled"):  # MQSSClient
                return cls.from_client(endpoint, spec)
            if hasattr(endpoint, "get_device"):  # QDMIDriver
                return cls.from_device(endpoint.get_device(spec))
            raise ValidationError(
                f"cannot resolve device name against "
                f"{type(endpoint).__name__}"
            )
        if hasattr(spec, "submit_job"):  # a QDMI device object
            return cls.from_device(spec)
        raise ValidationError(
            f"cannot build a Target from {type(spec).__name__}"
        )

    # ---- resolution ------------------------------------------------------------------

    def _require_client(self, what: str) -> Any:
        if self.client is None:
            raise ValidationError(
                f"{what} needs a local client, but this target is "
                "detached (cluster/HTTP transport): compilation and "
                "device resolution happen service-side"
            )
        return self.client

    @property
    def is_detached(self) -> bool:
        """Service-only target with no local client (cluster/HTTP)."""
        return self.client is None

    @property
    def device(self) -> Any:
        """The registered device object (remote proxy included)."""
        return self._require_client("device lookup").driver.get_device(
            self.device_name
        )

    @property
    def compile_device(self) -> Any:
        """The calibration-bearing device compilation runs against."""
        client = self._require_client("compilation")
        _, compile_device, _ = client.resolve_target(self.device_name)
        return compile_device

    @property
    def is_remote(self) -> bool:
        """Whether dispatch serializes to QIR over the remote path."""
        if self.client is None:
            return False
        _, _, remote = self.client.resolve_target(self.device_name)
        return remote

    @property
    def is_async(self) -> bool:
        """Whether dispatch goes through a service (tickets)."""
        return self.service is not None

    @property
    def compiler(self) -> Any:
        return self._require_client("compilation").compiler

    @property
    def cache(self) -> Any | None:
        """The compile cache this target's executables share."""
        if self.service is not None:
            return getattr(self.service, "cache", None)
        return self.client.compile_cache

    # ---- capabilities / calibration state -------------------------------------------

    @property
    def capabilities(self) -> dict[str, Any]:
        """QDMI-derived capability summary (queried once, cached)."""
        if self._capabilities is None:
            device = self.compile_device
            self._capabilities = {
                "technology": device.query_device_property(
                    DeviceProperty.TECHNOLOGY
                ),
                "num_sites": device.query_device_property(
                    DeviceProperty.NUM_SITES
                ),
                "pulse_support": device.pulse_support_level().value,
                "constraints": device.query_device_property(
                    DeviceProperty.PULSE_CONSTRAINTS
                ),
                "formats": device.supported_formats(),
                "remote": self.is_remote,
            }
        return self._capabilities

    @property
    def constraints(self) -> Any:
        return self.capabilities["constraints"]

    def calibration_key(self) -> str:
        """Device identity x calibration state (cache invalidation key)."""
        return self.compiler.device_state_key(self.compile_device)

    def describe(self) -> str:
        """One-line human summary for examples and logs."""
        if self.is_detached:
            return f"{self.device_name} dispatch=service (detached)"
        caps = self.capabilities
        mode = "service" if self.is_async else ("remote" if caps["remote"] else "local")
        return (
            f"{self.device_name} [{caps['technology']}] "
            f"{caps['num_sites']} sites, pulse={caps['pulse_support']}, "
            f"dispatch={mode}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "service" if self.is_async else ("direct" if self.direct else "client")
        return f"Target({self.device_name!r}, dispatch={mode!r})"
