"""The single compile/cache/dispatch path under every entry point.

Before this module existed the repo had three independent
compile-and-run pipelines: ``qExecute`` converted the op buffer and
submitted straight to the device, ``MQSSClient.submit`` composed
``compile_request``/``execute_compiled``, and ``PulseService`` workers
re-implemented the cache lookup inline.  All of them now funnel through
the two primitives here:

* :func:`adapter_payload` — front-end program -> compiler payload via
  the client's adapter registry (the only place adapters are invoked);
* :func:`compile_payload` — payload -> :class:`CompiledProgram` through
  the shared content-addressed cache when one is configured, the JIT
  compiler's internal memo otherwise (the only place compilation is
  triggered).

Dispatch stays :meth:`MQSSClient.execute_compiled` (sessions, format
routing, result assembly); :class:`repro.api.executable.Executable`
adds the direct-device fast path for local targets, which mirrors what
``qExecute`` used to do by hand.

This module deliberately imports nothing from :mod:`repro.client` or
:mod:`repro.serving` at module level so the package root can re-export
the API without import cycles.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.obs.tracing import span


def adapter_payload(
    client: Any,
    program: Any,
    compile_device: Any,
    *,
    adapter: str | None = None,
    timings: dict[str, float] | None = None,
) -> Any:
    """Normalize *program* into a compiler payload for *compile_device*.

    Adapter selection reuses the client's registry (explicit *adapter*
    name, else autodetect), so custom adapters registered on the client
    keep working through the unified API.
    """
    from repro.client.client import JobRequest

    t0 = time.perf_counter()
    with span("adapter", device=compile_device.name):
        request = JobRequest(program, compile_device.name, adapter=adapter)
        payload = client.select_adapter(request).to_payload(
            program, compile_device
        )
    if timings is not None:
        timings["adapter"] = time.perf_counter() - t0
    return payload


def compile_payload(
    compiler: Any,
    cache: Any,
    payload: Any,
    device: Any,
    *,
    scalar_args: Mapping[str, float] | None = None,
    timings: dict[str, float] | None = None,
) -> Any:
    """Compile *payload* for *device* through the configured cache.

    *cache* is a :class:`repro.serving.cache.CompileCache` (shared,
    bounded, thread-safe) or ``None``, in which case the compiler's
    internal memo provides the caching.  Every compilation in the stack
    — client submissions, serving workers, ``Executable`` binds —
    passes through this function.
    """
    t0 = time.perf_counter()
    with span("compile", device=device.name) as sp:
        if cache is not None:
            program = cache.get_or_compile(
                compiler, payload, device, scalar_args=scalar_args
            )
        else:
            program = compiler.compile(
                payload, device, scalar_args=scalar_args
            )
        sp.annotate(cache_hit=program.cache_hit)
    if timings is not None:
        timings["compile"] = time.perf_counter() - t0
    return program


def run_request(client: Any, request: Any) -> Any:
    """One-shot submission routed through Program -> Target -> Executable.

    This is what the deprecated ``MQSSClient.submit`` (and therefore
    ``run_batch``) delegates to: the old single-call surface expressed
    in terms of the two-phase core.
    """
    from repro.api.executable import Executable
    from repro.api.program import Program
    from repro.api.target import Target

    program = Program.coerce(request.program, adapter=request.adapter)
    target = Target.from_client(client, request.device)
    executable = Executable.prepare(
        program, target, params=request.scalar_args or None
    )
    return executable.run(
        shots=request.shots,
        seed=request.seed,
        metadata=request.metadata or None,
    )
