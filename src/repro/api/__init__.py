"""repro.api — the unified two-phase execution API.

One front door over every front-end and every backend::

    Program  --compile-->  Executable  --bind/run-->  Result
                  |
                Target

* :class:`Program` — a :class:`~repro.qpi.qpi.QCircuit`, a
  :class:`~repro.qpi.pythonic.PythonicCircuit`, a
  :class:`~repro.core.schedule.PulseSchedule`, QIR text, a pulse
  MLIR module/text, or QASM-3 text, behind one type;
* :class:`Target` — a device name resolved to capabilities +
  calibration state, whether it lives behind a bare simulated device,
  an :class:`~repro.client.client.MQSSClient`, or a running
  :class:`~repro.serving.service.PulseService`;
* :class:`Executable` — the compiled, content-addressed artifact with
  ``bind(params)``, ``run(shots=...)``, ``run_async()`` and
  ``sweep(grid)``.

:func:`compile` and :func:`run` are the convenience entry points
re-exported from the package root; the legacy surfaces (``qExecute``,
``MQSSClient.submit``/``run_batch``,
``PulseService.submit``/``submit_sweep``) are deprecation shims over
this module, so there is exactly one compile/cache/dispatch path.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.executable import Executable
from repro.api.program import Program
from repro.api.target import Target


def compile(
    program: Any,
    target: Any,
    *,
    params: Mapping[str, float] | None = None,
    endpoint: Any | None = None,
) -> Executable:
    """Compile *program* for *target*; phase one of compile -> bind -> run.

    *program* is a :class:`Program` or any front-end object
    (:meth:`Program.coerce` rules); *target* is a :class:`Target`, a
    device object, or a device name resolved against *endpoint* (a
    client, service, or driver).  A parametric program compiled without
    (full) *params* returns an unbound executable whose artifact
    materializes at the first :meth:`Executable.bind`.
    """
    resolved = Target.resolve(target, endpoint)
    executable = Executable.prepare(
        Program.coerce(program), resolved, params=params
    )
    return executable.compile()


def run(
    program: Any,
    target: Any,
    *,
    shots: int = 1024,
    params: Mapping[str, float] | None = None,
    seed: int | None = None,
    metadata: Mapping[str, Any] | None = None,
    endpoint: Any | None = None,
) -> Any:
    """One-shot convenience: ``compile(...)`` then ``run(shots=...)``."""
    return compile(program, target, params=params, endpoint=endpoint).run(
        shots=shots, seed=seed, metadata=metadata
    )


__all__ = ["Program", "Target", "Executable", "compile", "run"]
