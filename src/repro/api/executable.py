"""Executables: compiled, content-addressed, parameter-bindable artifacts.

The second phase of the two-phase API.  ``repro.compile(program,
target)`` produces an :class:`Executable`; the expensive work (adapter
normalization, JIT pipeline, constraint legalization, QIR emission)
happens once, and the hot-loop operations are cheap:

* :meth:`Executable.bind` — rebind scalar parameters, reusing the
  compiled template.  For parametric pulse programs the bind
  specializes a pre-compiled *schedule template* (clone + swap the
  scalar-fed instruction fields) instead of re-running the compiler,
  and the bound artifact is remembered under its
  :meth:`JITCompiler.cache_key <repro.compiler.jit.JITCompiler.cache_key>`
  so revisited parameter points are cache hits.  This is the
  FWDA-style amortization the paper's Listing-1 VQE loop needs:
  factorize once, solve per query.
* :meth:`Executable.run` — execute and return a
  :class:`~repro.client.client.ClientResult`; local device targets
  dispatch straight to ``device.submit_job`` (the QPI-parity fast
  path), client targets go through
  :meth:`MQSSClient.execute_compiled`, service targets through the
  ticket queue.
* :meth:`Executable.run_async` / :meth:`Executable.sweep` — service
  fan-out over the same artifacts.

The schedule-template trick is sound because the pulse dialect has no
scalar arithmetic: an ``f64`` block argument flows *verbatim* into
instruction fields (frame frequencies, phases, shift deltas).  Binding
therefore cannot change timing, waveforms, or instruction count — only
those scalar fields — which the template records by interpreting the
sequence twice with distinct sentinel values and diffing the results.
Anything that breaks the assumptions (multiple sequences, constraint
violations in the static structure, scalar-dependent divergence)
disables the fast path and binds fall back to the full compiler, so
the semantics never depend on the optimization.
"""

from __future__ import annotations

import math
import time
from typing import Any, Iterable, Mapping, Sequence

from repro.api.core import adapter_payload, compile_payload
from repro.api.program import Program
from repro.api.target import Target
from repro.core.schedule import PulseSchedule
from repro.errors import ExecutionError, ReproError, ValidationError
from repro.obs.tracing import span

#: Instruction fields a pulse.sequence scalar argument can feed.
_SCALAR_FIELDS = ("frequency", "phase", "delta")


class _ScheduleTemplate:
    """A compiled schedule with recorded scalar-parameter slots."""

    __slots__ = ("base", "by_index", "frequency_params")

    def __init__(
        self,
        base: PulseSchedule,
        slots: list[tuple[int, str, str]],
    ) -> None:
        self.base = base
        grouped: dict[int, list[tuple[str, str]]] = {}
        for idx, fld, name in slots:
            grouped.setdefault(idx, []).append((fld, name))
        self.by_index = tuple(
            (idx, tuple(pairs)) for idx, pairs in sorted(grouped.items())
        )
        #: Parameters that land in carrier-frequency fields get the
        #: same range check legalization would apply.
        self.frequency_params = tuple(
            sorted({name for _, fld, name in slots if fld == "frequency"})
        )

    def specialize(self, params: Mapping[str, float]) -> PulseSchedule:
        """A schedule with every scalar slot bound from *params*.

        Hot path of every per-point bind: the slotted (frozen
        dataclass) items are shallow-copied field-for-field instead of
        going through :func:`dataclasses.replace`, whose per-call field
        introspection dominated sweep-sized binds. The only
        ``__post_init__`` check this skips is scalar finiteness, which
        is re-applied explicitly (range checks for frequency slots
        happen in the callers, exactly as before).
        """
        base = self.base
        items = list(base._items)
        for idx, pairs in self.by_index:
            item = items[idx]
            ins = item.instruction
            new_ins = object.__new__(type(ins))
            new_ins.__dict__.update(ins.__dict__)
            for fld, name in pairs:
                value = float(params[name])
                if not math.isfinite(value):
                    raise ValidationError(
                        f"parameter {name!r} must be finite, got {value!r}"
                    )
                new_ins.__dict__[fld] = value
            new_item = object.__new__(type(item))
            new_item.__dict__.update(item.__dict__)
            new_item.__dict__["instruction"] = new_ins
            items[idx] = new_item
        return base.clone_with_items(items)


def _build_template(
    program: Program, device: Any, constraints: Any
) -> _ScheduleTemplate | None:
    """Trace *program*'s pulse module into a bindable schedule template.

    Returns ``None`` whenever any assumption fails — callers then bind
    through the full compiler instead.
    """
    module = program.module
    names = program.parameters
    if module is None or not names:
        return None
    try:
        from repro.mlir.interp import module_to_schedule

        # Sentinels must be positive (a scalar may feed a frequency
        # field, whose instruction rejects negatives at construction),
        # distinct per argument, distinct across the two traces, and
        # exactly representable so the diff maps values back to names.
        trace_a = {n: (k + 1) * 1048576.0 + 0.5 for k, n in enumerate(names)}
        trace_b = {n: (k + 1) * 1048576.0 + 0.25 for k, n in enumerate(names)}
        sched_a = module_to_schedule(module, device, trace_a)
        sched_b = module_to_schedule(module, device, trace_b)
        items_a, items_b = sched_a._items, sched_b._items
        if len(items_a) != len(items_b):
            return None
        by_value = {v: n for n, v in trace_a.items()}
        slots: list[tuple[int, str, str]] = []
        for idx, (ia, ib) in enumerate(zip(items_a, items_b)):
            if ia.t0 != ib.t0 or type(ia.instruction) is not type(ib.instruction):
                return None
            for fld in _SCALAR_FIELDS:
                va = getattr(ia.instruction, fld, None)
                if va is None:
                    continue
                if va != getattr(ib.instruction, fld):
                    name = by_value.get(va)
                    if name is None:  # value was transformed: bail out
                        return None
                    slots.append((idx, fld, name))
        if not slots:
            return None
        template = _ScheduleTemplate(sched_a, slots)
        # Validate the *static* structure once (timing grid, waveform
        # durations/amplitudes) with neutral, in-range scalar values;
        # a failure means legalization has real work to do, so the
        # fast path stays off and binds run the full pipeline.
        mid_freq = 0.5 * (constraints.min_frequency + constraints.max_frequency)
        neutral = {
            n: (mid_freq if n in template.frequency_params else 0.0)
            for n in names
        }
        constraints.validate_schedule(template.specialize(neutral))
        return template
    except ReproError:
        return None


class Executable:
    """A compiled program pinned to one target, ready to bind and run."""

    def __init__(
        self,
        program: Program,
        target: Target,
        *,
        params: Mapping[str, float] | None = None,
        backend: str | None = None,
    ) -> None:
        self.program = program
        self.target = target
        #: Array backend/dtype spec ("numpy/complex64", ...) executions
        #: of this artifact run under; None keeps the device's ambient
        #: repro.xp scope. Part of the compilation cache key so one
        #: numeric policy's artifacts never answer for another's.
        self.backend = backend
        # Coerce to float exactly like bind() does, so compile-time and
        # bind-time keys for the same logical point agree (1 vs 1.0).
        self.params: dict[str, float] = {
            str(k): float(v) for k, v in dict(params or {}).items()
        }
        self.compiled: Any | None = None
        self._payload: Any = None
        self._payload_fp: str | None = None
        self._template: _ScheduleTemplate | None | bool = None
        self._timings: dict[str, float] = {}
        #: Calibration state the payload/template/artifact were built
        #: against; a drifting device invalidates all three.
        self._state_key: str | None = None

    # ---- construction ----------------------------------------------------------------

    @classmethod
    def prepare(
        cls,
        program: Program,
        target: Target,
        *,
        params: Mapping[str, float] | None = None,
    ) -> "Executable":
        """Adapter-normalize *program* for *target* (no compilation yet).

        Detached service targets skip local normalization — the raw
        program travels with the request and the serving side runs the
        adapter + compile pipeline.
        """
        executable = cls(program, target, params=params)
        if not target.is_detached:
            executable._ensure_payload()
        return executable

    def compile(self) -> "Executable":
        """Run the compile phase now (idempotent); returns ``self``.

        A parametric program with incomplete bindings compiles its
        schedule template instead of a concrete artifact; the artifact
        materializes at the first :meth:`bind`.  Detached service
        targets (cluster/HTTP) compile service-side, so this is a
        no-op for them.
        """
        if self.target.is_detached:
            return self
        self._ensure_payload()
        missing = set(self.program.parameters) - set(self.params)
        if missing:
            self._ensure_template()
        else:
            self._ensure_compiled()
        return self

    # ---- internal plumbing -----------------------------------------------------------

    def _refresh_if_recalibrated(self) -> None:
        """Drop device-bound state after a calibration write-back.

        Adapter payloads, schedule templates, and compiled artifacts
        all bake in the device's believed frame frequencies; when the
        calibration state key changes (the same key that namespaces the
        compile cache), everything device-bound is rebuilt on demand —
        matching what the per-call APIs always did by re-running the
        adapter per submission.
        """
        if self.target.is_detached:
            return  # no local calibration view; service-side cache rules
        state = self.target.compiler.device_state_key(
            self.target.compile_device
        )
        if self._state_key is None:
            self._state_key = state
        elif state != self._state_key:
            self._state_key = state
            self._payload = None
            self._payload_fp = None
            self._template = None
            self.compiled = None

    def _ensure_payload(self) -> Any:
        self._refresh_if_recalibrated()
        if self._payload is None:
            self._payload = adapter_payload(
                self.target.client,
                self.program.source,
                self.target.compile_device,
                adapter=self.program.adapter,
                timings=self._timings,
            )
        return self._payload

    def _payload_fingerprint(self) -> str:
        if self._payload_fp is None:
            self._payload_fp = self.target.compiler.payload_fingerprint(
                self._ensure_payload()
            )
        return self._payload_fp

    def _ensure_template(self) -> "_ScheduleTemplate | None":
        if self._template is None:
            with span("template.trace", program=self.program.name) as sp:
                try:
                    constraints = self.target.constraints
                except ReproError:
                    constraints = None
                template = (
                    _build_template(
                        self.program, self.target.compile_device, constraints
                    )
                    if constraints is not None
                    else None
                )
                sp.annotate(templated=template is not None)
            self._template = template if template is not None else False
        return self._template or None

    def _cache_key(self) -> str:
        return self.target.compiler.compose_cache_key(
            self._payload_fingerprint(),
            self.target.compile_device,
            self.params or None,
            backend=self.backend,
        )

    def _ensure_compiled(self) -> Any:
        """The full compile path (adapter payload -> JIT -> cache)."""
        self._refresh_if_recalibrated()
        if self.compiled is not None:
            return self.compiled
        self._ensure_payload()
        missing = set(self.program.parameters) - set(self.params)
        if missing:
            raise ValidationError(
                f"executable has unbound parameters {sorted(missing)}; "
                "call bind() before run()"
            )
        self.compiled = compile_payload(
            self.target.compiler,
            self.target.cache,
            self._payload,
            self.target.compile_device,
            scalar_args=self.params or None,
            timings=self._timings,
        )
        return self.compiled

    def _compile_bound(self) -> Any:
        """The bind-time compile: cache probe, then template, then JIT."""
        self._refresh_if_recalibrated()
        if self.compiled is not None:
            return self.compiled
        self._ensure_payload()
        compiler = self.target.compiler
        cache = self.target.cache
        device = self.target.compile_device
        t0 = time.perf_counter()
        key = self._cache_key()
        with span("compile", bound=True) as sp:
            with span("cache.lookup", cache="artifact") as lsp:
                cached = (
                    cache.lookup(key)
                    if cache is not None
                    else compiler.lookup(key)
                )
                lsp.annotate(hit=cached is not None)
            if cached is not None:
                self.compiled = cached
                self._timings["compile"] = time.perf_counter() - t0
                sp.annotate(path="cache-hit")
                return cached
            template = self._ensure_template() if self.is_bound else None
            if template is not None:
                compiled = self._specialize(template, compiler, device, t0)
                if compiled is not None:
                    if cache is not None:
                        cache.store(key, compiled)
                    else:
                        compiler.store(key, compiled)
                    self.compiled = compiled
                    self._timings["compile"] = time.perf_counter() - t0
                    sp.annotate(path="template")
                    return compiled
            sp.annotate(path="jit")
            return self._ensure_compiled()

    def _specialize(
        self, template: _ScheduleTemplate, compiler: Any, device: Any, t0: float
    ) -> Any | None:
        """Bind the schedule template; ``None`` defers to the compiler."""
        from repro.compiler.jit import CompiledProgram

        try:
            constraints = self.target.constraints
            for name in template.frequency_params:
                constraints.validate_frequency(float(self.params[name]))
            schedule = template.specialize(self.params)
        except (ReproError, KeyError, TypeError, ValueError):
            return None
        if self.target.is_remote:
            from repro.qir.emitter import schedule_to_qir

            qir = schedule_to_qir(schedule)
        else:
            qir = ""
        return CompiledProgram(
            device_name=device.name,
            schedule=schedule,
            pulse_module=self.program.module,
            qir=qir,
            pass_report=None,
            compile_time_s=time.perf_counter() - t0,
            metadata={
                "granularity": self.target.constraints.granularity,
                "dt": self.target.constraints.dt,
                "bound_template": True,
                "parameters": dict(self.params),
            },
        )

    # ---- the two-phase hot loop ------------------------------------------------------

    def specialize(
        self,
        params: Mapping[str, float] | None = None,
        *,
        stretch: float | None = None,
    ) -> PulseSchedule | None:
        """The bound schedule via the template fast path *only*.

        Merges *params* over the executable's bindings and specializes
        the pre-compiled schedule template — no artifact construction,
        no cache write; the primitives tier uses this to mint one
        schedule per PUB point at clone-and-swap cost before handing
        the whole batch to the device executor. Returns ``None``
        whenever the fast path is unavailable (non-parametric program,
        no template, out-of-range frequency, incomplete bindings) —
        callers then fall back to :meth:`bind`, whose semantics this
        path matches exactly (the same frequency-range check
        legalization would apply).

        *stretch* dilates the specialized schedule by a ZNE stretch
        factor (:func:`repro.core.stretch.stretch_schedule`): durations
        scale by the factor, amplitudes rescale to preserve every
        pulse's area. An invalid factor — or one that dilates a pulse
        past the target's constraints — raises
        :class:`~repro.errors.ValidationError` rather than returning
        ``None``: a broken stretch must fail loudly, never silently
        hand back an un-stretched schedule. When the template is
        unavailable the fallback contract is the caller's
        ``bind(params)`` *followed by* an explicit
        ``stretch_schedule`` on the bound schedule (what
        ``BasePrimitive._point_schedules`` does).
        """
        if stretch is not None:
            from repro.core.stretch import coerce_stretch_factor

            stretch = coerce_stretch_factor(stretch)
        if not self.program.is_parametric or self.target.is_detached:
            return None
        self._ensure_payload()
        template = self._ensure_template()
        if template is None:
            return None
        merged = dict(self.params)
        if params:
            merged.update({str(k): float(v) for k, v in dict(params).items()})
        if set(self.program.parameters) - set(merged):
            return None
        try:
            constraints = self.target.constraints
            for name in template.frequency_params:
                constraints.validate_frequency(float(merged[name]))
            schedule = template.specialize(merged)
        except (ReproError, KeyError, TypeError, ValueError):
            return None
        if stretch is not None and stretch != 1.0:
            from repro.core.stretch import stretch_schedule

            # ValidationError propagates: stretching past the target's
            # constraints is a caller error, not a fast-path miss.
            schedule = stretch_schedule(
                schedule, stretch, constraints=self.target.constraints
            )
        return schedule

    def bind(
        self, params: Mapping[str, float] | None = None, **kwargs: float
    ) -> "Executable":
        """A new executable with (re)bound scalar parameters.

        Merges over any existing bindings.  The returned executable
        shares this one's adapter payload, fingerprint, and schedule
        template, so the per-bind cost is a cache probe plus — at most
        — a template specialization; the full compiler only runs when
        the fast path is unavailable.
        """
        merged = dict(self.params)
        if params:
            merged.update({str(k): float(v) for k, v in dict(params).items()})
        if kwargs:
            merged.update({k: float(v) for k, v in kwargs.items()})
        if self.target.is_detached:
            # Bindings ride the request's scalar_args; the serving
            # side compiles (and caches) the bound point.
            return Executable(
                self.program, self.target, params=merged, backend=self.backend
            )
        self._ensure_payload()
        if self.program.is_parametric:
            self._ensure_template()  # built once, shared by every bind
        bound = Executable(
            self.program, self.target, params=merged, backend=self.backend
        )
        bound._payload = self._payload
        bound._payload_fp = self._payload_fp
        bound._template = self._template
        bound._timings = dict(self._timings)
        bound._state_key = self._state_key
        if bound.is_bound:
            bound._compile_bound()
        return bound

    def run(
        self,
        shots: int = 1024,
        *,
        seed: int | None = None,
        metadata: Mapping[str, Any] | None = None,
        timeout: float | None = None,
        backend: str | None = None,
    ) -> Any:
        """Execute and return a :class:`~repro.client.client.ClientResult`.

        Service targets submit asynchronously and block on the ticket
        (bounded by *timeout*); everything else dispatches inline.
        *backend* overrides the executable's array backend/dtype spec
        for this call (local direct targets only — the spec rides the
        job metadata down to the device executor).
        """
        spec = backend if backend is not None else self.backend
        if spec is not None and not (
            self.target.direct and not self.target.is_remote
        ):
            raise ValidationError(
                "backend= needs a local direct target (the array-backend "
                "spec travels as job metadata to the device executor); "
                "scope remote/service processes with repro.xp.use_backend"
            )
        with span(
            "run", device=self.target.device_name, shots=shots
        ):
            if self.target.is_async:
                ticket = self.run_async(
                    shots=shots, seed=seed, metadata=metadata
                )
                return ticket.result(timeout)
            compiled = self._ensure_compiled()
            timings = dict(self._timings)
            if self.target.direct and not self.target.is_remote:
                with span("dispatch", mode="direct"):
                    return self._run_direct(
                        compiled, shots, seed, metadata, timings, backend=spec
                    )
            request = self._as_request(shots, seed, metadata)
            with span("dispatch", mode="client"):
                return self.target.client.execute_compiled(
                    request, compiled, timings=timings
                )

    def run_async(
        self,
        shots: int = 1024,
        *,
        seed: int | None = None,
        metadata: Mapping[str, Any] | None = None,
        block: bool = True,
    ) -> Any:
        """Submit through the target's service; returns the JobTicket.

        The bound artifact is already in the service's compile cache,
        so the worker's compile step is a cache hit.
        """
        service = self.target.service
        if service is None:
            raise ValidationError(
                "run_async needs a service target; build it with "
                "Target.from_service(service, device_name)"
            )
        if self.target.is_detached:
            # Cluster/HTTP transports compile on the serving side; the
            # request ships the raw program plus scalar bindings.
            if not self.is_bound:
                missing = sorted(
                    set(self.program.parameters) - set(self.params)
                )
                raise ValidationError(
                    f"executable has unbound parameters {missing}; "
                    "call bind() before run()"
                )
        else:
            self._ensure_compiled()
        return service._admit_request(
            self._as_request(shots, seed, metadata), block=block
        )

    def sweep(
        self,
        grid: Iterable[Mapping[str, float]],
        *,
        shots: int = 1024,
        seed: int | None = None,
        metadata: Mapping[str, Any] | None = None,
        timeout: float | None = None,
    ) -> list[Any]:
        """Bind + run every parameter point; results in grid order.

        Each point binds through the template fast path (warming the
        shared compile cache) and, on a service target, the points
        execute concurrently through the device queues.
        """
        points: Sequence[Mapping[str, float]] = list(grid)
        bound = [self.bind(point) for point in points]
        if self.target.is_async:
            tickets = [
                b.run_async(shots=shots, seed=seed, metadata=metadata)
                for b in bound
            ]
            return [t.result(timeout) for t in tickets]
        return [
            b.run(shots=shots, seed=seed, metadata=metadata) for b in bound
        ]

    # ---- dispatch helpers ------------------------------------------------------------

    def _as_request(
        self,
        shots: int,
        seed: int | None,
        metadata: Mapping[str, Any] | None,
    ) -> Any:
        from repro.client.client import JobRequest

        return JobRequest(
            program=self.program.source,
            device=self.target.device_name,
            shots=shots,
            adapter=self.program.adapter,
            scalar_args=dict(self.params),
            seed=seed,
            metadata=dict(metadata or {}),
        )

    def _run_direct(
        self,
        compiled: Any,
        shots: int,
        seed: int | None,
        metadata: Mapping[str, Any] | None,
        timings: dict[str, float],
        backend: str | None = None,
    ) -> Any:
        """Session-free dispatch straight to the device (local targets)."""
        from repro.client.client import ClientResult
        from repro.qdmi.job import QDMIJob
        from repro.qdmi.properties import JobStatus, ProgramFormat

        job_metadata: dict[str, Any] = {}
        if seed is not None:
            job_metadata["seed"] = seed
        if backend is not None:
            job_metadata["backend"] = backend
        if metadata and metadata.get("decoherence") is not None:
            job_metadata["decoherence"] = metadata["decoherence"]
        device = self.target.device
        t0 = time.perf_counter()
        job = QDMIJob(
            device.name,
            ProgramFormat.PULSE_SCHEDULE,
            compiled.schedule,
            shots=shots,
            metadata=job_metadata or None,
        )
        device.submit_job(job)
        timings["execute"] = time.perf_counter() - t0
        if job.status is not JobStatus.DONE:
            raise ExecutionError(
                f"job {job.job_id} on {device.name!r} failed: {job.error}"
            )
        result = job.result
        return ClientResult(
            device=device.name,
            counts=result.counts,
            probabilities=result.ideal_probabilities,
            shots=result.shots,
            duration_samples=result.duration_samples,
            timings_s=timings,
            job_id=job.job_id,
            remote=False,
        )

    # ---- introspection ---------------------------------------------------------------

    @property
    def is_bound(self) -> bool:
        """Whether every declared parameter has a binding."""
        return not (set(self.program.parameters) - set(self.params))

    @property
    def cache_key(self) -> str:
        """The content-addressed key of this (bound) compilation."""
        self._ensure_payload()
        return self._cache_key()

    @property
    def schedule(self) -> PulseSchedule | None:
        """The compiled schedule, if the artifact is materialized."""
        return self.compiled.schedule if self.compiled is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.compiled is not None:
            state = "compiled"
        elif not self.is_bound:
            state = "template"
        else:
            state = "prepared"
        return (
            f"Executable({self.program.name!r} @ {self.target.device_name!r}, "
            f"{state}, params={self.params})"
        )
