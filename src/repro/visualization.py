"""ASCII schedule visualization.

Terminal-friendly rendering of pulse schedules — one lane per port,
time left to right — for debugging lowering output and for the
examples. No plotting dependencies; pure text.

Symbols: ``#`` play, ``=`` capture, ``.`` idle, ``|`` frame update
(virtual, drawn at its time point), ``B`` omitted (barriers carry no
time once placement is absolute).
"""

from __future__ import annotations

from repro.core.instructions import Capture, Play
from repro.core.schedule import PulseSchedule


def render_schedule(
    schedule: PulseSchedule,
    *,
    width: int = 72,
    show_virtual: bool = True,
) -> str:
    """Render *schedule* as an ASCII timeline, one lane per port."""
    duration = schedule.duration
    ports = schedule.ports()
    if duration == 0 or not ports:
        return "(empty schedule)\n"
    scale = duration / width
    name_width = max(len(p.name) for p in ports)

    lanes: dict[str, list[str]] = {p.name: ["."] * width for p in ports}
    for item in schedule.ordered():
        ins = item.instruction
        col0 = min(width - 1, int(item.t0 / scale))
        if isinstance(ins, (Play, Capture)):
            col1 = max(col0 + 1, min(width, int(round(item.t1 / scale))))
            ch = "#" if isinstance(ins, Play) else "="
            lane = lanes[ins.port.name]
            for c in range(col0, col1):
                lane[c] = ch
        elif show_virtual and ins.duration == 0 and len(ins.ports) == 1:
            lane = lanes[ins.ports[0].name]
            if lane[col0] == ".":
                lane[col0] = "|"

    lines = [
        f"schedule {schedule.name!r}: {duration} samples, "
        f"{len(schedule)} instructions"
    ]
    for p in ports:
        lines.append(f"{p.name:>{name_width}} {''.join(lanes[p.name])}")
    tick = f"{'':>{name_width}} 0{'':{width - 2}}{duration}"
    lines.append(tick)
    return "\n".join(lines) + "\n"


def render_waveform(waveform, *, width: int = 64, height: int = 8) -> str:
    """Render a waveform's real part as a small ASCII plot."""
    import numpy as np

    samples = np.real(waveform.samples())
    n = len(samples)
    xs = np.linspace(0, n - 1, width).astype(int)
    values = samples[xs]
    peak = max(1e-12, float(np.abs(values).max()))
    rows = []
    levels = np.round((values / peak) * (height // 2)).astype(int)
    for row in range(height // 2, -(height // 2) - 1, -1):
        line = "".join(
            "*" if lv == row else ("-" if row == 0 else " ") for lv in levels
        )
        rows.append(line)
    rows.append(f"duration={n} samples, peak={peak:.4g}")
    return "\n".join(rows) + "\n"
