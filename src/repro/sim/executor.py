"""Schedule execution: pulse schedules -> quantum dynamics -> shots.

The :class:`ScheduleExecutor` is what a simulated QDMI device calls when
a pulse job reaches it. It interprets a
:class:`~repro.core.schedule.PulseSchedule` against a
:class:`~repro.sim.model.SystemModel`:

1. Frame timelines — for every (port, frame) pair the executor builds
   per-sample carrier frequency and static-phase arrays from the
   schedule's frame instructions, with phase-continuous frequency
   updates (matching :class:`~repro.core.frame.FrameState` semantics).
2. Drive synthesis — every :class:`Play` adds its envelope samples,
   modulated by the frame's accumulated detuning phase, onto its port's
   complex drive array (fully vectorized).
3. Evolution — the per-sample drive matrix is split into runs of
   constant value (:func:`~repro.sim.evolve.segment_runs`); the runs'
   Hamiltonians are stacked and diagonalized in one batched call
   (:func:`~repro.sim.evolve.batched_propagators`), with a
   :class:`~repro.sim.evolve.PropagatorCache` short-circuiting runs
   whose amplitudes were seen before (flat-tops, parameter sweeps) and
   drift-only runs reusing the model's precomputed eigendecomposition.
4. Decoherence — with finite T1/T2 the state is a density matrix and
   the constant runs evolve through the batched open-system engine
   (:class:`~repro.sim.open_system.OpenSystemEngine`): exact Lindblad
   superoperator propagators, stacked and exponentiated together, with
   a quantum-jump trajectory path for large Hilbert spaces. The legacy
   unitary+Kraus Trotter interleave is kept behind
   ``open_system_method="kraus"`` (first-order splitting during drive,
   no inter-level cascade within a run).
5. Measurement — :class:`Capture` instructions define the measured
   sites and classical slots; outcomes include exact probabilities,
   seeded shot counts, and per-site leakage.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.frame import Frame
from repro.core.instructions import (
    Capture,
    FrameChange,
    Play,
    SetFrequency,
    SetPhase,
    ShiftFrequency,
    ShiftPhase,
)
from repro.core.distributions import distribution_expectation_z
from repro.core.port import Port
from repro.core.schedule import PulseSchedule
from repro.errors import ExecutionError, ValidationError
from repro.sim.evolve import (
    PropagatorCache,
    free_propagator,
    segment_runs,
)
from repro.sim.measurement import (
    ReadoutModel,
    apply_readout_error,
    leakage_populations,
    measured_bit_distribution,
    sample_counts,
)
from repro.sim.model import SystemModel
from repro.sim.open_system import (
    _RATE_FLOOR,
    OpenSystemEngine,
    dephasing_rate,
)
from repro.sim.operators import basis_state, identity

_TWO_PI = 2.0 * math.pi


@dataclass
class ExecutionResult:
    """Outcome of executing one pulse schedule.

    Attributes
    ----------
    counts:
        Sampled shot counts keyed by bitstring (slot 0 leftmost).
    probabilities:
        Exact outcome distribution *after* readout error.
    ideal_probabilities:
        Exact outcome distribution *before* readout error.
    final_state:
        Final ket (no decoherence) or density matrix.
    measured_sites:
        Site index per classical slot, ascending slot order.
    leakage:
        Per-site population of levels >= 2 at the end.
    duration_samples / duration_seconds:
        Schedule length.
    shots:
        Number of samples drawn.
    """

    counts: dict[str, int]
    probabilities: dict[str, float]
    ideal_probabilities: dict[str, float]
    final_state: np.ndarray
    measured_sites: tuple[int, ...]
    leakage: dict[int, float]
    duration_samples: int
    duration_seconds: float
    shots: int
    metadata: dict = field(default_factory=dict)

    def expectation_z(self, slot: int = 0) -> float:
        """``<Z>`` of the bit in *slot* from the exact probabilities."""
        if not self.measured_sites:
            raise ValidationError(
                "expectation_z is undefined: the schedule captured no "
                "measurement (no Capture instructions, empty distribution)"
            )
        return distribution_expectation_z(
            self.probabilities, slot, n_slots=len(self.measured_sites)
        )


class _FrameTimeline:
    """Per-sample frequency/static-phase arrays for one mixed frame."""

    __slots__ = ("frequency", "static_phase")

    def __init__(self, frame: Frame, duration: int) -> None:
        self.frequency = np.full(duration, frame.frequency, dtype=np.float64)
        self.static_phase = np.full(duration, frame.phase, dtype=np.float64)

    def set_frequency(self, t0: int, value: float) -> None:
        self.frequency[t0:] = value

    def shift_frequency(self, t0: int, delta: float) -> None:
        self.frequency[t0:] += delta

    def set_phase(self, t0: int, value: float) -> None:
        self.static_phase[t0:] = value

    def shift_phase(self, t0: int, delta: float) -> None:
        self.static_phase[t0:] += delta

    def detuning_phase(self, reference_frequency: float, dt: float) -> np.ndarray:
        """Accumulated carrier phase of the detuning, exclusive cumsum."""
        detuning = self.frequency - reference_frequency
        psi = np.empty_like(detuning)
        np.cumsum(detuning, out=psi)
        psi -= detuning  # exclusive: phase accumulated *before* sample t
        psi *= _TWO_PI * dt
        return psi


class ScheduleExecutor:
    """Executes pulse schedules against one :class:`SystemModel`."""

    #: Largest number of (site, tau) Kraus-operator sets kept warm.
    _MAX_KRAUS_ENTRIES = 1024

    def __init__(
        self,
        model: SystemModel,
        readout: Mapping[int, ReadoutModel] | None = None,
        *,
        propagator_cache: PropagatorCache | None = None,
        open_system_method: str = "auto",
    ) -> None:
        if open_system_method not in (
            "auto",
            "superoperator",
            "trajectories",
            "kraus",
        ):
            raise ValidationError(
                "open_system_method must be 'auto', 'superoperator', "
                f"'trajectories' or 'kraus', got {open_system_method!r}"
            )
        self.model = model
        self.readout = dict(readout or {})
        self._drift_eig = np.linalg.eigh(model.drift)
        #: Shared slice-propagator cache: repeated drive amplitudes
        #: (flat-tops, parameter sweeps) skip the eigendecomposition.
        self.propagator_cache = (
            propagator_cache if propagator_cache is not None else PropagatorCache()
        )
        #: How density-matrix evolution runs (see module docstring);
        #: "kraus" selects the legacy unitary+Kraus interleave.
        self.open_system_method = open_system_method
        self._open_engine: "OpenSystemEngine | None" = None
        # Kraus operators depend only on (site, tau): cache them so
        # repeated executions (sweeps, serving traffic) skip the
        # per-run rebuild including the full-space embed calls.
        # LRU-bounded: delay sweeps mint a fresh tau per scan point.
        self._kraus_cache: OrderedDict[
            tuple[int, float], list[np.ndarray]
        ] = OrderedDict()

    @property
    def open_system(self) -> "OpenSystemEngine":
        """The lazily built open-system engine for this model."""
        if self._open_engine is None:
            method = self.open_system_method
            engine_method = "auto" if method in ("auto", "kraus") else method
            # Share the executor's propagator cache: the engine's
            # namespace tag keeps superpropagators and unitaries from
            # colliding, and sweeps/serving then hold one bounded
            # cache instead of one per engine.
            self._open_engine = OpenSystemEngine.from_model(
                self.model,
                method=engine_method,
                cache=self.propagator_cache,
            )
        return self._open_engine

    # ---- public API ---------------------------------------------------------

    def execute(
        self,
        schedule: PulseSchedule,
        *,
        shots: int = 1024,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
        initial_state: np.ndarray | None = None,
    ) -> ExecutionResult:
        """Run *schedule* and sample *shots* measurement outcomes."""
        if rng is None:
            rng = np.random.default_rng(seed)
        model = self.model
        duration = schedule.duration
        use_dm = model.has_decoherence()

        state = self._initial_state(initial_state, use_dm)
        if duration > 0:
            state = self._evolve(schedule, state, use_dm, rng)

        captures = schedule.instructions_of(Capture)
        slots = sorted(
            (it.instruction.memory_slot, it.instruction) for it in captures
        )
        measured_sites = tuple(self._capture_site(ins) for _, ins in slots)
        if measured_sites:
            ideal = measured_bit_distribution(state, model.dims, measured_sites)
            models = [
                self.readout.get(site, ReadoutModel()) for site in measured_sites
            ]
            noisy = apply_readout_error(ideal, models)
            counts = sample_counts(noisy, shots, rng)
        else:
            ideal, noisy, counts = {}, {}, {}

        return ExecutionResult(
            counts=counts,
            probabilities=noisy,
            ideal_probabilities=ideal,
            final_state=state,
            measured_sites=measured_sites,
            leakage=leakage_populations(state, model.dims),
            duration_samples=duration,
            duration_seconds=duration * model.dt,
            shots=shots if measured_sites else 0,
        )

    def unitary(self, schedule: PulseSchedule) -> np.ndarray:
        """Total propagator of *schedule* (requires no decoherence)."""
        if self.model.has_decoherence():
            raise ExecutionError("unitary() is undefined with decoherence enabled")
        duration = schedule.duration
        dim = self.model.dimension
        if duration == 0:
            return identity(dim)
        drives, channel_names = self._synthesize_drives(schedule)
        total = identity(dim)
        for _, u in self._run_propagators(drives, channel_names):
            total = u @ total
        return total

    # ---- internals -------------------------------------------------------------

    def _initial_state(
        self, initial_state: np.ndarray | None, use_dm: bool
    ) -> np.ndarray:
        model = self.model
        if initial_state is None:
            psi = basis_state([0] * model.n_sites, model.dims)
        else:
            psi = np.asarray(initial_state, dtype=np.complex128)
        if use_dm and psi.ndim == 1:
            return np.outer(psi, psi.conj())
        return psi.copy()

    def _capture_site(self, capture: Capture) -> int:
        targets = capture.port.targets
        if len(targets) != 1:
            raise ExecutionError(
                f"capture port {capture.port.name!r} must target exactly one site"
            )
        site = targets[0]
        if site >= self.model.n_sites:
            raise ExecutionError(
                f"capture site {site} out of range for {self.model.n_sites} sites"
            )
        return site

    def _synthesize_drives(
        self, schedule: PulseSchedule
    ) -> tuple[np.ndarray, list[str]]:
        """Build the (duration, n_channels) complex drive matrix."""
        model = self.model
        duration = schedule.duration
        timelines: dict[tuple[str, str], _FrameTimeline] = {}

        def timeline(port: Port, frame: Frame) -> _FrameTimeline:
            key = (port.name, frame.name)
            if key not in timelines:
                timelines[key] = _FrameTimeline(frame, duration)
            return timelines[key]

        # Pass 1: frame events, in time order.
        for item in schedule.ordered():
            ins = item.instruction
            if isinstance(ins, SetFrequency):
                timeline(ins.port, ins.frame).set_frequency(item.t0, ins.frequency)
            elif isinstance(ins, ShiftFrequency):
                timeline(ins.port, ins.frame).shift_frequency(item.t0, ins.delta)
            elif isinstance(ins, SetPhase):
                timeline(ins.port, ins.frame).set_phase(item.t0, ins.phase)
            elif isinstance(ins, ShiftPhase):
                timeline(ins.port, ins.frame).shift_phase(item.t0, ins.delta)
            elif isinstance(ins, FrameChange):
                tl = timeline(ins.port, ins.frame)
                tl.set_frequency(item.t0, ins.frequency)
                tl.set_phase(item.t0, ins.phase)

        # Pass 2: plays, modulated by their frame timeline.
        channel_names = sorted(model.channels)
        col = {name: j for j, name in enumerate(channel_names)}
        drives = np.zeros((duration, len(channel_names)), dtype=np.complex128)
        from repro.core.port import PortKind

        for item in schedule.instructions_of(Play):
            ins = item.instruction
            if ins.port.name not in model.channels:
                if ins.port.kind is PortKind.READOUT:
                    # Readout stimulus tones do not enter the qubit
                    # Hamiltonian; their effect is the measurement model.
                    continue
                raise ExecutionError(
                    f"schedule plays on port {ins.port.name!r} which has no "
                    f"channel coupling in the system model"
                )
            ch = model.channels[ins.port.name]
            tl = timeline(ins.port, ins.frame)
            t0, t1 = item.t0, item.t1
            psi = tl.detuning_phase(ch.reference_frequency, model.dt)[t0:t1]
            phase = psi + tl.static_phase[t0:t1]
            drives[t0:t1, col[ins.port.name]] += ins.waveform.samples() * np.exp(
                1j * phase
            )
        return drives, channel_names

    def _run_hamiltonian(
        self, drive_row: np.ndarray, channel_names: list[str]
    ) -> np.ndarray:
        """Total Hamiltonian (Hz units) for one constant-drive run."""
        model = self.model
        h = model.drift.copy()
        for j, name in enumerate(channel_names):
            a = drive_row[j]
            if a == 0:
                continue
            ch = model.channels[name]
            if ch.hermitian:
                h += ch.rabi_rate * a.real * ch.operator
            else:
                half = 0.5 * ch.rabi_rate
                h += half * (
                    np.conj(a) * ch.operator + a * ch.operator.conj().T
                )
        return h

    def _run_propagators(
        self, drives: np.ndarray, channel_names: list[str]
    ) -> list[tuple[int, np.ndarray]]:
        """``(length, U)`` per constant-drive run, via the batched engine.

        Drift-only runs (all channels zero) reuse the precomputed drift
        eigendecomposition through :func:`~repro.sim.evolve.free_propagator`;
        driven runs are stacked and diagonalized in one batched call,
        with the propagator cache short-circuiting repeated amplitudes.
        """
        runs = segment_runs(drives)
        out: list[tuple[int, np.ndarray] | None] = [None] * len(runs)
        driven_idx: list[int] = []
        driven_hs: list[np.ndarray] = []
        driven_steps: list[int] = []
        for i, (start, length) in enumerate(runs):
            row = drives[start]
            if np.all(row == 0):
                out[i] = (
                    length,
                    free_propagator(self._drift_eig, self.model.dt, length),
                )
            else:
                driven_idx.append(i)
                driven_hs.append(self._run_hamiltonian(row, channel_names))
                driven_steps.append(length)
        if driven_idx:
            hs = np.stack(driven_hs)
            steps = np.asarray(driven_steps, dtype=np.int64)
            us = self.propagator_cache.propagators(hs, self.model.dt, steps)
            for i, u in zip(driven_idx, us):
                out[i] = (runs[i][1], u)
        return out  # type: ignore[return-value]

    def _evolve(
        self,
        schedule: PulseSchedule,
        state: np.ndarray,
        use_dm: bool,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        drives, channel_names = self._synthesize_drives(schedule)
        if use_dm and self.open_system_method != "kraus":
            runs = segment_runs(drives)
            hs = np.stack(
                [
                    self._run_hamiltonian(drives[start], channel_names)
                    for start, _ in runs
                ]
            )
            steps = np.asarray([length for _, length in runs], dtype=np.int64)
            return self.open_system.evolve(hs, steps, state, rng=rng)
        for length, u in self._run_propagators(drives, channel_names):
            if use_dm:
                state = u @ state @ u.conj().T
                state = self._apply_decoherence(state, length)
            else:
                state = u @ state
        return state

    def _apply_decoherence(self, rho: np.ndarray, steps: int) -> np.ndarray:
        """Apply per-site T1/T2 Kraus channels for ``steps * dt``."""
        model = self.model
        tau = steps * model.dt
        for site, spec in enumerate(model.decoherence):
            if not spec.has_decoherence:
                continue
            kraus = self._kraus_ops(site, spec, tau)
            rho = sum(k @ rho @ k.conj().T for k in kraus)
        return rho

    def _kraus_ops(self, site: int, spec, tau: float) -> list[np.ndarray]:
        """Full-space Kraus operators for one site over time *tau*.

        Memoized on ``(site, tau)``: the operators depend on nothing
        else, and rebuilding them — including the full-space ``embed``
        calls — for every run of every execution dominated the legacy
        decoherence path. Schedules revisit the same run lengths
        constantly (flat-tops, echo delays, repeated shots), so the
        cache hits almost always after the first execution.
        """
        key = (site, float(tau))
        cached = self._kraus_cache.get(key)
        if cached is not None:
            self._kraus_cache.move_to_end(key)
            return cached
        ops = self._build_kraus_ops(site, spec, tau)
        for op in ops:
            op.flags.writeable = False  # cached: mutation would poison reuse
        self._kraus_cache[key] = ops
        while len(self._kraus_cache) > self._MAX_KRAUS_ENTRIES:
            self._kraus_cache.popitem(last=False)
        return ops

    def _build_kraus_ops(self, site: int, spec, tau: float) -> list[np.ndarray]:
        from repro.sim.operators import embed

        d = self.model.dims[site]
        ops: list[np.ndarray] = []
        # Amplitude damping: decay n -> n-1 at rate n / T1.
        if np.isfinite(spec.t1):
            gammas = [1.0 - math.exp(-n * tau / spec.t1) for n in range(1, d)]
            k0 = np.diag(
                [1.0] + [math.sqrt(1.0 - g) for g in gammas]
            ).astype(np.complex128)
            ops.append(k0)
            for n, g in enumerate(gammas, start=1):
                k = np.zeros((d, d), dtype=np.complex128)
                k[n - 1, n] = math.sqrt(g)
                ops.append(k)
        else:
            ops.append(np.eye(d, dtype=np.complex128))
        # Pure dephasing from T2 (remove the T1 contribution) — the
        # same gamma_phi convention the Lindblad engine integrates.
        rate_phi = dephasing_rate(spec)
        if rate_phi > _RATE_FLOOR:
            # 1 - 2p = exp(-rate_phi * tau): ground-state coherences
            # then decay at exactly rate_phi, so the total (with the
            # sqrt(1-gamma) factor from K0) is 1/T2 — the standard
            # convention, and the one the Lindblad engine integrates.
            p = 0.5 * (1.0 - math.exp(-rate_phi * tau))
            z = np.eye(d, dtype=np.complex128)
            z[1, 1] = -1.0
            if d > 2:
                z[2, 2] = -1.0
            damp_ops = ops
            ops = []
            for k in damp_ops:
                ops.append(math.sqrt(1.0 - p) * k)
                ops.append(math.sqrt(p) * (z @ k))
        return [embed(k, site, self.model.dims) for k in ops]
