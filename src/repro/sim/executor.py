"""Schedule execution: pulse schedules -> quantum dynamics -> shots.

The :class:`ScheduleExecutor` is what a simulated QDMI device calls when
a pulse job reaches it. It interprets a
:class:`~repro.core.schedule.PulseSchedule` against a
:class:`~repro.sim.model.SystemModel`:

1. Frame timelines — for every (port, frame) pair the executor builds
   per-sample carrier frequency and static-phase arrays from the
   schedule's frame instructions, with phase-continuous frequency
   updates (matching :class:`~repro.core.frame.FrameState` semantics).
2. Drive synthesis — every :class:`Play` adds its envelope samples,
   modulated by the frame's accumulated detuning phase, onto its port's
   complex drive array (fully vectorized).
3. Evolution — the per-sample drive matrix is split into runs of
   constant value (:func:`~repro.sim.evolve.segment_runs`); the runs'
   Hamiltonians are stacked and diagonalized in one batched call
   (:func:`~repro.sim.evolve.batched_propagators`), with a
   :class:`~repro.sim.evolve.PropagatorCache` short-circuiting runs
   whose amplitudes were seen before (flat-tops, parameter sweeps) and
   drift-only runs reusing the model's precomputed eigendecomposition.
4. Decoherence — with finite T1/T2 the state is a density matrix and
   the constant runs evolve through the batched open-system engine
   (:class:`~repro.sim.open_system.OpenSystemEngine`): exact Lindblad
   superoperator propagators, stacked and exponentiated together, with
   a quantum-jump trajectory path for large Hilbert spaces. The legacy
   unitary+Kraus Trotter interleave is kept behind
   ``open_system_method="kraus"`` (first-order splitting during drive,
   no inter-level cascade within a run).
5. Measurement — :class:`Capture` instructions define the measured
   sites and classical slots; outcomes include exact probabilities,
   seeded shot counts, and per-site leakage.
"""

from __future__ import annotations

import math
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.frame import Frame
from repro.core.instructions import (
    Capture,
    FrameChange,
    Play,
    SetFrequency,
    SetPhase,
    ShiftFrequency,
    ShiftPhase,
)
from repro.core.port import Port
from repro.core.schedule import PulseSchedule
from repro.errors import CancelledError, ExecutionError, ValidationError
from repro.obs import profile as _profile
from repro.obs.tracing import span
from repro.sim.evolve import (
    PropagatorCache,
    free_propagator,
    segment_runs,
)
from repro.sim.measurement import (
    ReadoutModel,
    apply_readout_error,
    leakage_populations,
    measured_bit_distribution,
    sample_counts,
)
from repro.sim.model import SystemModel
from repro.sim.open_system import (
    _RATE_FLOOR,
    OpenSystemEngine,
    dephasing_rate,
)
from repro.sim.operators import basis_state, identity
from repro.xp import active, use_backend


def _check_cancel(should_cancel) -> None:
    """Raise at a chunk boundary when cooperative cancel is requested.

    ``should_cancel`` is the zero-arg callable the serving layer plumbs
    down (ticket cancel flags); None means cancellation is disabled.
    """
    if should_cancel is not None and should_cancel():
        raise CancelledError(
            "execution cancelled cooperatively at a chunk boundary"
        )

_TWO_PI = 2.0 * math.pi


@dataclass
class ExecutionResult:
    """Outcome of executing one pulse schedule.

    Attributes
    ----------
    counts:
        Sampled shot counts keyed by bitstring (slot 0 leftmost).
    probabilities:
        Exact outcome distribution *after* readout error.
    ideal_probabilities:
        Exact outcome distribution *before* readout error.
    final_state:
        Final ket (no decoherence) or density matrix.
    measured_sites:
        Site index per classical slot, ascending slot order.
    leakage:
        Per-site population of levels >= 2 at the end.
    duration_samples / duration_seconds:
        Schedule length.
    shots:
        Number of samples drawn.
    """

    counts: dict[str, int]
    probabilities: dict[str, float]
    ideal_probabilities: dict[str, float]
    final_state: np.ndarray
    measured_sites: tuple[int, ...]
    leakage: dict[int, float]
    duration_samples: int
    duration_seconds: float
    shots: int
    metadata: dict = field(default_factory=dict)

    def expectation_z(self, slot: int = 0) -> float:
        """``<Z>`` of the bit in *slot* from the exact probabilities.

        .. deprecated::
            Thin view over the Observable engine; use
            ``repro.primitives.Observable.z(slot).expectation(...)``
            (or an :class:`~repro.primitives.Estimator` PUB) directly.
        """
        warnings.warn(
            "ExecutionResult.expectation_z is deprecated; evaluate "
            "repro.primitives.Observable.z(slot) (or run an Estimator "
            "PUB) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not self.measured_sites:
            raise ValidationError(
                "expectation_z is undefined: the schedule captured no "
                "measurement (no Capture instructions, empty distribution)"
            )
        from repro.primitives.observables import expectation_z

        return expectation_z(
            self.probabilities, slot, n_slots=len(self.measured_sites)
        )


class _FrameTimeline:
    """Per-sample frequency/static-phase arrays for one mixed frame."""

    __slots__ = ("frequency", "static_phase")

    def __init__(self, frame: Frame, duration: int) -> None:
        self.frequency = np.full(duration, frame.frequency, dtype=np.float64)
        self.static_phase = np.full(duration, frame.phase, dtype=np.float64)

    def set_frequency(self, t0: int, value: float) -> None:
        self.frequency[t0:] = value

    def shift_frequency(self, t0: int, delta: float) -> None:
        self.frequency[t0:] += delta

    def set_phase(self, t0: int, value: float) -> None:
        self.static_phase[t0:] = value

    def shift_phase(self, t0: int, delta: float) -> None:
        self.static_phase[t0:] += delta

    def detuning_phase(self, reference_frequency: float, dt: float) -> np.ndarray:
        """Accumulated carrier phase of the detuning, exclusive cumsum."""
        detuning = self.frequency - reference_frequency
        psi = np.empty_like(detuning)
        np.cumsum(detuning, out=psi)
        psi -= detuning  # exclusive: phase accumulated *before* sample t
        psi *= _TWO_PI * dt
        return psi


class ScheduleExecutor:
    """Executes pulse schedules against one :class:`SystemModel`."""

    #: Largest number of (site, tau) Kraus-operator sets kept warm.
    _MAX_KRAUS_ENTRIES = 1024

    def __init__(
        self,
        model: SystemModel,
        readout: Mapping[int, ReadoutModel] | None = None,
        *,
        propagator_cache: PropagatorCache | None = None,
        open_system_method: str = "auto",
    ) -> None:
        if open_system_method not in (
            "auto",
            "superoperator",
            "trajectories",
            "kraus",
        ):
            raise ValidationError(
                "open_system_method must be 'auto', 'superoperator', "
                f"'trajectories' or 'kraus', got {open_system_method!r}"
            )
        self.model = model
        self.readout = dict(readout or {})
        self._drift_eig = np.linalg.eigh(model.drift)
        #: Shared slice-propagator cache: repeated drive amplitudes
        #: (flat-tops, parameter sweeps) skip the eigendecomposition.
        self.propagator_cache = (
            propagator_cache if propagator_cache is not None else PropagatorCache()
        )
        #: How density-matrix evolution runs (see module docstring);
        #: "kraus" selects the legacy unitary+Kraus interleave.
        self.open_system_method = open_system_method
        self._open_engine: "OpenSystemEngine | None" = None
        # Kraus operators depend only on (site, tau): cache them so
        # repeated executions (sweeps, serving traffic) skip the
        # per-run rebuild including the full-space embed calls.
        # LRU-bounded: delay sweeps mint a fresh tau per scan point.
        self._kraus_cache: OrderedDict[
            tuple[int, float], list[np.ndarray]
        ] = OrderedDict()

    @property
    def open_system(self) -> "OpenSystemEngine":
        """The lazily built open-system engine for this model."""
        if self._open_engine is None:
            method = self.open_system_method
            engine_method = "auto" if method in ("auto", "kraus") else method
            # Share the executor's propagator cache: the engine's
            # namespace tag keeps superpropagators and unitaries from
            # colliding, and sweeps/serving then hold one bounded
            # cache instead of one per engine.
            self._open_engine = OpenSystemEngine.from_model(
                self.model,
                method=engine_method,
                cache=self.propagator_cache,
            )
        return self._open_engine

    # ---- public API ---------------------------------------------------------

    def execute(
        self,
        schedule: PulseSchedule,
        *,
        shots: int = 1024,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
        initial_state: np.ndarray | None = None,
        backend: str | None = None,
        should_cancel=None,
    ) -> ExecutionResult:
        """Run *schedule* and sample *shots* measurement outcomes.

        *backend* scopes the evolution to an array backend/dtype spec
        (``"numpy/complex64"``, ``"cupy"``, ...; see
        :func:`repro.xp.use_backend`); ``None`` keeps the ambient
        scope. Measurement always runs on the host.

        *should_cancel* (zero-arg callable) enables cooperative
        cancellation: it is polled at chunk boundaries — before the
        evolution and before the measurement tail — and a True return
        raises :class:`~repro.errors.CancelledError`.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        use_dm = self.model.has_decoherence()
        _check_cancel(should_cancel)
        with use_backend(backend):
            state = self._initial_state(initial_state, use_dm)
            if schedule.duration > 0:
                state = self._evolve(schedule, state, use_dm, rng)
        _check_cancel(should_cancel)
        return self._finalize(schedule, state, shots, rng)

    def execute_batch(
        self,
        schedules: Sequence[PulseSchedule],
        *,
        shots: int = 1024,
        seed: int | None = None,
        initial_state: np.ndarray | None = None,
        backend: str | None = None,
        should_cancel=None,
    ) -> list[ExecutionResult]:
        """Run many schedules through one batched evolution pass.

        The whole batch's constant-drive runs are stacked and
        exponentiated together — one
        :meth:`PropagatorCache.propagators` call for every driven run
        of every schedule (closed system) or one
        :meth:`OpenSystemEngine.superpropagators
        <repro.sim.open_system.OpenSystemEngine.superpropagators>` call
        (Lindblad) — instead of one small batched call per schedule.
        This is the execution kernel the primitives tier
        (:mod:`repro.primitives`) dispatches PUBs through: a 64-point
        parameter scan costs one propagator batch, not 64.

        Results are identical to ``[execute(s, shots=shots, seed=seed)
        for s in schedules]``: each schedule's measurement tail draws
        from a fresh ``default_rng(seed)``, so seeded runs reproduce
        the per-point loop exactly. Paths the batch cannot help —
        quantum-jump trajectories and the legacy ``"kraus"`` interleave
        (both consume per-schedule RNG state during evolution) — fall
        back to that loop.

        With profiling enabled (:func:`repro.obs.enable_profiling`)
        every result carries a shared ``metadata["profile"]`` summary
        of the batch: stack sizes, Hilbert dimension, squaring levels,
        cache dedup ratio, and GEMM wall-time.

        *backend* scopes every evolution kernel of the batch to an
        array backend/dtype spec (see :func:`repro.xp.use_backend`);
        the batch's stacks then stay on that backend until the
        measurement tail pulls the final states to the host.

        *should_cancel* enables cooperative cancellation, polled at
        the batch's chunk boundaries: between schedules on the
        per-schedule fallback path, at every open-system flush (every
        ``_MAX_OPEN_BATCH_SLICES`` superoperator slices), and before
        the closed-system stacked call and the measurement tail.
        """
        schedules = list(schedules)
        if not schedules:
            return []
        profiling = _profile.profiling_enabled()
        with span(
            "execute_batch", schedules=len(schedules), shots=shots
        ):
            prev = _profile.begin_collect() if profiling else None
            try:
                with use_backend(backend):
                    results = self._execute_batch_inner(
                        schedules, shots, seed, initial_state, should_cancel
                    )
            finally:
                records = _profile.end_collect(prev) if profiling else None
        if records is not None:
            summary = _profile.summarize(records, batch=len(schedules))
            for result in results:
                result.metadata["profile"] = summary
        return results

    def _execute_batch_inner(
        self,
        schedules: list[PulseSchedule],
        shots: int,
        seed: int | None,
        initial_state: np.ndarray | None,
        should_cancel=None,
    ) -> list[ExecutionResult]:
        use_dm = self.model.has_decoherence()
        _check_cancel(should_cancel)
        if use_dm:
            method = self.open_system_method
            if method == "auto":
                engine = self.open_system
                method = (
                    "superoperator"
                    if engine.dim <= engine.max_superop_dim
                    else "trajectories"
                )
            if method != "superoperator":
                # Per-schedule fallback: every schedule is a chunk
                # boundary of its own.
                return [
                    self.execute(
                        s,
                        shots=shots,
                        seed=seed,
                        initial_state=initial_state,
                        should_cancel=should_cancel,
                    )
                    for s in schedules
                ]
            states = self._batch_evolve_open(
                schedules, initial_state, should_cancel=should_cancel
            )
        else:
            states = None
            if len(schedules) > 1 and schedules[0].duration > 0:
                if self._is_template_family(schedules):
                    states = self._family_evolve_closed(
                        schedules, initial_state
                    )
                    _check_cancel(should_cancel)
                    with span("measurement", points=len(schedules)):
                        return self._finalize_family(
                            schedules[0], states, shots, seed
                        )
            states = self._batch_evolve_closed(schedules, initial_state)
        _check_cancel(should_cancel)
        with span("measurement", points=len(schedules)):
            return [
                self._finalize(s, state, shots, np.random.default_rng(seed))
                for s, state in zip(schedules, states)
            ]

    # A schedule *family*: structural clones differing only in scalar
    # fields of virtual frame instructions — exactly what the execution
    # API's schedule-template bind produces for a parameter sweep.
    _FAMILY_EVENT_TYPES = (
        SetFrequency,
        ShiftFrequency,
        SetPhase,
        ShiftPhase,
        FrameChange,
    )

    def _is_template_family(self, schedules: Sequence[PulseSchedule]) -> bool:
        """Whether the batch shares one schedule structure.

        Members must have identical item counts, placements and
        instruction types; items may differ only by being distinct
        frame-event instances on the same (port, frame) — i.e. the
        clone-and-swap output of the schedule-template fast path. Play
        items must be the *same object* (templates share them), so
        waveforms and timings are guaranteed equal without comparing
        samples.
        """
        items0 = schedules[0]._items
        n = len(items0)
        for s in schedules[1:]:
            items = s._items
            if items is items0:
                continue
            if len(items) != n:
                return False
            for a, b in zip(items0, items):
                if a is b:
                    continue
                ia, ib = a.instruction, b.instruction
                if (
                    a.t0 != b.t0
                    or a.seq != b.seq
                    or type(ia) is not type(ib)
                    or not isinstance(ia, self._FAMILY_EVENT_TYPES)
                    or ia.port.name != ib.port.name
                    or ia.frame.name != ib.frame.name
                ):
                    return False
        return True

    def _synthesize_drives_family(
        self, schedules: Sequence[PulseSchedule]
    ) -> tuple[np.ndarray, list[str]]:
        """The ``(K, duration, n_channels)`` drive stack of a family.

        One vectorized pass over the *shared* item structure: frame
        timelines are ``(K, duration)`` arrays whose events apply to
        all members at once (gathering the per-member scalar values),
        detuning phases are one exclusive cumsum per (port, frame)
        instead of one per play per member, and every play lands on
        the whole stack with one broadcast multiply. Per-sample
        arithmetic is element-for-element the scalar path's, so the
        stack is bitwise what per-member :meth:`_synthesize_drives`
        calls would produce.
        """
        base = schedules[0]
        k_members = len(schedules)
        duration = base.duration
        model = self.model
        timelines: dict[tuple[str, str], list[np.ndarray]] = {}

        def timeline(port: Port, frame: Frame) -> list[np.ndarray]:
            key = (port.name, frame.name)
            tl = timelines.get(key)
            if tl is None:
                # float64 pinned explicitly (as _FrameTimeline does):
                # an integer frame frequency/phase would otherwise set
                # an integer dtype and truncate every later event.
                tl = [
                    np.full(
                        (k_members, duration),
                        frame.frequency,
                        dtype=np.float64,
                    ),
                    np.full(
                        (k_members, duration), frame.phase, dtype=np.float64
                    ),
                ]
                timelines[key] = tl
            return tl

        def values(pos: int, fld: str) -> np.ndarray:
            item0 = base._items[pos]
            column = np.empty(k_members, dtype=np.float64)
            for k, s in enumerate(schedules):
                item = s._items[pos]
                column[k] = (
                    getattr(item0.instruction, fld)
                    if item is item0
                    else getattr(item.instruction, fld)
                )
            return column[:, None]

        order = sorted(
            range(len(base._items)),
            key=lambda i: (base._items[i].t0, base._items[i].seq),
        )
        for pos in order:
            item = base._items[pos]
            ins = item.instruction
            t0 = item.t0
            if isinstance(ins, SetFrequency):
                timeline(ins.port, ins.frame)[0][:, t0:] = values(
                    pos, "frequency"
                )
            elif isinstance(ins, ShiftFrequency):
                timeline(ins.port, ins.frame)[0][:, t0:] += values(pos, "delta")
            elif isinstance(ins, SetPhase):
                timeline(ins.port, ins.frame)[1][:, t0:] = values(pos, "phase")
            elif isinstance(ins, ShiftPhase):
                timeline(ins.port, ins.frame)[1][:, t0:] += values(pos, "delta")
            elif isinstance(ins, FrameChange):
                tl = timeline(ins.port, ins.frame)
                tl[0][:, t0:] = values(pos, "frequency")
                tl[1][:, t0:] = values(pos, "phase")

        channel_names = sorted(model.channels)
        col = {name: j for j, name in enumerate(channel_names)}
        drives = np.zeros(
            (k_members, duration, len(channel_names)), dtype=np.complex128
        )
        psis: dict[tuple[str, str, float], np.ndarray] = {}
        from repro.core.port import PortKind

        for item in base.instructions_of(Play):
            ins = item.instruction
            if ins.port.name not in model.channels:
                if ins.port.kind is PortKind.READOUT:
                    continue
                raise ExecutionError(
                    f"schedule plays on port {ins.port.name!r} which has no "
                    f"channel coupling in the system model"
                )
            ch = model.channels[ins.port.name]
            tl = timeline(ins.port, ins.frame)
            psi_key = (ins.port.name, ins.frame.name, ch.reference_frequency)
            psi = psis.get(psi_key)
            if psi is None:
                detuning = tl[0] - ch.reference_frequency
                psi = np.cumsum(detuning, axis=1)
                psi -= detuning  # exclusive, as _FrameTimeline does
                psi *= _TWO_PI * model.dt
                psis[psi_key] = psi
            t0, t1 = item.t0, item.t1
            phase = psi[:, t0:t1] + tl[1][:, t0:t1]
            drives[:, t0:t1, col[ins.port.name]] += ins.waveform.samples()[
                None, :
            ] * np.exp(1j * phase)
        return drives, channel_names

    def _run_hamiltonians_stack(
        self, rows: np.ndarray, channel_names: list[str]
    ) -> np.ndarray:
        """Vectorized :meth:`_run_hamiltonian` over a ``(N, C)`` stack.

        Channel terms apply through masked broadcast multiplies in the
        same channel order and with the same scalar factorization as
        the per-run method, so each slice is bitwise identical to its
        scalar counterpart.
        """
        model = self.model
        n = rows.shape[0]
        hs = np.repeat(model.drift[None, :, :], n, axis=0)
        for j, name in enumerate(channel_names):
            a = rows[:, j]
            nz = a != 0
            if not np.any(nz):
                continue
            ch = model.channels[name]
            if ch.hermitian:
                hs[nz] += (ch.rabi_rate * a[nz].real)[:, None, None] * (
                    ch.operator
                )
            else:
                half = 0.5 * ch.rabi_rate
                hs[nz] += half * (
                    np.conj(a[nz])[:, None, None] * ch.operator
                    + a[nz][:, None, None] * ch.adjoint_operator()
                )
        return hs

    def _family_evolve_closed(
        self,
        schedules: Sequence[PulseSchedule],
        initial_state: np.ndarray | None,
    ) -> np.ndarray:
        """Final states of a closed-system family, fully vectorized.

        Run boundaries are the *union* of every member's constant-drive
        boundaries (splitting a constant run is exact), propagators
        stack position-major — so runs the members share (state prep,
        fixed segments) sit consecutively and collapse to one cache
        entry — and the states advance with one batched matmul per run
        position on the active array backend; only the final state
        stack comes back to the host for measurement.
        """
        with span("synthesize", family=True, points=len(schedules)):
            drives, channel_names = self._synthesize_drives_family(schedules)
        xp = active()
        k_members, duration, _ = drives.shape
        changed = np.any(drives[:, 1:, :] != drives[:, :-1, :], axis=(0, 2))
        starts = np.concatenate(([0], np.nonzero(changed)[0] + 1))
        lengths = np.diff(np.concatenate((starts, [duration])))
        rows = drives[:, starts, :]  # (K, R, C)
        n_runs = len(starts)
        dim = self.model.dimension
        # Position-major flattening: run r of every member, then r+1.
        rows_t = np.ascontiguousarray(rows.transpose(1, 0, 2)).reshape(
            n_runs * k_members, -1
        )
        steps_t = np.repeat(lengths.astype(np.int64), k_members)
        zero_t = ~np.any(rows_t != 0, axis=1)
        us = xp.empty((n_runs * k_members, dim, dim), dtype=xp.cdtype)
        driven = ~zero_t
        if np.any(driven):
            hs = self._run_hamiltonians_stack(rows_t[driven], channel_names)
            us[driven] = self.propagator_cache.propagators(
                hs, self.model.dt, steps_t[driven]
            )
        if np.any(zero_t):
            for length in np.unique(steps_t[zero_t]):
                sel = zero_t & (steps_t == length)
                us[sel] = free_propagator(
                    self._drift_eig, self.model.dt, int(length)
                )
        us = us.reshape(n_runs, k_members, dim, dim)
        psi0 = self._initial_state(initial_state, use_dm=False)
        states = xp.asarray(
            np.repeat(psi0[None, ...], k_members, axis=0), dtype=xp.cdtype
        )
        for r in range(n_runs):
            if states.ndim == 2:  # stacked kets
                states = xp.einsum("kij,kj->ki", us[r], states)
            else:  # stacked matrices (operator-valued initial state)
                states = xp.matmul(us[r], states)
        return xp.to_host(states)

    def _batch_evolve_closed(
        self,
        schedules: Sequence[PulseSchedule],
        initial_state: np.ndarray | None,
    ) -> list[np.ndarray]:
        """Final kets for a heterogeneous batch: one stacked call."""
        plans: list[list[tuple[int, int]]] = []  # (length, slot) per run
        drift_props: list[np.ndarray] = []
        drift_by_length: dict[int, int] = {}
        driven_rows: list[np.ndarray] = []
        driven_names: list[tuple[str, ...]] = []
        driven_steps: list[int] = []
        with span("synthesize", points=len(schedules)):
            for schedule in schedules:
                plan: list[tuple[int, int]] = []
                if schedule.duration > 0:
                    drives, channel_names = self._synthesize_drives(schedule)
                    for start, length in segment_runs(drives):
                        row = drives[start]
                        if np.all(row == 0):
                            # Negative slots index the drift list
                            # (offset by 1 so slot 0 stays unambiguous);
                            # drift propagators dedup per unique run
                            # length.
                            slot = drift_by_length.get(length)
                            if slot is None:
                                slot = len(drift_props)
                                drift_by_length[length] = slot
                                drift_props.append(
                                    free_propagator(
                                        self._drift_eig,
                                        self.model.dt,
                                        length,
                                    )
                                )
                            plan.append((length, -slot - 1))
                        else:
                            plan.append((length, len(driven_rows)))
                            driven_rows.append(row)
                            driven_names.append(tuple(channel_names))
                            driven_steps.append(length)
                plans.append(plan)
        xp = active()
        if driven_rows:
            # Assemble all driven-run Hamiltonians through the
            # vectorized stack builder (grouped by channel layout, which
            # is uniform for same-model schedules) instead of one
            # Python-level assembly per run; slices are bitwise
            # identical to the scalar path.
            dim = self.model.drift.shape[0]
            hs = np.empty((len(driven_rows), dim, dim), dtype=np.complex128)
            groups: dict[tuple[str, ...], list[int]] = {}
            for i, names in enumerate(driven_names):
                groups.setdefault(names, []).append(i)
            for names, idx in groups.items():
                rows = np.stack([driven_rows[i] for i in idx])
                hs[idx] = self._run_hamiltonians_stack(rows, list(names))
            us = self.propagator_cache.propagators(
                hs,
                self.model.dt,
                np.asarray(driven_steps, dtype=np.int64),
            )
        else:
            us = np.empty((0,))
        states: list[np.ndarray] = []
        for plan in plans:
            state = xp.asarray(
                self._initial_state(initial_state, use_dm=False),
                dtype=xp.cdtype,
            )
            for _, slot in plan:
                u = drift_props[-slot - 1] if slot < 0 else us[slot]
                state = xp.matmul(u, state)
            states.append(xp.to_host(state))
        return states

    #: Superoperator slices materialized at once by a batched open run
    #: (a (D^2, D^2) slice is D^2 times a unitary's footprint).
    _MAX_OPEN_BATCH_SLICES = 512

    def _batch_evolve_open(
        self,
        schedules: Sequence[PulseSchedule],
        initial_state: np.ndarray | None,
        should_cancel=None,
    ) -> list[np.ndarray]:
        """Final density matrices: stacked superpropagator calls.

        Chunked over schedules so the materialized ``(n, D^2, D^2)``
        stack stays bounded for large batches; the shared propagator
        cache still dedups runs across chunks — and each flush is a
        cooperative-cancellation chunk boundary.
        """
        from repro.sim.open_system import (
            unvectorize_density,
            vectorize_density,
        )

        engine = self.open_system
        states: list[np.ndarray] = []
        pending: list[tuple[list[np.ndarray], list[int]]] = []
        pending_slices = 0

        def flush() -> None:
            nonlocal pending, pending_slices
            if not pending:
                return
            _check_cancel(should_cancel)
            xp = active()
            all_hs = [h for hs, _ in pending for h in hs]
            all_steps = [s for _, steps in pending for s in steps]
            props = engine.superpropagators(
                np.stack(all_hs), np.asarray(all_steps, dtype=np.int64)
            )
            offset = 0
            for hs, _ in pending:
                rho = self._initial_state(initial_state, use_dm=True)
                vec = xp.asarray(vectorize_density(rho), dtype=xp.cdtype)
                for k in range(offset, offset + len(hs)):
                    vec = xp.matmul(props[k], vec)
                states.append(
                    unvectorize_density(xp.to_host(vec), engine.dim)
                )
                offset += len(hs)
            pending, pending_slices = [], 0

        for schedule in schedules:
            if schedule.duration == 0:
                flush()
                states.append(self._initial_state(initial_state, use_dm=True))
                continue
            drives, channel_names = self._synthesize_drives(schedule)
            runs = segment_runs(drives)
            hs = [
                self._run_hamiltonian(drives[start], channel_names)
                for start, _ in runs
            ]
            steps = [length for _, length in runs]
            pending.append((hs, steps))
            pending_slices += len(hs)
            if pending_slices >= self._MAX_OPEN_BATCH_SLICES:
                flush()
        flush()
        return states

    def _finalize_family(
        self,
        base: PulseSchedule,
        states: np.ndarray,
        shots: int,
        seed: int | None,
    ) -> list[ExecutionResult]:
        """Measurement tails for a family, sharing the vector work.

        The family members share capture structure, so site resolution
        and the level-to-bit outcome mapping happen once; the exact
        probabilities of all members marginalize in one pass. Readout
        corruption and shot sampling stay per-member through the same
        functions :meth:`_finalize` uses (with a fresh
        ``default_rng(seed)`` each), keeping results bit-for-bit equal
        to the per-schedule path.
        """
        model = self.model
        dims = model.dims
        k_members = states.shape[0]
        duration = base.duration
        captures = base.instructions_of(Capture)
        slots = sorted(
            (it.instruction.memory_slot, it.instruction) for it in captures
        )
        measured_sites = tuple(self._capture_site(ins) for _, ins in slots)
        if len(set(measured_sites)) != len(measured_sites):
            # Same guard measured_bit_distribution applies on the
            # per-schedule path.
            raise ValidationError("measured sites must be distinct")
        if states.ndim == 2:  # kets
            probs = np.abs(states) ** 2
        else:  # density matrices
            probs = np.real(np.diagonal(states, axis1=1, axis2=2)).copy()
        probs = np.clip(probs, 0.0, None)
        norms = probs.sum(axis=1)
        if np.any(norms <= 0):
            raise ValidationError("state has zero norm")
        probs /= norms[:, None]
        full = probs.reshape((k_members,) + tuple(dims))

        # Per-member exact distributions over the measured sites, with
        # the same marginalization/key construction as
        # measured_bit_distribution (one vector pass for the family).
        ideals: list[dict[str, float]] = [dict() for _ in range(k_members)]
        if measured_sites:
            keep = list(measured_sites)
            others = [s + 1 for s in range(len(dims)) if s not in keep]
            marg = full.sum(axis=tuple(others)) if others else full
            sorted_keep = sorted(keep)
            for labels in np.ndindex(*[dims[s] for s in sorted_keep]):
                bits = {
                    site: ("1" if lbl >= 1 else "0")
                    for site, lbl in zip(sorted_keep, labels)
                }
                key = "".join(bits[s] for s in keep)
                column = marg[(slice(None),) + labels]
                for k in range(k_members):
                    p = float(column[k])
                    if p != 0.0:
                        ideals[k][key] = ideals[k].get(key, 0.0) + p
        # Per-site leakage, one marginal per site for the whole family.
        site_leakage: list[np.ndarray] = []
        for site, d in enumerate(dims):
            if d <= 2:
                site_leakage.append(np.zeros(k_members))
                continue
            axes = tuple(a + 1 for a in range(len(dims)) if a != site)
            marginal = full.sum(axis=axes)
            site_leakage.append(marginal[:, 2:].sum(axis=1))

        models = [
            self.readout.get(site, ReadoutModel()) for site in measured_sites
        ]
        results: list[ExecutionResult] = []
        for k in range(k_members):
            ideal = ideals[k]
            if measured_sites:
                noisy = apply_readout_error(ideal, models)
                counts = sample_counts(
                    noisy, shots, np.random.default_rng(seed)
                )
            else:
                noisy, counts = {}, {}
            results.append(
                ExecutionResult(
                    counts=counts,
                    probabilities=noisy,
                    ideal_probabilities=ideal,
                    final_state=states[k],
                    measured_sites=measured_sites,
                    leakage={
                        site: float(site_leakage[site][k])
                        for site in range(len(dims))
                    },
                    duration_samples=duration,
                    duration_seconds=duration * model.dt,
                    shots=shots if measured_sites else 0,
                )
            )
        return results

    def _finalize(
        self,
        schedule: PulseSchedule,
        state: np.ndarray,
        shots: int,
        rng: np.random.Generator,
    ) -> ExecutionResult:
        """Measurement tail: distributions, readout error, sampling."""
        model = self.model
        duration = schedule.duration
        captures = schedule.instructions_of(Capture)
        slots = sorted(
            (it.instruction.memory_slot, it.instruction) for it in captures
        )
        measured_sites = tuple(self._capture_site(ins) for _, ins in slots)
        if measured_sites:
            ideal = measured_bit_distribution(state, model.dims, measured_sites)
            models = [
                self.readout.get(site, ReadoutModel()) for site in measured_sites
            ]
            noisy = apply_readout_error(ideal, models)
            counts = sample_counts(noisy, shots, rng)
        else:
            ideal, noisy, counts = {}, {}, {}

        return ExecutionResult(
            counts=counts,
            probabilities=noisy,
            ideal_probabilities=ideal,
            final_state=state,
            measured_sites=measured_sites,
            leakage=leakage_populations(state, model.dims),
            duration_samples=duration,
            duration_seconds=duration * model.dt,
            shots=shots if measured_sites else 0,
        )

    def unitary(self, schedule: PulseSchedule) -> np.ndarray:
        """Total propagator of *schedule* (requires no decoherence)."""
        if self.model.has_decoherence():
            raise ExecutionError("unitary() is undefined with decoherence enabled")
        duration = schedule.duration
        dim = self.model.dimension
        if duration == 0:
            return identity(dim)
        drives, channel_names = self._synthesize_drives(schedule)
        xp = active()
        total = xp.asarray(identity(dim), dtype=xp.cdtype)
        for _, u in self._run_propagators(drives, channel_names):
            total = xp.matmul(u, total)
        return xp.to_host(total)

    # ---- internals -------------------------------------------------------------

    def _initial_state(
        self, initial_state: np.ndarray | None, use_dm: bool
    ) -> np.ndarray:
        model = self.model
        if initial_state is None:
            psi = basis_state([0] * model.n_sites, model.dims)
        else:
            psi = np.asarray(initial_state, dtype=np.complex128)
        if use_dm and psi.ndim == 1:
            return np.outer(psi, psi.conj())
        return psi.copy()

    def _capture_site(self, capture: Capture) -> int:
        targets = capture.port.targets
        if len(targets) != 1:
            raise ExecutionError(
                f"capture port {capture.port.name!r} must target exactly one site"
            )
        site = targets[0]
        if site >= self.model.n_sites:
            raise ExecutionError(
                f"capture site {site} out of range for {self.model.n_sites} sites"
            )
        return site

    def _synthesize_drives(
        self, schedule: PulseSchedule
    ) -> tuple[np.ndarray, list[str]]:
        """Build the (duration, n_channels) complex drive matrix."""
        model = self.model
        duration = schedule.duration
        timelines: dict[tuple[str, str], _FrameTimeline] = {}

        def timeline(port: Port, frame: Frame) -> _FrameTimeline:
            key = (port.name, frame.name)
            if key not in timelines:
                timelines[key] = _FrameTimeline(frame, duration)
            return timelines[key]

        # Pass 1: frame events, in time order.
        for item in schedule.ordered():
            ins = item.instruction
            if isinstance(ins, SetFrequency):
                timeline(ins.port, ins.frame).set_frequency(item.t0, ins.frequency)
            elif isinstance(ins, ShiftFrequency):
                timeline(ins.port, ins.frame).shift_frequency(item.t0, ins.delta)
            elif isinstance(ins, SetPhase):
                timeline(ins.port, ins.frame).set_phase(item.t0, ins.phase)
            elif isinstance(ins, ShiftPhase):
                timeline(ins.port, ins.frame).shift_phase(item.t0, ins.delta)
            elif isinstance(ins, FrameChange):
                tl = timeline(ins.port, ins.frame)
                tl.set_frequency(item.t0, ins.frequency)
                tl.set_phase(item.t0, ins.phase)

        # Pass 2: plays, modulated by their frame timeline.
        channel_names = sorted(model.channels)
        col = {name: j for j, name in enumerate(channel_names)}
        drives = np.zeros((duration, len(channel_names)), dtype=np.complex128)
        from repro.core.port import PortKind

        for item in schedule.instructions_of(Play):
            ins = item.instruction
            if ins.port.name not in model.channels:
                if ins.port.kind is PortKind.READOUT:
                    # Readout stimulus tones do not enter the qubit
                    # Hamiltonian; their effect is the measurement model.
                    continue
                raise ExecutionError(
                    f"schedule plays on port {ins.port.name!r} which has no "
                    f"channel coupling in the system model"
                )
            ch = model.channels[ins.port.name]
            tl = timeline(ins.port, ins.frame)
            t0, t1 = item.t0, item.t1
            psi = tl.detuning_phase(ch.reference_frequency, model.dt)[t0:t1]
            phase = psi + tl.static_phase[t0:t1]
            drives[t0:t1, col[ins.port.name]] += ins.waveform.samples() * np.exp(
                1j * phase
            )
        return drives, channel_names

    def _run_hamiltonian(
        self, drive_row: np.ndarray, channel_names: list[str]
    ) -> np.ndarray:
        """Total Hamiltonian (Hz units) for one constant-drive run."""
        model = self.model
        h = model.drift.copy()
        for j, name in enumerate(channel_names):
            a = drive_row[j]
            if a == 0:
                continue
            ch = model.channels[name]
            if ch.hermitian:
                h += ch.rabi_rate * a.real * ch.operator
            else:
                half = 0.5 * ch.rabi_rate
                h += half * (
                    np.conj(a) * ch.operator + a * ch.adjoint_operator()
                )
        return h

    def _run_propagators(
        self, drives: np.ndarray, channel_names: list[str]
    ) -> list[tuple[int, np.ndarray]]:
        """``(length, U)`` per constant-drive run, via the batched engine.

        Drift-only runs (all channels zero) reuse the precomputed drift
        eigendecomposition through :func:`~repro.sim.evolve.free_propagator`;
        driven runs are stacked and diagonalized in one batched call,
        with the propagator cache short-circuiting repeated amplitudes.
        """
        runs = segment_runs(drives)
        out: list[tuple[int, np.ndarray] | None] = [None] * len(runs)
        driven_idx: list[int] = []
        driven_hs: list[np.ndarray] = []
        driven_steps: list[int] = []
        for i, (start, length) in enumerate(runs):
            row = drives[start]
            if np.all(row == 0):
                out[i] = (
                    length,
                    free_propagator(self._drift_eig, self.model.dt, length),
                )
            else:
                driven_idx.append(i)
                driven_hs.append(self._run_hamiltonian(row, channel_names))
                driven_steps.append(length)
        if driven_idx:
            hs = np.stack(driven_hs)
            steps = np.asarray(driven_steps, dtype=np.int64)
            us = self.propagator_cache.propagators(hs, self.model.dt, steps)
            for i, u in zip(driven_idx, us):
                out[i] = (runs[i][1], u)
        return out  # type: ignore[return-value]

    def _evolve(
        self,
        schedule: PulseSchedule,
        state: np.ndarray,
        use_dm: bool,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        drives, channel_names = self._synthesize_drives(schedule)
        if use_dm and self.open_system_method != "kraus":
            runs = segment_runs(drives)
            hs = np.stack(
                [
                    self._run_hamiltonian(drives[start], channel_names)
                    for start, _ in runs
                ]
            )
            steps = np.asarray([length for _, length in runs], dtype=np.int64)
            return self.open_system.evolve(hs, steps, state, rng=rng)
        xp = active()
        if not use_dm:
            state = xp.asarray(state, dtype=xp.cdtype)
        for length, u in self._run_propagators(drives, channel_names):
            if use_dm:
                # Legacy Kraus interleave: host-resident per-run channel
                # application, so pull each propagator to the host.
                u = xp.to_host(u)
                state = u @ state @ u.conj().T
                state = self._apply_decoherence(state, length)
            else:
                state = xp.matmul(u, state)
        if not use_dm:
            state = xp.to_host(state)
        return state

    def _apply_decoherence(self, rho: np.ndarray, steps: int) -> np.ndarray:
        """Apply per-site T1/T2 Kraus channels for ``steps * dt``."""
        model = self.model
        tau = steps * model.dt
        for site, spec in enumerate(model.decoherence):
            if not spec.has_decoherence:
                continue
            kraus = self._kraus_ops(site, spec, tau)
            rho = sum(k @ rho @ k.conj().T for k in kraus)
        return rho

    def _kraus_ops(self, site: int, spec, tau: float) -> list[np.ndarray]:
        """Full-space Kraus operators for one site over time *tau*.

        Memoized on ``(site, tau)``: the operators depend on nothing
        else, and rebuilding them — including the full-space ``embed``
        calls — for every run of every execution dominated the legacy
        decoherence path. Schedules revisit the same run lengths
        constantly (flat-tops, echo delays, repeated shots), so the
        cache hits almost always after the first execution.
        """
        key = (site, float(tau))
        cached = self._kraus_cache.get(key)
        if cached is not None:
            self._kraus_cache.move_to_end(key)
            return cached
        ops = self._build_kraus_ops(site, spec, tau)
        for op in ops:
            op.flags.writeable = False  # cached: mutation would poison reuse
        self._kraus_cache[key] = ops
        while len(self._kraus_cache) > self._MAX_KRAUS_ENTRIES:
            self._kraus_cache.popitem(last=False)
        return ops

    def _build_kraus_ops(self, site: int, spec, tau: float) -> list[np.ndarray]:
        from repro.sim.operators import embed

        d = self.model.dims[site]
        ops: list[np.ndarray] = []
        # Amplitude damping: decay n -> n-1 at rate n / T1.
        if np.isfinite(spec.t1):
            gammas = [1.0 - math.exp(-n * tau / spec.t1) for n in range(1, d)]
            k0 = np.diag(
                [1.0] + [math.sqrt(1.0 - g) for g in gammas]
            ).astype(np.complex128)
            ops.append(k0)
            for n, g in enumerate(gammas, start=1):
                k = np.zeros((d, d), dtype=np.complex128)
                k[n - 1, n] = math.sqrt(g)
                ops.append(k)
        else:
            ops.append(np.eye(d, dtype=np.complex128))
        # Pure dephasing from T2 (remove the T1 contribution) — the
        # same gamma_phi convention the Lindblad engine integrates.
        rate_phi = dephasing_rate(spec)
        if rate_phi > _RATE_FLOOR:
            # 1 - 2p = exp(-rate_phi * tau): ground-state coherences
            # then decay at exactly rate_phi, so the total (with the
            # sqrt(1-gamma) factor from K0) is 1/T2 — the standard
            # convention, and the one the Lindblad engine integrates.
            p = 0.5 * (1.0 - math.exp(-rate_phi * tau))
            z = np.eye(d, dtype=np.complex128)
            z[1, 1] = -1.0
            if d > 2:
                z[2, 2] = -1.0
            damp_ops = ops
            ops = []
            for k in damp_ops:
                ops.append(math.sqrt(1.0 - p) * k)
                ops.append(math.sqrt(p) * (z @ k))
        return [embed(k, site, self.model.dims) for k in ops]
