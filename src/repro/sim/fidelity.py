"""Fidelity metrics used by calibration, optimal control and tests."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def state_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Fidelity between two states (kets and/or density matrices).

    For two kets: ``|<a|b>|^2``. For a ket and a density matrix:
    ``<a| rho |a>``. For two density matrices the Uhlmann fidelity
    ``(tr sqrt(sqrt(r1) r2 sqrt(r1)))^2`` via eigendecomposition.
    """
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    if a.ndim == 1 and b.ndim == 1:
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            raise ValidationError("cannot compute fidelity of a zero state")
        return float(np.abs(np.vdot(a, b) / (na * nb)) ** 2)
    if a.ndim == 1:
        return float(np.real(np.vdot(a, b @ a)) / np.real(np.vdot(a, a)))
    if b.ndim == 1:
        return state_fidelity(b, a)
    # Two density matrices.
    evals, evecs = np.linalg.eigh(a)
    evals = np.clip(evals, 0.0, None)
    sqrt_a = (evecs * np.sqrt(evals)) @ evecs.conj().T
    inner = sqrt_a @ b @ sqrt_a
    ev = np.clip(np.linalg.eigvalsh(inner), 0.0, None)
    return float(np.sqrt(ev).sum() ** 2)


def unitary_fidelity(u: np.ndarray, target: np.ndarray) -> float:
    """Phase-insensitive unitary overlap ``|tr(target† u)|^2 / D^2``."""
    u = np.asarray(u, dtype=np.complex128)
    target = np.asarray(target, dtype=np.complex128)
    if u.shape != target.shape or u.ndim != 2 or u.shape[0] != u.shape[1]:
        raise ValidationError(
            f"unitaries must be square and same shape, got {u.shape} vs {target.shape}"
        )
    d = u.shape[0]
    return float(np.abs(np.trace(target.conj().T @ u)) ** 2 / d**2)


def average_gate_fidelity(u: np.ndarray, target: np.ndarray) -> float:
    """Average gate fidelity ``(d*F_pro + 1) / (d + 1)`` for unitaries."""
    d = u.shape[0]
    f_pro = unitary_fidelity(u, target)
    return float((d * f_pro + 1.0) / (d + 1.0))


def process_fidelity(
    u: np.ndarray, target: np.ndarray, subspace: np.ndarray | None = None
) -> float:
    """Process fidelity, optionally restricted to a computational subspace.

    *subspace* is an isometry ``(D, d)`` projecting onto the logical
    subspace (e.g. the qubit levels of a qutrit system); when provided,
    both unitaries are compressed before comparison — leakage then shows
    up as fidelity loss because the compressed operator is subunitary.
    """
    if subspace is not None:
        p = np.asarray(subspace, dtype=np.complex128)
        u = p.conj().T @ u @ p
        if target.shape[0] == p.shape[0]:
            # Target given in the full space: compress it too.
            target = p.conj().T @ target @ p
    d = u.shape[0]
    return float(np.abs(np.trace(target.conj().T @ u)) ** 2 / d**2)
