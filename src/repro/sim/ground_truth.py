"""Exact ground-truth helpers for scoring error mitigation.

A simulator stack can do what no hardware stack can: evaluate the same
circuit on a *noiseless twin* of a decohering model and compare. The
helpers here construct that twin — the executor's
:class:`~repro.sim.model.SystemModel` with its Lindblad decoherence
specs stripped and no readout-error models — and evaluate exact
distributions/expectations on it. ``repro.qem`` scores every mitigated
estimate against these references, and ``benchmarks/bench_qem.py``
gates the error-reduction floor with them.
"""

from __future__ import annotations

import dataclasses

from repro.sim.executor import ScheduleExecutor
from repro.sim.model import SystemModel


def noiseless_model(model: SystemModel) -> SystemModel:
    """*model* with every decoherence channel removed."""
    return dataclasses.replace(model, decoherence=())


def noiseless_twin(executor: ScheduleExecutor) -> ScheduleExecutor:
    """A fresh executor over *executor*'s model without decoherence or
    readout error — the zero-noise reference ZNE extrapolates toward."""
    return ScheduleExecutor(noiseless_model(executor.model))


def exact_distribution(executor: ScheduleExecutor, schedule) -> dict[str, float]:
    """The exact pre-readout outcome distribution of *schedule*."""
    return dict(executor.execute(schedule, shots=0).ideal_probabilities)


def exact_expectation(executor: ScheduleExecutor, schedule, observable) -> float:
    """Exact expectation of *observable* after *schedule* on *executor*.

    Diagonal observables on measuring schedules evaluate from the exact
    pre-readout distribution; everything else goes through the state
    path (computational-subspace embedding), matching the Estimator's
    direct-mode conventions.
    """
    result = executor.execute(schedule, shots=0)
    sites = result.measured_sites
    if observable.is_diagonal and sites:
        return float(
            observable.expectation(
                result.ideal_probabilities, n_slots=len(sites)
            ).real
        )
    from repro.control.hamiltonians import expectation

    op = observable.matrix(tuple(executor.model.dims), sites if sites else None)
    return float(expectation(result.final_state, op).real)


def reference_expectation(
    executor: ScheduleExecutor, schedule, observable
) -> float:
    """The zero-noise target: *observable* on the noiseless twin."""
    return exact_expectation(noiseless_twin(executor), schedule, observable)
