"""Operator construction for multi-site systems with mixed dimensions.

Sites may be qubits (dim 2) or qutrits (dim 3 — transmons where the
|2> leakage level is modeled). All constructors return dense complex
``float64`` arrays; system sizes in this reproduction are small (<= 4
sites), where dense linear algebra beats sparse bookkeeping.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ValidationError

_PAULI = {
    "i": np.eye(2, dtype=np.complex128),
    "x": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}


def pauli(name: str) -> np.ndarray:
    """The 2x2 Pauli matrix ``i/x/y/z`` (case-insensitive), as a copy."""
    try:
        return _PAULI[name.lower()].copy()
    except KeyError:
        raise ValidationError(f"unknown Pauli {name!r}; want one of i,x,y,z") from None


def identity(dim: int) -> np.ndarray:
    """Identity on one site of dimension *dim*."""
    if dim < 2:
        raise ValidationError(f"site dimension must be >= 2, got {dim}")
    return np.eye(dim, dtype=np.complex128)


def annihilation(dim: int) -> np.ndarray:
    """Truncated bosonic annihilation operator ``a`` on *dim* levels.

    For dim=2 this is ``sigma_minus``; for dim=3 it couples 0<->1 and
    1<->2 with the sqrt(n) matrix elements of a transmon.
    """
    if dim < 2:
        raise ValidationError(f"site dimension must be >= 2, got {dim}")
    a = np.zeros((dim, dim), dtype=np.complex128)
    ns = np.sqrt(np.arange(1, dim, dtype=np.float64))
    a[np.arange(dim - 1), np.arange(1, dim)] = ns
    return a


def kron_all(ops: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of operators, left to right."""
    mats = list(ops)
    if not mats:
        raise ValidationError("kron_all needs at least one operator")
    return reduce(np.kron, mats)


def embed(op: np.ndarray, site: int, dims: Sequence[int]) -> np.ndarray:
    """Lift a single-site operator to the full tensor-product space.

    Parameters
    ----------
    op:
        Square matrix whose dimension must equal ``dims[site]``.
    site:
        Index of the site the operator acts on.
    dims:
        Per-site dimensions of the whole system.
    """
    if not 0 <= site < len(dims):
        raise ValidationError(f"site {site} out of range for dims {tuple(dims)}")
    if op.shape != (dims[site], dims[site]):
        raise ValidationError(
            f"operator shape {op.shape} does not match site dim {dims[site]}"
        )
    factors = [identity(d) for d in dims]
    factors[site] = np.asarray(op, dtype=np.complex128)
    return kron_all(factors)


def pauli_on(name: str, site: int, dims: Sequence[int]) -> np.ndarray:
    """Pauli *name* on *site*, embedded in the full space.

    On a qutrit site the Pauli acts on the {|0>, |1>} subspace and is
    zero on |2> (except identity, which is the true identity).
    """
    d = dims[site]
    if d == 2:
        local = pauli(name)
    else:
        local = np.zeros((d, d), dtype=np.complex128)
        local[:2, :2] = pauli(name)
        if name.lower() == "i":
            local = identity(d)
    return embed(local, site, dims)


def destroy_on(site: int, dims: Sequence[int]) -> np.ndarray:
    """Annihilation operator on *site*, embedded in the full space."""
    return embed(annihilation(dims[site]), site, dims)


def number_on(site: int, dims: Sequence[int]) -> np.ndarray:
    """Number operator ``a† a`` on *site*, embedded in the full space."""
    a = annihilation(dims[site])
    return embed(a.conj().T @ a, site, dims)


def basis_state(labels: Sequence[int], dims: Sequence[int]) -> np.ndarray:
    """The product state ``|labels[0], labels[1], ...>`` as a ket."""
    if len(labels) != len(dims):
        raise ValidationError(
            f"{len(labels)} labels for {len(dims)} sites"
        )
    index = 0
    for lbl, d in zip(labels, dims):
        if not 0 <= lbl < d:
            raise ValidationError(f"label {lbl} out of range for dim {d}")
        index = index * d + lbl
    total = int(np.prod(dims))
    psi = np.zeros(total, dtype=np.complex128)
    psi[index] = 1.0
    return psi


def projector(labels: Sequence[int], dims: Sequence[int]) -> np.ndarray:
    """Projector onto the product basis state ``|labels>``."""
    psi = basis_state(labels, dims)
    return np.outer(psi, psi.conj())
