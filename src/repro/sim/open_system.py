"""Batched open-system (Lindblad) evolution — the noisy-workload engine.

With finite T1/T2 the state is a density matrix and the exact dynamics
of one constant-drive run is the Lindblad master equation

``drho/dt = -2*pi*i [H, rho] + sum_j ( C_j rho C_j^dag
- 1/2 {C_j^dag C_j, rho} )``

with *H* in Hz and the collapse operators ``C_j`` carrying their rates
(units ``1/sqrt(s)``). Vectorizing the density matrix row-major
(``vec(A rho B) = (A kron B^T) vec(rho)``) turns each run into one
matrix exponential of the superoperator

``L = -2*pi*i (H kron I - I kron H^T) + sum_j ( C_j kron conj(C_j)
- 1/2 (C_j^dag C_j kron I + I kron (C_j^dag C_j)^T) )``

and the whole schedule into a stack of them — which this module
exponentiates exactly the way :mod:`repro.sim.evolve` exponentiates
unitary slices: assemble the ``(n, D^2, D^2)`` stack in a handful of
broadcast operations, push it through the batched scaling-and-squaring
Paterson-Stockmeyer :func:`~repro.sim.evolve.batched_expm` (dense
per-matrix fallback when a slice would need excessive squaring), and
memoize through the shared :class:`~repro.sim.evolve.PropagatorCache`
keyed on the *Hamiltonian* fingerprint under a dissipator-specific
namespace tag — repeated drive amplitudes (flat-tops, echo trains,
sweeps) skip the superoperator assembly and exponential entirely.

For large Hilbert spaces the ``D^2 x D^2`` superoperator is the wrong
data structure; :meth:`OpenSystemEngine.evolve_trajectories` provides
the standard quantum-jump (Monte-Carlo wave function) unraveling
instead: kets evolve under the non-Hermitian effective Hamiltonian
``H - i/(4*pi) * sum_j C_j^dag C_j`` (one batched non-unitary
propagator per run, shared across all trajectories) and jump when the
squared norm crosses a pre-drawn uniform threshold. Memory is
``O(n_traj * D)`` and the average converges to the Lindblad result at
the ``1/sqrt(n_traj)`` shot rate.

:class:`OpenSystemEngine` picks between the two automatically:
superoperators up to :attr:`~OpenSystemEngine.max_superop_dim`,
trajectories beyond.

Backend split: superoperator assembly and the vectorized evolution
loop run on the active array backend (:mod:`repro.xp`) — they are the
batched-GEMM hot path. Trajectory sampling, collapse-operator
construction, and density-matrix plumbing are host-resident
(:data:`repro.xp.hostnp`): they are RNG-driven, per-element control
flow where the host is the right place — only the batched no-jump
exponential runs on the backend.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

from repro.errors import ValidationError
from repro.sim.evolve import PropagatorCache, batched_expm
from repro.sim.model import DecoherenceSpec, SystemModel
from repro.sim.operators import annihilation, embed
from repro.xp import active
from repro.xp import hostnp as hnp

_TWO_PI = 2.0 * hnp.pi

#: Pure-dephasing rates below this (1/s) are treated as zero — matching
#: the physicality tolerance of :class:`DecoherenceSpec` (T2 = 2*T1).
_RATE_FLOOR = 1e-15


def dephasing_rate(spec: DecoherenceSpec) -> float:
    """Pure-dephasing rate ``gamma_phi = 1/T2 - 1/(2*T1)`` in 1/s."""
    rate = 0.0
    if hnp.isfinite(spec.t2):
        rate = 1.0 / spec.t2 - (
            0.5 / spec.t1 if hnp.isfinite(spec.t1) else 0.0
        )
    return max(0.0, rate)


def collapse_operators(
    dims: Sequence[int], decoherence: Sequence[DecoherenceSpec]
) -> list[hnp.ndarray]:
    """Per-site T1/T2 collapse operators, embedded in the full space.

    Amplitude damping enters as ``sqrt(1/T1) * a`` (the ladder
    operator's ``sqrt(n)`` matrix elements give level *n* the decay
    rate ``n/T1``); pure dephasing as ``sqrt(gamma_phi/2) * Z`` with
    ``Z = diag(1, -1, ..., -1)`` — levels >= 1 pick up the phase flip,
    matching the discriminator convention of the legacy Kraus path —
    so coherences to the ground state decay at exactly ``1/T2``.
    """
    if decoherence and len(decoherence) != len(dims):
        raise ValidationError(
            "decoherence must list one spec per site when provided"
        )
    ops: list[hnp.ndarray] = []
    for site, spec in enumerate(decoherence):
        if not spec.has_decoherence:
            continue
        d = dims[site]
        if hnp.isfinite(spec.t1):
            ops.append(
                embed(annihilation(d) / hnp.sqrt(spec.t1), site, dims)
            )
        rate_phi = dephasing_rate(spec)
        if rate_phi > _RATE_FLOOR:
            z = -hnp.eye(d, dtype=hnp.complex128)
            z[0, 0] = 1.0
            ops.append(embed(hnp.sqrt(0.5 * rate_phi) * z, site, dims))
    return ops


def as_density(state: hnp.ndarray, dim: int) -> hnp.ndarray:
    """Coerce a ket or density matrix to a ``(dim, dim)`` density matrix.

    Kets are normalized first, so unnormalized initial states behave
    the same on every open-system entry point.
    """
    state = hnp.asarray(state, dtype=hnp.complex128)
    if state.ndim == 1:
        if state.shape != (dim,):
            raise ValidationError(
                f"ket length {state.shape[0]} does not match D={dim}"
            )
        norm = hnp.linalg.norm(state)
        if norm == 0:
            raise ValidationError("cannot evolve a zero state")
        psi = state / norm
        return hnp.outer(psi, psi.conj())
    if state.ndim != 2 or state.shape != (dim, dim):
        raise ValidationError(
            f"state shape {state.shape} does not match D={dim}"
        )
    return state


def vectorize_density(rho: hnp.ndarray) -> hnp.ndarray:
    """Row-major ``vec(rho)`` of a ``(D, D)`` density matrix."""
    rho = hnp.asarray(rho, dtype=hnp.complex128)
    if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
        raise ValidationError(
            f"density matrix must be square, got shape {rho.shape}"
        )
    return rho.reshape(-1)


def unvectorize_density(vec: hnp.ndarray, dim: int) -> hnp.ndarray:
    """Inverse of :func:`vectorize_density`."""
    vec = hnp.asarray(vec, dtype=hnp.complex128)
    if vec.shape != (dim * dim,):
        raise ValidationError(
            f"vectorized state has shape {vec.shape}, want ({dim * dim},)"
        )
    return vec.reshape(dim, dim)


def dissipator_superoperator(
    collapse_ops: Sequence[hnp.ndarray], dim: int
) -> hnp.ndarray:
    """The drive-independent dissipator ``sum_j D[C_j]`` as a matrix.

    Row-major vectorization: ``D[C] = C kron conj(C)
    - 1/2 (C^dag C kron I + I kron (C^dag C)^T)``. Rates are carried by
    the operators themselves (1/s), so the result is in 1/s — no
    ``2*pi``. Built once per noise model on the host (a small
    per-operator kron loop, not a batched hot path).
    """
    eye = hnp.eye(dim, dtype=hnp.complex128)
    out = hnp.zeros((dim * dim, dim * dim), dtype=hnp.complex128)
    for c in collapse_ops:
        c = hnp.asarray(c, dtype=hnp.complex128)
        if c.shape != (dim, dim):
            raise ValidationError(
                f"collapse operator shape {c.shape} does not match D={dim}"
            )
        cdc = c.conj().T @ c
        out += hnp.kron(c, c.conj())
        out -= 0.5 * (hnp.kron(cdc, eye) + hnp.kron(eye, cdc.T))
    return out


def hamiltonian_superoperators(hamiltonians) -> hnp.ndarray:
    """``-2*pi*i (H kron I - I kron H^T)`` for a ``(n, D, D)`` stack."""
    xp = active()
    hs = xp.asarray(hamiltonians, dtype=xp.cdtype)
    if hs.ndim != 3 or hs.shape[1] != hs.shape[2]:
        raise ValidationError(
            f"Hamiltonian stack must have shape (n, D, D), got {hs.shape}"
        )
    n, dim = hs.shape[0], hs.shape[1]
    eye = xp.eye(dim, dtype=xp.cdtype)
    # Row-major composite index (i, j), (k, l):
    #   (H kron I)[ij, kl]   = H[i, k] * I[j, l]
    #   (I kron H^T)[ij, kl] = I[i, k] * H[l, j]
    left = xp.einsum("nik,jl->nijkl", hs, eye)
    right = xp.einsum("ik,nlj->nijkl", eye, hs)
    return (-1j * _TWO_PI) * (left - right).reshape(n, dim * dim, dim * dim)


def lindblad_superoperators(
    hamiltonians,
    collapse_ops: Sequence[hnp.ndarray],
    *,
    dissipator: hnp.ndarray | None = None,
) -> hnp.ndarray:
    """Full Lindblad generator stack ``(n, D^2, D^2)`` in 1/s.

    *dissipator* short-circuits the (drive-independent) dissipator
    assembly when the caller has it precomputed.
    """
    xp = active()
    ls = hamiltonian_superoperators(hamiltonians)
    if dissipator is None:
        dissipator = dissipator_superoperator(
            collapse_ops, hnp.asarray(hamiltonians).shape[1]
        )
    ls += xp.asarray(dissipator, dtype=xp.cdtype)
    return ls


def batched_superpropagators(
    hamiltonians,
    collapse_ops: Sequence[hnp.ndarray],
    dt: float,
    steps=1,
    *,
    method: str = "auto",
    dissipator: hnp.ndarray | None = None,
) -> hnp.ndarray:
    """``exp(L_k * dt * steps_k)`` for a stack of constant-drive runs.

    The open-system analogue of
    :func:`~repro.sim.evolve.batched_propagators`: one
    ``(n, D^2, D^2)`` stack of completely positive trace-preserving
    maps, evaluated with batched matmuls (*method* as in
    :func:`~repro.sim.evolve.batched_expm`) on the active backend.
    """
    if dt <= 0:
        raise ValidationError(f"dt must be > 0, got {dt}")
    steps_arr = hnp.asarray(steps)
    if hnp.any(steps_arr < 1):
        raise ValidationError("steps must be >= 1")
    ls = lindblad_superoperators(
        hamiltonians, collapse_ops, dissipator=dissipator
    )
    return batched_expm(
        ls, scale=dt * steps_arr.astype(hnp.float64), method=method
    )


class OpenSystemEngine:
    """Batched density-matrix evolution for one decoherence model.

    Owns the collapse operators, the precomputed dissipator, and a
    :class:`~repro.sim.evolve.PropagatorCache` whose entries are the
    run superpropagators, keyed on the run-Hamiltonian fingerprint
    under a dissipator-specific namespace. One engine instance serves
    every schedule executed against the same
    :class:`~repro.sim.model.SystemModel`.

    Parameters
    ----------
    dims, decoherence, dt:
        The system geometry, per-site T1/T2, and sample period.
    cache:
        Optional shared propagator cache (a private one is created
        otherwise).
    method:
        ``"superoperator"`` — exact ``(D^2, D^2)`` propagators;
        ``"trajectories"`` — quantum-jump sampling, memory ``O(D)``;
        ``"auto"`` (default) — superoperators up to
        ``max_superop_dim``, trajectories beyond.
    trajectories:
        Trajectory count for the sampling path.
    max_superop_dim:
        Largest Hilbert dimension the auto policy still materializes
        ``D^2 x D^2`` superoperators for (32 -> 1024^2 complex entries
        per run, ~16 MiB — past that, trajectories win).
    collapse_ops:
        Explicit collapse operators overriding the per-site T1/T2
        construction — for engines over hand-built noise models (e.g.
        the GRAPE noisy objective).
    """

    def __init__(
        self,
        dims: Sequence[int],
        decoherence: Sequence[DecoherenceSpec],
        dt: float,
        *,
        cache: PropagatorCache | None = None,
        method: str = "auto",
        trajectories: int = 512,
        max_superop_dim: int = 32,
        collapse_ops: Sequence[hnp.ndarray] | None = None,
    ) -> None:
        if method not in ("auto", "superoperator", "trajectories"):
            raise ValidationError(
                "method must be 'auto', 'superoperator' or "
                f"'trajectories', got {method!r}"
            )
        if dt <= 0:
            raise ValidationError(f"dt must be > 0, got {dt}")
        if trajectories < 1:
            raise ValidationError(
                f"trajectories must be >= 1, got {trajectories}"
            )
        self.dims = tuple(int(d) for d in dims)
        self.dim = int(hnp.prod(self.dims))
        self.dt = float(dt)
        self.method = method
        self.trajectories = int(trajectories)
        self.max_superop_dim = int(max_superop_dim)
        if collapse_ops is not None:
            self.collapse_ops = [
                hnp.asarray(c, dtype=hnp.complex128) for c in collapse_ops
            ]
        else:
            self.collapse_ops = collapse_operators(self.dims, decoherence)
        self._dissipator = dissipator_superoperator(
            self.collapse_ops, self.dim
        )
        # sum_j C_j^dag C_j: the anti-Hermitian part of the effective
        # Hamiltonian on the trajectory path, and the jump weights.
        self._jump_rates = sum(
            (c.conj().T @ c for c in self.collapse_ops),
            hnp.zeros((self.dim, self.dim), dtype=hnp.complex128),
        )
        # Cache namespace: same Hamiltonian, different T1/T2 must not
        # share superpropagators.
        digest = hashlib.blake2b(digest_size=8)
        digest.update(hnp.ascontiguousarray(self._dissipator).tobytes())
        self._tag = "lindblad:" + digest.hexdigest()
        self.cache = cache if cache is not None else PropagatorCache()

    @classmethod
    def from_model(cls, model: SystemModel, **kwargs) -> "OpenSystemEngine":
        """Engine for *model*'s dims / decoherence / sample period."""
        return cls(model.dims, model.decoherence, model.dt, **kwargs)

    # ---- superoperator path ------------------------------------------------------

    def superpropagators(self, hamiltonians, steps=1):
        """Cached ``exp(L_k * dt * steps_k)`` stack for the runs."""

        def compute(hs, dt, steps_sel):
            return batched_superpropagators(
                hs,
                self.collapse_ops,
                dt,
                steps_sel,
                dissipator=self._dissipator,
            )

        return self.cache.propagators(
            hamiltonians, self.dt, steps, compute=compute, tag=self._tag
        )

    def evolve_density_matrix(
        self, hamiltonians, steps, rho
    ) -> hnp.ndarray:
        """Exact Lindblad evolution of *rho* through the run stack.

        The vectorized state stays on the active backend across the
        whole run loop; only the final density matrix comes back to
        the host.
        """
        xp = active()
        rho = self._as_density(rho)
        props = self.superpropagators(hamiltonians, steps)
        vec = xp.asarray(vectorize_density(rho), dtype=xp.cdtype)
        for s in props:
            vec = xp.matmul(s, vec)
        return unvectorize_density(xp.to_host(vec), self.dim)

    # ---- trajectory path ---------------------------------------------------------

    def evolve_trajectories(
        self,
        hamiltonians,
        steps,
        state,
        *,
        n_trajectories: int | None = None,
        rng: hnp.random.Generator | None = None,
    ) -> hnp.ndarray:
        """Quantum-jump estimate of the final density matrix.

        Every trajectory evolves under the per-run non-unitary
        no-jump propagators ``exp((-2*pi*i*H - 1/2 sum_j C_j^dag C_j)
        * dt)`` (one batched exponential for the whole run stack,
        shared by all trajectories) and jumps — channel drawn
        proportionally to ``||C_j psi||^2`` — whenever its squared
        norm falls below a pre-drawn uniform threshold. Jump timing is
        resolved to one sample, so the estimate carries an ``O(dt)``
        bias on top of the ``1/sqrt(n_traj)`` statistical error.

        Host-resident except the batched no-jump exponential: the
        per-sample threshold checks and RNG-driven jumps are scalar
        control flow, the opposite of the backend's batched-GEMM sweet
        spot, so the ket ensemble stays on the host.
        """
        hs = hnp.asarray(hamiltonians, dtype=hnp.complex128)
        if hs.ndim != 3 or hs.shape[1:] != (self.dim, self.dim):
            raise ValidationError(
                f"Hamiltonian stack shape {hs.shape} does not match "
                f"(n, {self.dim}, {self.dim})"
            )
        steps_arr = hnp.broadcast_to(
            hnp.asarray(steps, dtype=hnp.int64), (hs.shape[0],)
        )
        if hnp.any(steps_arr < 1):
            raise ValidationError("steps must be >= 1")
        m = int(n_trajectories or self.trajectories)
        if m < 1:
            raise ValidationError(f"n_trajectories must be >= 1, got {m}")
        if rng is None:
            rng = hnp.random.default_rng()
        # One no-jump propagator per run, one dt substep each — the
        # only batched kernel on this path, so it runs on the backend
        # and the resulting small (n, D, D) stack moves to the host.
        generators = -1j * _TWO_PI * hs - 0.5 * self._jump_rates[None]
        no_jump = active().to_host(batched_expm(generators, scale=self.dt))
        psis = self._initial_trajectories(state, m, rng)
        thresholds = rng.uniform(size=m)
        for k in range(hs.shape[0]):
            u_t = no_jump[k].T.copy()
            for _ in range(int(steps_arr[k])):
                psis = psis @ u_t
                norms2 = hnp.einsum("ti,ti->t", psis.conj(), psis).real
                jumped = hnp.nonzero(norms2 <= thresholds)[0]
                for t in jumped:
                    psis[t] = self._apply_jump(psis[t], rng)
                    thresholds[t] = rng.uniform()
        norms2 = hnp.einsum("ti,ti->t", psis.conj(), psis).real
        weighted = psis / hnp.sqrt(hnp.maximum(norms2, 1e-300))[:, None]
        return hnp.einsum("ti,tj->ij", weighted, weighted.conj()) / m

    def _apply_jump(
        self, psi: hnp.ndarray, rng: hnp.random.Generator
    ) -> hnp.ndarray:
        """Collapse *psi* through one jump channel; returns unit norm."""
        weights = hnp.array(
            [hnp.linalg.norm(c @ psi) ** 2 for c in self.collapse_ops]
        )
        total = weights.sum()
        if total <= 0:
            # Numerically no channel applies (norm decayed through the
            # threshold by rounding alone): keep the renormalized state.
            return psi / hnp.linalg.norm(psi)
        choice = rng.choice(len(self.collapse_ops), p=weights / total)
        jumped = self.collapse_ops[choice] @ psi
        return jumped / hnp.linalg.norm(jumped)

    def _initial_trajectories(
        self, state: hnp.ndarray, m: int, rng: hnp.random.Generator
    ) -> hnp.ndarray:
        """``(m, D)`` start kets; mixed states sample their eigenbasis."""
        state = hnp.asarray(state, dtype=hnp.complex128)
        if state.ndim == 1:
            if state.shape != (self.dim,):
                raise ValidationError(
                    f"ket length {state.shape[0]} does not match D={self.dim}"
                )
            psi = state / hnp.linalg.norm(state)
            return hnp.tile(psi, (m, 1))
        rho = self._as_density(state)
        evals, evecs = hnp.linalg.eigh(rho)
        evals = hnp.clip(evals.real, 0.0, None)
        evals /= evals.sum()
        picks = rng.choice(self.dim, size=m, p=evals)
        return evecs.T[picks].astype(hnp.complex128)

    # ---- dispatch ----------------------------------------------------------------

    def evolve(
        self,
        hamiltonians,
        steps,
        state,
        *,
        rng: hnp.random.Generator | None = None,
        method: str | None = None,
    ) -> hnp.ndarray:
        """Evolve *state* (ket or density matrix) through the runs.

        Returns a density matrix either way. *method* overrides the
        engine default for this call.
        """
        method = method or self.method
        if method == "auto":
            method = (
                "superoperator"
                if self.dim <= self.max_superop_dim
                else "trajectories"
            )
        if method == "trajectories":
            return self.evolve_trajectories(
                hamiltonians, steps, state, rng=rng
            )
        if method != "superoperator":
            raise ValidationError(f"unknown open-system method {method!r}")
        return self.evolve_density_matrix(
            hamiltonians, steps, self._as_density(state)
        )

    def _as_density(self, state: hnp.ndarray) -> hnp.ndarray:
        return as_density(state, self.dim)
