"""Pulse-level quantum dynamics simulator.

This package is the hardware substitute mandated by the reproduction
plan (DESIGN.md): the paper's evaluation requires real superconducting,
trapped-ion and neutral-atom accelerators, which are access-gated, so
every device in :mod:`repro.devices` executes its pulse schedules on
this simulator instead. It implements:

* multi-site tensor-product operator construction with per-site
  dimensions (qubits or qutrits — the |2> level matters for DRAG and
  ctrl-VQE experiments),
* piecewise-constant Schrodinger evolution in the rotating frame, with
  frame-aware carrier modulation (detuning + phase from
  :class:`~repro.core.frame.FrameState`),
* exact open-system (Lindblad) evolution with finite T1/T2 through the
  batched superoperator engine of :mod:`repro.sim.open_system` (T1
  amplitude damping, T2 pure dephasing; quantum-jump trajectories for
  large Hilbert spaces; the legacy per-step Kraus splitting kept as
  ``open_system_method="kraus"``),
* projective measurement with a configurable readout-error model and
  seeded shot sampling,
* fidelity metrics used by calibration and optimal control.
"""

from repro.sim.operators import (
    annihilation,
    basis_state,
    destroy_on,
    embed,
    identity,
    kron_all,
    number_on,
    pauli,
    pauli_on,
    projector,
)
from repro.sim.model import ChannelCoupling, DecoherenceSpec, SystemModel
from repro.sim.evolve import (
    PropagatorCache,
    batched_expm,
    batched_expm_and_frechet,
    batched_propagators,
    build_hamiltonians,
    evolve_piecewise,
    evolve_unitary,
    free_propagator,
    hamiltonian_fingerprint,
    propagator_sequence,
    step_propagator,
)
from repro.sim.open_system import (
    OpenSystemEngine,
    as_density,
    batched_superpropagators,
    collapse_operators,
    dissipator_superoperator,
    hamiltonian_superoperators,
    lindblad_superoperators,
    unvectorize_density,
    vectorize_density,
)
from repro.sim.executor import ExecutionResult, ScheduleExecutor
from repro.sim.measurement import ReadoutModel, sample_counts
from repro.sim.fidelity import (
    average_gate_fidelity,
    process_fidelity,
    state_fidelity,
    unitary_fidelity,
)

__all__ = [
    "pauli",
    "identity",
    "annihilation",
    "kron_all",
    "embed",
    "pauli_on",
    "destroy_on",
    "number_on",
    "basis_state",
    "projector",
    "SystemModel",
    "ChannelCoupling",
    "DecoherenceSpec",
    "evolve_piecewise",
    "evolve_unitary",
    "step_propagator",
    "free_propagator",
    "propagator_sequence",
    "build_hamiltonians",
    "batched_propagators",
    "batched_expm",
    "batched_expm_and_frechet",
    "hamiltonian_fingerprint",
    "PropagatorCache",
    "OpenSystemEngine",
    "as_density",
    "batched_superpropagators",
    "collapse_operators",
    "dissipator_superoperator",
    "hamiltonian_superoperators",
    "lindblad_superoperators",
    "vectorize_density",
    "unvectorize_density",
    "ScheduleExecutor",
    "ExecutionResult",
    "ReadoutModel",
    "sample_counts",
    "state_fidelity",
    "unitary_fidelity",
    "average_gate_fidelity",
    "process_fidelity",
]
