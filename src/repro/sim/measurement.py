"""Measurement: projective readout, assignment errors, shot sampling.

Captures in a pulse schedule mark which sites are read out and into
which classical memory slot. This module turns a final quantum state
into (a) exact outcome probabilities over the measured sites and (b)
seeded shot counts after applying a per-site readout (assignment) error
model. Leakage levels (|2> on qutrits) are reported as ``1`` by the
discriminator — the standard behaviour of threshold-based dispersive
readout — but their exact populations are preserved separately so the
ctrl-VQE and DRAG experiments can track leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class ReadoutModel:
    """Per-site symmetric-or-not assignment error.

    ``p01`` is the probability of reading 1 when the qubit is 0;
    ``p10`` of reading 0 when it is 1.
    """

    p01: float = 0.0
    p10: float = 0.0

    def __post_init__(self) -> None:
        for p in (self.p01, self.p10):
            if not 0.0 <= p <= 1.0:
                raise ValidationError(f"readout error probability {p} not in [0,1]")

    def confusion_matrix(self) -> np.ndarray:
        """2x2 matrix ``M[observed, actual]``."""
        return np.array(
            [[1.0 - self.p01, self.p10], [self.p01, 1.0 - self.p10]],
            dtype=np.float64,
        )


def state_probabilities(state: np.ndarray, dims: Sequence[int]) -> np.ndarray:
    """Probability of each full product-basis label, shape ``dims``.

    *state* may be a ket or a density matrix.
    """
    state = np.asarray(state, dtype=np.complex128)
    total = int(np.prod(dims))
    if state.ndim == 1:
        if state.shape != (total,):
            raise ValidationError(
                f"ket length {state.shape} does not match dims {tuple(dims)}"
            )
        probs = np.abs(state) ** 2
    elif state.ndim == 2:
        if state.shape != (total, total):
            raise ValidationError(
                f"density matrix shape {state.shape} does not match dims {tuple(dims)}"
            )
        probs = np.real(np.diag(state)).copy()
    else:
        raise ValidationError("state must be a ket or a density matrix")
    probs = np.clip(probs, 0.0, None)
    s = probs.sum()
    if s <= 0:
        raise ValidationError("state has zero norm")
    return (probs / s).reshape(tuple(dims))


def measured_bit_distribution(
    state: np.ndarray,
    dims: Sequence[int],
    measured_sites: Sequence[int],
) -> dict[str, float]:
    """Joint distribution of *bit* outcomes over *measured_sites*.

    Levels >= 1 on a site are discriminated as bit 1. Unmeasured sites
    are traced out. Keys are bitstrings ordered like *measured_sites*
    (first listed site = leftmost character).
    """
    if len(set(measured_sites)) != len(measured_sites):
        raise ValidationError("measured sites must be distinct")
    probs = state_probabilities(state, dims)
    n = len(dims)
    # Trace out unmeasured sites.
    keep = list(measured_sites)
    others = [s for s in range(n) if s not in keep]
    marg = probs.sum(axis=tuple(others)) if others else probs
    # Axes of marg follow ascending site index; enumerate in that order
    # and assemble keys in the caller's measured-site order.
    sorted_keep = sorted(keep)
    out: dict[str, float] = {}
    it = np.ndindex(*[dims[s] for s in sorted_keep])
    for labels in it:
        p = float(marg[labels])
        if p == 0.0:
            continue
        bits = {
            site: ("1" if lbl >= 1 else "0")
            for site, lbl in zip(sorted_keep, labels)
        }
        key = "".join(bits[s] for s in keep)
        out[key] = out.get(key, 0.0) + p
    return out


def apply_readout_error(
    distribution: Mapping[str, float],
    models: Sequence[ReadoutModel],
) -> dict[str, float]:
    """Push a joint bit distribution through per-site confusion matrices.

    *models* must align with the bit positions of the keys.
    """
    if not distribution:
        return {}
    n_bits = len(next(iter(distribution)))
    if len(models) != n_bits:
        raise ValidationError(
            f"{len(models)} readout models for {n_bits}-bit outcomes"
        )
    mats = [m.confusion_matrix() for m in models]
    out: dict[str, float] = {}
    for actual, p in distribution.items():
        if len(actual) != n_bits:
            raise ValidationError("inconsistent bitstring lengths in distribution")
        # Enumerate observed strings; n_bits is small (<= 4 in this repo).
        for observed_idx in range(2**n_bits):
            observed = format(observed_idx, f"0{n_bits}b")
            weight = p
            for mat, o, a in zip(mats, observed, actual):
                weight *= mat[int(o), int(a)]
                if weight == 0.0:
                    break
            if weight > 0.0:
                out[observed] = out.get(observed, 0.0) + weight
    return out


def sample_counts(
    distribution: Mapping[str, float],
    shots: int,
    rng: np.random.Generator,
) -> dict[str, int]:
    """Draw *shots* samples from a bitstring distribution (multinomial)."""
    if shots < 0:
        raise ValidationError(f"shots must be >= 0, got {shots}")
    if shots == 0 or not distribution:
        return {}
    keys = sorted(distribution)
    probs = np.array([distribution[k] for k in keys], dtype=np.float64)
    probs = np.clip(probs, 0.0, None)
    probs /= probs.sum()
    draws = rng.multinomial(shots, probs)
    return {k: int(c) for k, c in zip(keys, draws) if c > 0}


def leakage_populations(
    state: np.ndarray, dims: Sequence[int]
) -> dict[int, float]:
    """Per-site probability of occupying levels >= 2 (leakage)."""
    probs = state_probabilities(state, dims)
    out: dict[int, float] = {}
    for site, d in enumerate(dims):
        if d <= 2:
            out[site] = 0.0
            continue
        axes = tuple(a for a in range(len(dims)) if a != site)
        marginal = probs.sum(axis=axes)
        out[site] = float(marginal[2:].sum())
    return out
