"""Measurement: projective readout, assignment errors, shot sampling.

Captures in a pulse schedule mark which sites are read out and into
which classical memory slot. This module turns a final quantum state
into (a) exact outcome probabilities over the measured sites and (b)
seeded shot counts after applying a per-site readout (assignment) error
model. Leakage levels (|2> on qutrits) are reported as ``1`` by the
discriminator — the standard behaviour of threshold-based dispersive
readout — but their exact populations are preserved separately so the
ctrl-VQE and DRAG experiments can track leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class ReadoutModel:
    """Per-site symmetric-or-not assignment error.

    ``p01`` is the probability of reading 1 when the qubit is 0;
    ``p10`` of reading 0 when it is 1.
    """

    p01: float = 0.0
    p10: float = 0.0

    def __post_init__(self) -> None:
        for p in (self.p01, self.p10):
            if not 0.0 <= p <= 1.0:
                raise ValidationError(f"readout error probability {p} not in [0,1]")

    def confusion_matrix(self) -> np.ndarray:
        """2x2 matrix ``M[observed, actual]``."""
        return np.array(
            [[1.0 - self.p01, self.p10], [self.p01, 1.0 - self.p10]],
            dtype=np.float64,
        )


def state_probabilities(state: np.ndarray, dims: Sequence[int]) -> np.ndarray:
    """Probability of each full product-basis label, shape ``dims``.

    *state* may be a ket or a density matrix.
    """
    state = np.asarray(state, dtype=np.complex128)
    total = int(np.prod(dims))
    if state.ndim == 1:
        if state.shape != (total,):
            raise ValidationError(
                f"ket length {state.shape} does not match dims {tuple(dims)}"
            )
        probs = np.abs(state) ** 2
    elif state.ndim == 2:
        if state.shape != (total, total):
            raise ValidationError(
                f"density matrix shape {state.shape} does not match dims {tuple(dims)}"
            )
        probs = np.real(np.diag(state)).copy()
    else:
        raise ValidationError("state must be a ket or a density matrix")
    probs = np.clip(probs, 0.0, None)
    s = probs.sum()
    if s <= 0:
        raise ValidationError("state has zero norm")
    return (probs / s).reshape(tuple(dims))


def measured_bit_distribution(
    state: np.ndarray,
    dims: Sequence[int],
    measured_sites: Sequence[int],
) -> dict[str, float]:
    """Joint distribution of *bit* outcomes over *measured_sites*.

    Levels >= 1 on a site are discriminated as bit 1. Unmeasured sites
    are traced out. Keys are bitstrings ordered like *measured_sites*
    (first listed site = leftmost character).
    """
    if len(set(measured_sites)) != len(measured_sites):
        raise ValidationError("measured sites must be distinct")
    probs = state_probabilities(state, dims)
    n = len(dims)
    # Trace out unmeasured sites.
    keep = list(measured_sites)
    others = [s for s in range(n) if s not in keep]
    marg = probs.sum(axis=tuple(others)) if others else probs
    # Collapse each remaining axis to two bins — level 0 vs. levels
    # >= 1 — so the enumeration below runs over 2^m bit patterns, not
    # the full prod(dims) level grid.
    for ax in range(marg.ndim):
        zero = np.take(marg, [0], axis=ax)
        rest = np.take(marg, range(1, marg.shape[ax]), axis=ax).sum(
            axis=ax, keepdims=True
        )
        marg = np.concatenate([zero, rest], axis=ax)
    # Axes of marg follow ascending site index; permute to the
    # caller's measured-site order, then flatten (C order = leftmost
    # site is the most significant bit of the key).
    sorted_keep = sorted(keep)
    marg = marg.transpose([sorted_keep.index(s) for s in keep])
    m = len(keep)
    return {
        format(i, f"0{m}b"): float(p)
        for i, p in enumerate(marg.reshape(-1))
        if p != 0.0
    }


def apply_readout_error(
    distribution: Mapping[str, float],
    models: Sequence[ReadoutModel],
) -> dict[str, float]:
    """Push a joint bit distribution through per-site confusion matrices.

    *models* must align with the bit positions of the keys.
    """
    if not distribution:
        return {}
    n_bits = len(next(iter(distribution)))
    if len(models) != n_bits:
        raise ValidationError(
            f"{len(models)} readout models for {n_bits}-bit outcomes"
        )
    # Joint confusion operator: kron over sites, leftmost bit most
    # significant. One (2^n, 2^n) matvec replaces the per-string
    # enumeration — tiny for the bit counts seen here and O(4^n)
    # either way.
    joint = models[0].confusion_matrix()
    for model in models[1:]:
        joint = np.kron(joint, model.confusion_matrix())
    actual_vec = np.zeros(2**n_bits, dtype=np.float64)
    for actual, p in distribution.items():
        if len(actual) != n_bits:
            raise ValidationError("inconsistent bitstring lengths in distribution")
        actual_vec[int(actual, 2)] += p
    observed_vec = joint @ actual_vec
    return {
        format(i, f"0{n_bits}b"): float(w)
        for i, w in enumerate(observed_vec)
        if w > 0.0
    }


def sample_counts(
    distribution: Mapping[str, float],
    shots: int,
    rng: np.random.Generator,
) -> dict[str, int]:
    """Draw *shots* samples from a bitstring distribution (multinomial)."""
    if shots < 0:
        raise ValidationError(f"shots must be >= 0, got {shots}")
    if shots == 0 or not distribution:
        return {}
    keys = sorted(distribution)
    probs = np.array([distribution[k] for k in keys], dtype=np.float64)
    probs = np.clip(probs, 0.0, None)
    probs /= probs.sum()
    draws = rng.multinomial(shots, probs)
    return {k: int(c) for k, c in zip(keys, draws) if c > 0}


def leakage_populations(
    state: np.ndarray, dims: Sequence[int]
) -> dict[int, float]:
    """Per-site probability of occupying levels >= 2 (leakage)."""
    probs = state_probabilities(state, dims)
    out: dict[int, float] = {}
    for site, d in enumerate(dims):
        if d <= 2:
            out[site] = 0.0
            continue
        axes = tuple(a for a in range(len(dims)) if a != site)
        marginal = probs.sum(axis=axes)
        out[site] = float(marginal[2:].sum())
    return out
