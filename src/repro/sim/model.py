"""System models: how pulse channels couple into the Hamiltonian.

A :class:`SystemModel` describes one simulated device's physics in the
rotating frame:

* per-site dimensions (2 or 3 levels),
* a static drift Hamiltonian ``H0`` (anharmonicities, residual ZZ,
  always-on couplings),
* one :class:`ChannelCoupling` per controllable port, giving the
  operator the port's complex drive amplitude multiplies, the channel's
  reference (resonance) frequency used to compute detunings, and the
  Rabi rate calibrating amplitude-1.0 drive strength,
* optional :class:`DecoherenceSpec` per site (T1/T2).

Frequencies are stored in Hz and converted to angular units inside the
evolution code; times are in seconds (sample counts x ``dt``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.sim.operators import destroy_on


@dataclass(frozen=True)
class ChannelCoupling:
    """Coupling of one drive port into the system Hamiltonian.

    The instantaneous control Hamiltonian contributed by the channel is

    ``H_c(t) = 2*pi*rabi_rate/2 * ( a(t) * op + conj(a(t)) * op_dagger )``

    where ``a(t)`` is the frame-modulated complex drive amplitude
    (envelope x carrier detuning x frame phase). For a drive channel
    ``op`` is the site's lowering operator; for a coupler channel it is
    an exchange term between two sites.

    Attributes
    ----------
    operator:
        The (non-Hermitian half of the) coupling operator in the full
        Hilbert space.
    reference_frequency:
        The channel's resonance frequency in Hz. A frame running at
        frequency ``f`` drives this channel with detuning
        ``f - reference_frequency``.
    rabi_rate:
        Rotation rate in Hz produced by unit-amplitude resonant drive.
    hermitian:
        When True, ``operator`` is already Hermitian and the drive's
        *real part* scales it directly (flux/coupler channels).
    """

    operator: np.ndarray
    reference_frequency: float
    rabi_rate: float
    hermitian: bool = False

    def __post_init__(self) -> None:
        op = np.asarray(self.operator)
        if op.ndim != 2 or op.shape[0] != op.shape[1]:
            raise ValidationError(f"channel operator must be square, got {op.shape}")
        if self.rabi_rate <= 0:
            raise ValidationError(f"rabi_rate must be > 0, got {self.rabi_rate}")
        if self.reference_frequency < 0:
            raise ValidationError(
                f"reference_frequency must be >= 0, got {self.reference_frequency}"
            )

    def adjoint_operator(self) -> np.ndarray:
        """``operator.conj().T`` as a contiguous array, computed once.

        The Hamiltonian assembly touches this on every constant-drive
        run; caching it avoids re-materializing a dense adjoint per run.
        """
        cached = self.__dict__.get("_adjoint")
        if cached is None:
            cached = np.ascontiguousarray(np.conj(self.operator).T)
            object.__setattr__(self, "_adjoint", cached)
        return cached


@dataclass(frozen=True)
class DecoherenceSpec:
    """T1/T2 times for one site, in seconds. ``inf`` disables a channel."""

    t1: float = float("inf")
    t2: float = float("inf")

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise ValidationError("T1/T2 must be positive (use inf to disable)")
        # Physicality: T2 <= 2*T1.
        if self.t2 > 2 * self.t1 * (1 + 1e-12):
            raise ValidationError(f"unphysical T2 {self.t2} > 2*T1 {2 * self.t1}")

    @property
    def has_decoherence(self) -> bool:
        return np.isfinite(self.t1) or np.isfinite(self.t2)


@dataclass
class SystemModel:
    """Physics of one simulated device.

    Attributes
    ----------
    dims:
        Per-site Hilbert-space dimensions.
    drift:
        Static Hamiltonian in Hz units (it is multiplied by ``2*pi``
        internally), shape ``(D, D)`` with ``D = prod(dims)``.
    channels:
        Mapping of port name -> :class:`ChannelCoupling`.
    dt:
        Sample period in seconds.
    decoherence:
        Optional per-site T1/T2.
    site_frequencies:
        Qubit transition frequencies in Hz, used by devices to publish
        default frame frequencies and by calibration experiments.
    """

    dims: tuple[int, ...]
    drift: np.ndarray
    channels: dict[str, ChannelCoupling]
    dt: float = 1e-9
    decoherence: tuple[DecoherenceSpec, ...] = field(default=())
    site_frequencies: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.dims or any(d < 2 for d in self.dims):
            raise ValidationError(f"invalid dims {self.dims!r}")
        dim = self.dimension
        drift = np.asarray(self.drift, dtype=np.complex128)
        if drift.shape != (dim, dim):
            raise ValidationError(
                f"drift shape {drift.shape} does not match dims {self.dims} (D={dim})"
            )
        if not np.allclose(drift, drift.conj().T, atol=1e-10):
            raise ValidationError("drift Hamiltonian must be Hermitian")
        self.drift = drift
        for name, ch in self.channels.items():
            if ch.operator.shape != (dim, dim):
                raise ValidationError(
                    f"channel {name!r} operator shape {ch.operator.shape} "
                    f"does not match system dimension {dim}"
                )
        if self.decoherence and len(self.decoherence) != len(self.dims):
            raise ValidationError(
                "decoherence must list one spec per site when provided"
            )
        if self.site_frequencies and len(self.site_frequencies) != len(self.dims):
            raise ValidationError(
                "site_frequencies must list one frequency per site when provided"
            )
        if self.dt <= 0:
            raise ValidationError(f"dt must be > 0, got {self.dt}")

    @property
    def dimension(self) -> int:
        """Total Hilbert-space dimension."""
        return int(np.prod(self.dims))

    @property
    def n_sites(self) -> int:
        """Number of sites."""
        return len(self.dims)

    def channel(self, port_name: str) -> ChannelCoupling:
        """Coupling for *port_name*; raises for unknown ports."""
        try:
            return self.channels[port_name]
        except KeyError:
            raise ValidationError(
                f"port {port_name!r} has no channel coupling; known: "
                f"{sorted(self.channels)}"
            ) from None

    def has_decoherence(self) -> bool:
        """Whether any site has finite T1 or T2."""
        return any(spec.has_decoherence for spec in self.decoherence)


def transmon_model(
    n_qubits: int,
    *,
    qubit_frequencies: Sequence[float],
    anharmonicities: Sequence[float],
    rabi_rates: Sequence[float],
    couplings: Mapping[tuple[int, int], float] | None = None,
    coupler_rabi: float = 20e6,
    dt: float = 1e-9,
    levels: int = 3,
    decoherence: Sequence[DecoherenceSpec] | None = None,
) -> SystemModel:
    """Standard fixed-frequency transmon chip model, rotating frame.

    The drift keeps the anharmonicity term ``alpha/2 * n(n-1)`` per site
    (zero detuning in each qubit's own rotating frame); drive channels
    couple through the lowering operator; coupler channels implement a
    tunable exchange ``g(t) (a_i a_j† + a_i† a_j)`` between qubit pairs.
    """
    lengths = {len(qubit_frequencies), len(anharmonicities), len(rabi_rates)}
    if lengths != {n_qubits}:
        raise ValidationError("per-qubit parameter lists must match n_qubits")
    dims = tuple([levels] * n_qubits)
    dim = int(np.prod(dims))
    drift = np.zeros((dim, dim), dtype=np.complex128)
    for q in range(n_qubits):
        a = destroy_on(q, dims)
        n_op = a.conj().T @ a
        # alpha/2 * n (n - 1): zero on |0>,|1>, alpha on |2>.
        drift += 0.5 * anharmonicities[q] * (n_op @ n_op - n_op)
    channels: dict[str, ChannelCoupling] = {}
    for q in range(n_qubits):
        channels[f"q{q}-drive-port"] = ChannelCoupling(
            operator=destroy_on(q, dims),
            reference_frequency=float(qubit_frequencies[q]),
            rabi_rate=float(rabi_rates[q]),
        )
    for (i, j), g in (couplings or {}).items():
        lo, hi = sorted((i, j))
        ai, aj = destroy_on(lo, dims), destroy_on(hi, dims)
        exchange = ai @ aj.conj().T + ai.conj().T @ aj
        channels[f"q{lo}q{hi}-coupler-port"] = ChannelCoupling(
            operator=exchange,
            reference_frequency=0.0,
            rabi_rate=float(g) if g else coupler_rabi,
            hermitian=True,
        )
    return SystemModel(
        dims=dims,
        drift=drift,
        channels=channels,
        dt=dt,
        decoherence=tuple(decoherence) if decoherence else (),
        site_frequencies=tuple(float(f) for f in qubit_frequencies),
    )
