"""Piecewise-constant time evolution.

The control stack discretizes every pulse into samples of length ``dt``;
within one sample the Hamiltonian is constant, so the exact propagator
is a matrix exponential. For the small Hilbert spaces simulated here
(D <= ~32) the fastest exact route is the Hermitian eigendecomposition
``U = V exp(-2*pi*i*E*dt) V†``; identical consecutive samples (flat-top
pulses, delays) are collapsed into a single eigendecomposition with the
phase factor raised to the segment length — the vectorization/caching
strategy recommended by the HPC guides (avoid per-sample Python work
where the physics doesn't change).

Hamiltonians are given in **Hz units** (linear frequency); the ``2*pi``
is applied here, once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError

_TWO_PI = 2.0 * np.pi


def step_propagator(hamiltonian: np.ndarray, dt: float, steps: int = 1) -> np.ndarray:
    """Exact propagator for a constant Hamiltonian over ``steps * dt``.

    ``U = exp(-2*pi*i * H * dt * steps)`` with *H* Hermitian, in Hz.
    """
    h = np.asarray(hamiltonian, dtype=np.complex128)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ValidationError(f"Hamiltonian must be square, got shape {h.shape}")
    if dt <= 0:
        raise ValidationError(f"dt must be > 0, got {dt}")
    if steps < 1:
        raise ValidationError(f"steps must be >= 1, got {steps}")
    evals, evecs = np.linalg.eigh(h)
    phases = np.exp(-1j * _TWO_PI * evals * dt * steps)
    return (evecs * phases) @ evecs.conj().T


def free_propagator(
    drift_eig: tuple[np.ndarray, np.ndarray], dt: float, steps: int
) -> np.ndarray:
    """Propagator for the drift alone, from its cached eigendecomposition.

    *drift_eig* is the ``(evals, evecs)`` pair from ``np.linalg.eigh``.
    """
    evals, evecs = drift_eig
    phases = np.exp(-1j * _TWO_PI * evals * dt * steps)
    return (evecs * phases) @ evecs.conj().T


def evolve_unitary(unitary: np.ndarray, state: np.ndarray) -> np.ndarray:
    """Apply *unitary* to a ket (1-D) or density matrix (2-D)."""
    state = np.asarray(state, dtype=np.complex128)
    if state.ndim == 1:
        return unitary @ state
    if state.ndim == 2:
        return unitary @ state @ unitary.conj().T
    raise ValidationError(f"state must be 1-D or 2-D, got ndim={state.ndim}")


def propagator_sequence(
    drift: np.ndarray,
    control_ops: Sequence[np.ndarray],
    controls: np.ndarray,
    dt: float,
) -> list[np.ndarray]:
    """Per-slice propagators for GRAPE-style piecewise-constant control.

    ``H_k = drift + sum_j controls[k, j] * control_ops[j]`` (all in Hz).

    Parameters
    ----------
    controls:
        Real array of shape ``(n_steps, n_controls)``.

    Returns
    -------
    list of ``n_steps`` unitaries ``U_k``; the total propagator is
    ``U_{n-1} ... U_1 U_0``.
    """
    controls = np.asarray(controls, dtype=np.float64)
    if controls.ndim != 2 or controls.shape[1] != len(control_ops):
        raise ValidationError(
            f"controls shape {controls.shape} does not match "
            f"{len(control_ops)} control operators"
        )
    out = []
    for k in range(controls.shape[0]):
        h = drift.astype(np.complex128, copy=True)
        for j, op in enumerate(control_ops):
            if controls[k, j] != 0.0:
                h += controls[k, j] * op
        out.append(step_propagator(h, dt))
    return out


def evolve_piecewise(
    drift: np.ndarray,
    control_ops: Sequence[np.ndarray],
    controls: np.ndarray,
    dt: float,
    state: np.ndarray | None = None,
) -> np.ndarray:
    """Total propagator (or final state) of a piecewise-constant control.

    When *state* is given, the propagators are applied to it step by
    step (cheaper than accumulating the full unitary for large D).
    """
    steps = propagator_sequence(drift, control_ops, controls, dt)
    if state is not None:
        psi = np.asarray(state, dtype=np.complex128)
        for u in steps:
            psi = evolve_unitary(u, psi)
        return psi
    total = np.eye(drift.shape[0], dtype=np.complex128)
    for u in steps:
        total = u @ total
    return total


def segment_runs(samples: np.ndarray, decimals: int = 12) -> list[tuple[int, int]]:
    """Split a per-sample drive matrix into runs of identical rows.

    Parameters
    ----------
    samples:
        Array of shape ``(n_steps, n_channels)`` (complex). Rows equal
        after rounding to *decimals* are merged into one run.

    Returns
    -------
    List of ``(start, length)`` pairs covering ``[0, n_steps)``.
    """
    n = samples.shape[0]
    if n == 0:
        return []
    rounded = np.round(samples, decimals)
    changed = np.any(rounded[1:] != rounded[:-1], axis=tuple(range(1, rounded.ndim)))
    starts = np.concatenate(([0], np.nonzero(changed)[0] + 1))
    ends = np.concatenate((starts[1:], [n]))
    return [(int(s), int(e - s)) for s, e in zip(starts, ends)]
