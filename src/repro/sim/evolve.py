"""Piecewise-constant time evolution — the batched propagator engine.

The control stack discretizes every pulse into samples of length ``dt``;
within one sample the Hamiltonian is constant, so the exact propagator
is a matrix exponential. For the small Hilbert spaces simulated here
(D <= ~32) the fastest exact route is the Hermitian eigendecomposition
``U = V exp(-2*pi*i*E*dt) V†``.

Two complementary strategies keep the Python overhead off the hot path:

* **Batching** — per-slice Hamiltonians are stacked into one
  ``(n, D, D)`` array and exponentiated with a handful of *batched*
  BLAS/LAPACK calls instead of ``n`` Python-level round trips. Entry
  points: :func:`build_hamiltonians`, :func:`batched_propagators`, and
  :func:`propagator_sequence` (which composes the two). Two batched
  methods are implemented: a stacked ``eigh`` (exact, and the basis
  the Daleckii-Krein kernels need), and the default
  scaling-and-squaring Paterson-Stockmeyer Taylor evaluation, which is
  pure batched matmuls — on a single core the LAPACK per-matrix
  overhead of small-``D`` eigendecompositions makes the matmul route
  decisively faster, while agreeing with ``eigh`` to ~1e-13.
* **Caching** — :class:`PropagatorCache` memoizes propagators keyed on
  ``(backend/dtype, H fingerprint, dt, steps)``, so repeated slices
  (flat-top pulses, sweeps re-visiting the same amplitudes, drift
  segments) skip the decomposition entirely.
  :meth:`PropagatorCache.propagators` combines both: cache misses are
  deduplicated *within* the batch and diagonalized together.

Every device-array operation routes through the active
:class:`repro.xp.Active` backend (see :mod:`repro.xp.backend`): the
numpy/complex128 default is bitwise-identical to direct ``np.`` calls,
while ``use_backend(..., dtype="complex64")`` (or a GPU backend) runs
the same code at a different precision/placement. Host-side metadata
work (segment bookkeeping, fingerprints, scipy fallbacks) deliberately
stays on :data:`repro.xp.hostnp`; the
``benchmarks/check_backend_purity.py`` lint gate enforces the split.

Identical consecutive samples (flat-top pulses, delays) are still
collapsed into a single propagator with the phase factor raised to the
segment length (:func:`segment_runs`) — the vectorization/caching
strategy recommended by the HPC guides (avoid per-sample Python work
where the physics doesn't change).

Hamiltonians are given in **Hz units** (linear frequency); the ``2*pi``
is applied here, once.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from collections import OrderedDict
from typing import Sequence

from repro.errors import ValidationError
from repro.obs import profile as _profile
from repro.obs.metrics import REGISTRY, CacheStats
from repro.obs.tracing import span
from repro.xp import Active, active
from repro.xp import hostnp as hnp

_TWO_PI = 2.0 * math.pi


def step_propagator(hamiltonian, dt: float, steps: int = 1):
    """Exact propagator for a constant Hamiltonian over ``steps * dt``.

    ``U = exp(-2*pi*i * H * dt * steps)`` with *H* Hermitian, in Hz.
    """
    xp = active()
    h = xp.asarray(hamiltonian, dtype=xp.cdtype)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ValidationError(f"Hamiltonian must be square, got shape {h.shape}")
    if dt <= 0:
        raise ValidationError(f"dt must be > 0, got {dt}")
    if steps < 1:
        raise ValidationError(f"steps must be >= 1, got {steps}")
    evals, evecs = xp.eigh(h)
    phases = xp.exp(
        xp.asarray(-1j * _TWO_PI * xp.to_host(evals) * dt * steps, dtype=xp.cdtype)
    )
    return xp.matmul(evecs * phases, xp.adjoint(evecs))


def free_propagator(drift_eig: tuple, dt: float, steps: int):
    """Propagator for the drift alone, from its cached eigendecomposition.

    *drift_eig* is the (host) ``(evals, evecs)`` pair from ``eigh``.
    """
    xp = active()
    evals, evecs = drift_eig
    evecs = xp.asarray(evecs, dtype=xp.cdtype)
    phases = xp.exp(
        xp.asarray(-1j * _TWO_PI * evals * dt * steps, dtype=xp.cdtype)
    )
    return xp.matmul(evecs * phases, xp.adjoint(evecs))


def evolve_unitary(unitary, state):
    """Apply *unitary* to a ket (1-D) or density matrix (2-D)."""
    xp = active()
    state = xp.asarray(state, dtype=xp.cdtype)
    if state.ndim == 1:
        return xp.matmul(unitary, state)
    if state.ndim == 2:
        return xp.matmul(xp.matmul(unitary, state), xp.adjoint(unitary))
    raise ValidationError(f"state must be 1-D or 2-D, got ndim={state.ndim}")


# ---- batched engine --------------------------------------------------------------


def build_hamiltonians(drift, control_ops: Sequence, controls):
    """Stack the per-slice Hamiltonians ``H_k = drift + sum_j u_kj C_j``.

    Parameters
    ----------
    controls:
        Real array of shape ``(n_steps, n_controls)`` in Hz.

    Returns
    -------
    Complex array of shape ``(n_steps, D, D)`` on the active backend.
    """
    xp = active()
    controls = hnp.asarray(controls, dtype=hnp.float64)
    if controls.ndim != 2 or controls.shape[1] != len(control_ops):
        raise ValidationError(
            f"controls shape {controls.shape} does not match "
            f"{len(control_ops)} control operators"
        )
    drift = xp.asarray(drift, dtype=xp.cdtype)
    if not control_ops:
        return xp.ascontiguousarray(
            xp.broadcast_to(drift, (controls.shape[0],) + tuple(drift.shape))
        )
    # One GEMM builds every slice: (n, j) @ (j, D*D) -> (n, D*D).
    ops = xp.stack([xp.asarray(c, dtype=xp.cdtype) for c in control_ops])
    j, d = ops.shape[0], ops.shape[1]
    flat = xp.matmul(
        xp.asarray(controls, dtype=xp.cdtype), ops.reshape(j, d * d)
    )
    return flat.reshape(-1, d, d) + drift


# Paterson-Stockmeyer Taylor coefficients, degree 12 in chunks of 4:
# exp(x) ~= ((B3 x^4 + B2) x^4 + B1) x^4 + B0 with each B_j cubic in x.
# Degree 12 at the scaled radius 0.7 leaves a truncation error below
# 0.7^13 / 13! ~ 2e-12 per factor — two orders under the engine's
# 1e-10 equivalence contract even after squaring amplification.
_PS_COEFFS = hnp.array(
    [[1.0 / math.factorial(4 * j + k) for k in range(4)] for j in range(3)]
)
_PS_SCALE_THRESHOLD = 0.7
# "auto" hands stacks needing more squaring levels than this to eigh:
# 2^14 levels of rounding amplification keep the expm route under
# ~4e-12, comfortably inside the 1e-10 equivalence contract.
# (batched_expm — non-Hermitian superoperators with no eigh route —
# still uses this as its dense-fallback bound.)
_EXPM_MAX_LEVELS = 14

# Hermitian "auto" slices whose estimated squaring level reaches this
# route to eigh instead: past ~9 levels one exact per-matrix LAPACK
# decomposition is cheaper than (6 + s) batched squaring matmuls.
_EIGH_LEVELS = 9

# Process large stacks in cache-resident chunks: the working set of
# the expm evaluation is ~9 stack-sized arrays, and keeping it inside
# the CPU caches beats one monolithic DRAM-bound pass. The slice cap
# alone is not enough — at D=81 a 256-slice chunk is a ~240 MB working
# set — so the effective chunk also honors a byte budget per dimension.
_EXPM_CHUNK = 256
_EXPM_BUDGET_BYTES = 16 << 20


def _expm_chunk(dim: int) -> int:
    """Chunk length keeping ~9 complex stacks inside _EXPM_BUDGET_BYTES."""
    return max(8, min(_EXPM_CHUNK, _EXPM_BUDGET_BYTES // (9 * 16 * dim * dim)))

# Reusable per-thread work buffers for the expm evaluation. A fresh
# multi-megabyte allocation per call costs more in first-touch page
# faults than the matmuls that fill it; the hot paths (GRAPE line
# searches, schedule sweeps) call with identical shapes thousands of
# times, so the buffers are keyed by (backend/dtype, tag) and recycled
# per thread — a complex64 scope and the complex128 default never
# alias one another's storage.
_SCRATCH = threading.local()


def _scratch(
    xp: Active, tag: str, shape: tuple[int, ...], dtype=None
) -> tuple:
    """``(buffer, fresh)`` — a recycled work array for *tag*.

    One flat allocation per (backend/dtype, tag), grown to the largest
    capacity seen and viewed at the requested shape — varying chunk
    shapes reuse the same storage instead of accumulating per-shape
    buffers. ``fresh`` is True whenever the returned view does not
    hold the previous call's contents for this key (new allocation or
    shape change).
    """
    if dtype is None:
        dtype = xp.cdtype
    pool = getattr(_SCRATCH, "pool", None)
    if pool is None:
        pool = _SCRATCH.pool = {}
    size = math.prod(shape)
    key = (xp.spec, tag)
    entry = pool.get(key)
    if entry is not None:
        flat, last_shape = entry
        if flat.shape[0] >= size and flat.dtype == dtype:
            pool[key] = (flat, shape)
            return flat[:size].reshape(shape), last_shape != shape
    flat = xp.empty(size, dtype=dtype)
    pool[key] = (flat, shape)
    return flat.reshape(shape), True


def _expm_skew_batched(xp: Active, hs, coeff, shift, out) -> int:
    """``out = exp(coeff * hs - diag(shift))`` for a Hermitian stack.

    Returns the squaring level ``s`` used for this chunk (profiling
    reads it; the result in *out* is unaffected).

    Scaling-and-squaring with a degree-12 Paterson-Stockmeyer Taylor
    evaluation — pure batched matmuls, no per-matrix LAPACK calls. The
    scaling power is shared across the stack (``exp(theta) =
    exp(theta/2^s)^(2^s)`` holds for any ``s``, so the largest needed
    power is simply used for every matrix) and is bounded through the
    quartic power: ``rho(theta) <= ||theta^4||_inf ^ (1/4)``, which the
    evaluation computes anyway. The powers — including an identity row,
    so the B_j constant terms ride along — are combined into the
    Paterson-Stockmeyer blocks by a single GEMM whose coefficients
    absorb the scale factors, so scaling costs no extra array passes.
    All intermediates live in recycled per-thread scratch buffers; only
    *out* (the caller's array) is written.
    """
    n, dim = hs.shape[0], hs.shape[1]
    powers, fresh = _scratch(xp, "powers", (5, n, dim, dim))
    if fresh:
        powers[0] = xp.eye(dim)
    theta = powers[1]
    xp.multiply(
        hs, coeff if coeff.ndim == 0 else coeff[:, None, None], out=theta
    )
    idx = hnp.arange(dim)
    theta[:, idx, idx] -= shift[:, None]
    xp.matmul(theta, theta, out=powers[2])  # theta^2
    xp.matmul(powers[2], theta, out=powers[3])  # theta^3
    xp.matmul(powers[2], powers[2], out=powers[4])  # theta^4
    absbuf, _ = _scratch(xp, "abs", (n, dim, dim), xp.rdtype)
    xp.abs(powers[4], out=absbuf)
    rho = float(xp.to_host(xp.amax(xp.sum(absbuf, axis=2)))) ** 0.25
    s = max(0, int(hnp.ceil(hnp.log2(max(rho, 1e-300) / _PS_SCALE_THRESHOLD))))
    # Squaring doubles the truncation error per level, so the norm-based
    # scale alone degrades linearly in 2^s for long constant runs (large
    # steps). Keep adding levels until the accumulated bound
    # 2^s * r^13/13! clears ~1e-11 — each level wins back 2^12.
    while (2.0**s) * (rho / 2.0**s) ** 13 / math.factorial(13) > 1e-11:
        s += 1
    sc = 2.0**-s
    # Blocks B0..B2 in one GEMM; B3 = I/12! contributes F12 * x^4 to B2.
    coeffs = hnp.zeros((3, 5), dtype=hnp.complex128)
    coeffs[:, :4] = _PS_COEFFS * sc ** hnp.arange(4)
    coeffs[2, 4] = sc**4 / math.factorial(12)
    blocks, _ = _scratch(xp, "blocks", (3, n, dim, dim))
    xp.matmul(
        xp.asarray(coeffs, dtype=xp.cdtype),
        powers.reshape(5, -1),
        out=blocks.reshape(3, -1),
    )
    b0, b1, b2 = blocks
    x4 = powers[4]
    x4 *= sc**4
    t1, _ = _scratch(xp, "horner", (n, dim, dim))
    xp.matmul(b2, x4, out=t1)
    t1 += b1
    u = xp.matmul(t1, x4, out=b2)
    u += b0
    if s == 0:
        out[...] = u
        return 0
    scratch = t1
    for i in range(s):
        out_buf = out if i == s - 1 else scratch
        xp.matmul(u, u, out=out_buf)
        u, scratch = out_buf, u
    return s


def batched_propagators(hamiltonians, dt: float, steps=1, *, method: str = "auto"):
    """Exact propagators for a stack of constant Hamiltonians.

    ``U_k = exp(-2*pi*i * H_k * dt * steps_k)`` for the whole
    ``(n, D, D)`` stack in a handful of batched array operations on
    the active backend/dtype (:func:`repro.xp.use_backend`).

    Parameters
    ----------
    hamiltonians:
        Hermitian stack of shape ``(n, D, D)`` in Hz.
    steps:
        Scalar or length-``n`` integer array of segment lengths.
    method:
        ``"expm"`` — scaling-and-squaring Paterson-Stockmeyer Taylor
        after a per-matrix trace shift; pure batched matmuls, the
        fastest route for the small dimensions simulated here.
        ``"eigh"`` — one stacked Hermitian eigendecomposition then
        broadcast phase application ``V exp(-2*pi*i E dt s) V†``;
        exact to machine precision but pays LAPACK's per-matrix
        overhead.
        ``"auto"`` (default) selects ``"expm"`` for typical slice
        durations (where the two agree to ~1e-13) and falls back to
        ``"eigh"`` when any slice's phase radius would need so many
        squaring levels that amplified rounding could breach the
        engine's 1e-10 equivalence contract (very long constant runs).

    Returns
    -------
    Complex array of shape ``(n, D, D)``.
    """
    xp = active()
    hs = xp.asarray(hamiltonians, dtype=xp.cdtype)
    if hs.ndim != 3 or hs.shape[1] != hs.shape[2]:
        raise ValidationError(
            f"Hamiltonian stack must have shape (n, D, D), got {hs.shape}"
        )
    if dt <= 0:
        raise ValidationError(f"dt must be > 0, got {dt}")
    steps_arr = hnp.asarray(steps)
    if steps_arr.ndim not in (0, 1) or (
        steps_arr.ndim == 1 and steps_arr.shape[0] != hs.shape[0]
    ):
        raise ValidationError(
            f"steps must be a scalar or length-{hs.shape[0]} array, "
            f"got shape {steps_arr.shape}"
        )
    if hnp.any(steps_arr < 1):
        raise ValidationError("steps must be >= 1")
    if method not in ("auto", "expm", "eigh"):
        raise ValidationError(
            f"method must be 'auto', 'expm' or 'eigh', got {method!r}"
        )
    n, dim = hs.shape[0], hs.shape[1]
    if n == 0:
        return xp.copy(hs)
    durations = dt * steps_arr.astype(hnp.float64)

    # Cheap per-slice radius bound: |coeff| * inf-norm of the
    # trace-shifted Hamiltonian. Drives both the auto method choice
    # and the level-grouped chunking of the expm route below.
    mu_est = xp.to_host(xp.real(xp.trace(hs, axis1=1, axis2=2))) / dim
    row_sums = xp.to_host(xp.amax(xp.sum(xp.abs(hs), axis=2), axis=1))
    radius = _TWO_PI * durations * (row_sums + hnp.abs(mu_est))
    est_levels = hnp.maximum(
        0,
        hnp.ceil(
            hnp.log2(hnp.maximum(radius, 1e-300) / _PS_SCALE_THRESHOLD)
        ).astype(int),
    )

    if method == "auto":
        # Per-slice cost model: the expm route pays ~(6 + s) batched
        # matmuls per slice, the eigh route a fixed ~9-matmul-equivalent
        # LAPACK decomposition — so long constant runs (Ramsey delays,
        # flat-top Rabi pulses; s >= _EIGH_LEVELS) are cheaper AND exact
        # through eigh, while the short pulse samples that dominate
        # waveform slices stay on the batched-matmul expm path. Mixed
        # stacks split per slice and recombine in input order. Each
        # squaring level also amplifies rounding by ~2x, so routing
        # high-level slices to eigh keeps the expm route comfortably
        # inside the engine's 1e-10 equivalence contract.
        eigh_mask = est_levels >= _EIGH_LEVELS
        if bool(eigh_mask.all()):
            method = "eigh"
        elif not bool(eigh_mask.any()):
            method = "expm"
        else:
            split = xp.empty_like(hs)
            for mask, route in ((eigh_mask, "eigh"), (~eigh_mask, "expm")):
                idx = hnp.nonzero(mask)[0]
                sub_steps = (
                    steps_arr if steps_arr.ndim == 0 else steps_arr[idx]
                )
                split[idx] = batched_propagators(
                    hs[idx], dt, sub_steps, method=route
                )
            return split

    if method == "eigh":
        t0 = time.perf_counter()
        evals, evecs = xp.eigh(hs)  # (n, D), (n, D, D)
        if durations.ndim == 1:
            durations = durations[:, None]
        phases = xp.exp(
            xp.asarray(
                -1j * _TWO_PI * xp.to_host(evals) * durations, dtype=xp.cdtype
            )
        )
        us = xp.matmul(evecs * phases[:, None, :], xp.adjoint(evecs))
        _profile.kernel(
            "propagators",
            n=n,
            dim=dim,
            seconds=time.perf_counter() - t0,
            method="eigh",
            backend=xp.spec,
        )
        return us

    # expm route: theta_k = -2*pi*i * dt * steps_k * (H_k - mu_k I),
    # with the trace shift mu_k = tr(H_k)/D peeled off as a scalar
    # phase — it halves the spectral radius for the lopsided spectra
    # (transmon anharmonicity ladders) seen here, saving squarings.
    t0 = time.perf_counter()
    coeff = xp.asarray(
        hnp.asarray(-1j * _TWO_PI * durations), dtype=xp.cdtype
    )  # scalar or (n,)
    mu = xp.real(xp.trace(hs, axis1=1, axis2=2)) / dim
    shift = coeff * mu
    out = xp.empty_like(hs)
    levels = 0
    # The squaring level is shared across a chunk (the largest slice's
    # s applies to every matrix in it), so a heterogeneous stack — many
    # short pulse samples mixed with a few long constant runs, the
    # shape every batched Ramsey/delay sweep produces — would pay the
    # worst slice's 2^s squaring matmuls on the *whole* chunk. Group
    # slices by their estimated level first: each group squares only as
    # much as its own members need, and results scatter back in input
    # order. A homogeneous stack degenerates to the plain chunked loop.
    chunk = _expm_chunk(dim)
    for level in hnp.unique(est_levels):
        sel = hnp.nonzero(est_levels == level)[0]
        for a in range(0, sel.size, chunk):
            idx = sel[a : a + chunk]
            contiguous = idx.size == n  # single homogeneous group
            hs_chunk = hs if contiguous else hs[idx]
            shift_chunk = shift if contiguous else shift[idx]
            out_chunk = out if contiguous else xp.empty_like(hs_chunk)
            c = coeff if coeff.ndim == 0 else coeff[idx]
            s = _expm_skew_batched(xp, hs_chunk, c, shift_chunk, out_chunk)
            if not contiguous:
                out[idx] = out_chunk
            if s > levels:
                levels = s
    out *= xp.exp(shift)[:, None, None]
    _profile.kernel(
        "propagators",
        n=n,
        dim=dim,
        seconds=time.perf_counter() - t0,
        levels=levels,
        method="expm",
        backend=xp.spec,
    )
    return out


def batched_expm(matrices, *, scale=1.0, method: str = "auto"):
    """``exp(scale_k * A_k)`` for a stack of *general* square matrices.

    The open-system engine exponentiates Lindblad superoperators —
    non-Hermitian, so the ``eigh`` route of
    :func:`batched_propagators` does not apply — through the same
    scaling-and-squaring Paterson-Stockmeyer evaluation: pure batched
    matmuls after a per-matrix trace shift. Unlike the Hermitian case
    there is no spectral fallback, so ``method="dense"`` hands the
    stack to ``scipy.linalg.expm`` (Pade) one matrix at a time — the
    accurate route when a slice's scaled norm would need excessive
    squaring. ``"auto"`` picks ``"expm"`` below the squaring-level
    bound and ``"dense"`` above it.

    Parameters
    ----------
    matrices:
        Stack of shape ``(n, m, m)`` — complex, no symmetry assumed.
    scale:
        Scalar or length-``n`` multiplier folded into the exponent
        (e.g. ``dt * steps`` in seconds for superoperator stacks whose
        rates are per-second).
    """
    xp = active()
    a = xp.asarray(matrices, dtype=xp.cdtype)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValidationError(
            f"matrix stack must have shape (n, m, m), got {a.shape}"
        )
    if method not in ("auto", "expm", "dense"):
        raise ValidationError(
            f"method must be 'auto', 'expm' or 'dense', got {method!r}"
        )
    n, m = a.shape[0], a.shape[1]
    if n == 0:
        return xp.copy(a)
    scale_arr = hnp.asarray(scale)
    if scale_arr.ndim not in (0, 1) or (
        scale_arr.ndim == 1 and scale_arr.shape[0] != n
    ):
        raise ValidationError(
            f"scale must be a scalar or length-{n} array, got shape "
            f"{scale_arr.shape}"
        )
    coeff = xp.asarray(scale_arr, dtype=xp.cdtype)
    mu = xp.trace(a, axis1=1, axis2=2) / m
    if method == "auto":
        row_sums = xp.to_host(xp.amax(xp.sum(xp.abs(a), axis=2), axis=1))
        radius = hnp.abs(xp.to_host(coeff)) * (
            row_sums + hnp.abs(xp.to_host(mu))
        )
        method = (
            "dense"
            if radius.max() > _PS_SCALE_THRESHOLD * 2.0**_EXPM_MAX_LEVELS
            else "expm"
        )
    if method == "dense":
        t0 = time.perf_counter()
        dense = xp.asarray(
            _dense_expm(xp.to_host(a), xp.to_host(coeff)), dtype=xp.cdtype
        )
        _profile.kernel(
            "expm",
            n=n,
            dim=m,
            seconds=time.perf_counter() - t0,
            method="dense",
            backend=xp.spec,
        )
        return dense
    t0 = time.perf_counter()
    shift = xp.broadcast_to(coeff * mu, (n,))  # mu is (n,), so shift is too
    out = xp.empty_like(a)
    levels = 0
    chunk = _expm_chunk(m)
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        c = coeff if coeff.ndim == 0 else coeff[lo:hi]
        s = _expm_skew_batched(xp, a[lo:hi], c, shift[lo:hi], out[lo:hi])
        if s > levels:
            levels = s
    out *= xp.exp(shift)[:, None, None]
    _profile.kernel(
        "expm",
        n=n,
        dim=m,
        seconds=time.perf_counter() - t0,
        levels=levels,
        method="expm",
        backend=xp.spec,
    )
    return out


def _coerce_expm_result(r, stack_dtype):
    """Normalize one per-matrix dense-expm result to the stack dtype.

    ``scipy.linalg.expm`` may return a wider (or, in principle,
    different-kind) dtype than the stack it came from; stacking those
    raw would silently promote the whole result. Widening results are
    folded back down explicitly — failing loud when the downcast
    overflows — and kind-changing results (complex -> real would drop
    the imaginary part) are rejected outright.
    """
    r = hnp.asarray(r)
    if r.dtype == stack_dtype:
        return r
    if not hnp.can_cast(r.dtype, stack_dtype, casting="same_kind"):
        raise ValidationError(
            f"dense expm returned dtype {r.dtype}, which cannot be "
            f"coerced to the stack dtype {stack_dtype} without silently "
            "dropping components"
        )
    with hnp.errstate(over="ignore"):  # overflow is checked explicitly below
        coerced = r.astype(stack_dtype)
    if not bool(hnp.all(hnp.isfinite(coerced))) and bool(
        hnp.all(hnp.isfinite(r))
    ):
        raise ValidationError(
            f"dense expm result overflowed while downcasting from "
            f"{r.dtype} to the stack dtype {stack_dtype}"
        )
    return coerced


def _dense_expm(a, coeff):
    """Per-matrix dense exponential fallback (scipy Pade when present).

    Host-resident by design: scipy has no device-array path, so the
    caller moves the stack to the host first and re-wraps the result.
    """
    scaled = a * hnp.broadcast_to(coeff, (a.shape[0],))[:, None, None]
    try:
        from scipy.linalg import expm as _scipy_expm
    except ImportError:  # scipy is optional at runtime: diagonalize instead
        out = hnp.empty_like(scaled)
        for k in range(scaled.shape[0]):
            evals, vecs = hnp.linalg.eig(scaled[k])
            # Non-normal matrices can be near-defective; eig+inv then
            # returns garbage silently. Fail loud instead: scipy's Pade
            # route is the supported path for these inputs.
            cond = hnp.linalg.cond(vecs)
            if not hnp.isfinite(cond) or cond > 1e12:
                raise ValidationError(
                    "dense expm fallback: eigenvector matrix is "
                    f"ill-conditioned (cond ~ {cond:.1e}); install scipy "
                    "for the Pade route"
                )
            out[k] = _coerce_expm_result(
                (vecs * hnp.exp(evals)) @ hnp.linalg.inv(vecs), scaled.dtype
            )
        return out
    return hnp.stack(
        [
            _coerce_expm_result(_scipy_expm(scaled[k]), scaled.dtype)
            for k in range(scaled.shape[0])
        ]
    )


def batched_expm_and_frechet(hamiltonians, dt: float):
    """Batched eigendecomposition plus the Daleckii-Krein kernel.

    For every Hamiltonian in the ``(n, D, D)`` stack, returns
    ``(U, V, gamma)`` stacks where ``U_k = exp(-2*pi*i*H_k*dt)``,
    ``V_k`` is the eigenvector matrix and ``gamma_k[a, b]`` is the
    divided-difference kernel such that the derivative of ``U_k`` in
    direction ``E`` is ``V_k (gamma_k ∘ (V_k† E V_k)) V_k†``. The
    kernel is elementwise on the stacked eigenbasis, so the whole
    construction is a handful of broadcast operations.
    """
    xp = active()
    hs = xp.asarray(hamiltonians, dtype=xp.cdtype)
    if hs.ndim != 3 or hs.shape[1] != hs.shape[2]:
        raise ValidationError(
            f"Hamiltonian stack must have shape (n, D, D), got {hs.shape}"
        )
    evals, vecs = xp.eigh(hs)  # (n, D), (n, D, D)
    f = xp.exp(
        xp.asarray(-1j * _TWO_PI * xp.to_host(evals) * dt, dtype=xp.cdtype)
    )  # (n, D)
    us = xp.matmul(vecs * f[:, None, :], xp.adjoint(vecs))
    lam = evals[:, :, None] - evals[:, None, :]  # (n, D, D)
    df = f[:, :, None] - f[:, None, :]
    with xp.errstate(divide="ignore", invalid="ignore"):
        gamma = xp.where(xp.abs(lam) > 1e-12, df / lam, 0.0)
    # Fill the (near-)degenerate entries with the derivative f'(lambda).
    diag = -1j * _TWO_PI * dt * f
    near = xp.abs(lam) <= 1e-12
    gamma = xp.where(
        near, 0.5 * (diag[:, :, None] + diag[:, None, :]), gamma
    )
    return us, vecs, gamma


def hamiltonian_fingerprint(hamiltonian) -> bytes:
    """Content digest of a Hamiltonian, for propagator-cache keys.

    The digest covers the raw bytes, the shape, **and the dtype**: a
    complex64 and a complex128 Hamiltonian never alias to one cache
    entry, even where truncated byte prefixes would collide.
    """
    h = hnp.ascontiguousarray(active().to_host(hamiltonian))
    digest = hashlib.blake2b(h.tobytes(), digest_size=16)
    digest.update(str(h.shape).encode())
    digest.update(str(h.dtype).encode())
    return digest.digest()


class PropagatorCache:
    """Bounded LRU cache of slice propagators.

    Keys are ``(backend/dtype, H fingerprint, dt, steps)``; values are
    the exact propagators ``exp(-2*pi*i*H*dt*steps)`` as arrays of the
    backend that computed them. Repeated slices — flat-top pulses,
    parameter sweeps re-visiting the same amplitudes, drift segments
    between pulses — skip the eigendecomposition entirely. Entries
    namespace on the active :attr:`repro.xp.Active.spec`, so a
    complex64 scope never serves (or poisons) complex128 results.
    Thread-safe; one instance can be shared across executors.

    :meth:`propagator` returns the stored arrays themselves, frozen
    read-only (``.copy()`` before mutating); :meth:`propagators`
    returns a freshly assembled, writable stack.

    Hit/miss/eviction accounting lives in a
    :class:`~repro.obs.CacheStats` whose every mutation happens under
    the cache lock (concurrent ``compute=`` overrides used to race the
    bare integer attributes); ``stats()`` returns the same dict shape
    as :class:`~repro.serving.cache.CompileCache` and
    :class:`~repro.compiler.jit.JITCompiler`, and each instance
    self-registers on the global obs registry.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats(
            self.__len__,
            lambda: self.max_entries,
            hits=0,
            misses=0,
            evictions=0,
        )
        REGISTRY.register_cache(
            REGISTRY.autoname("propagator"), self, kind="propagator"
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hits(self) -> int:
        """Total slice lookups served from the cache."""
        with self._lock:
            return self.stats["hits"]

    @property
    def misses(self) -> int:
        """Total slice lookups that had to be computed."""
        with self._lock:
            return self.stats["misses"]

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.stats["hits"] + self.stats["misses"]
            return self.stats["hits"] / total if total else 0.0

    def _key(
        self,
        fingerprint: bytes,
        dt: float,
        steps: int,
        tag: str = "",
        spec: str | None = None,
    ) -> tuple:
        # Non-integral steps would compute one propagator but file it
        # under the truncated key, poisoning later integer lookups.
        if steps != int(steps):
            raise ValidationError(f"steps must be integral, got {steps}")
        # The tag namespaces entries produced by different compute
        # functions (e.g. Lindblad superoperator propagators keyed on
        # the same Hamiltonian fingerprints) so they cannot collide
        # with plain unitary propagators in a shared cache; the
        # backend/dtype spec namespaces entries per working precision
        # and device placement.
        if spec is None:
            spec = active().spec
        return (tag, spec, fingerprint, float(dt), int(steps))

    def propagator(
        self,
        hamiltonian,
        dt: float,
        steps: int = 1,
        *,
        fingerprint: bytes | None = None,
    ):
        """Cached equivalent of :func:`step_propagator`."""
        xp = active()
        h = xp.asarray(hamiltonian, dtype=xp.cdtype)
        if fingerprint is None:
            fingerprint = hamiltonian_fingerprint(h)
        key = self._key(fingerprint, dt, steps, spec=xp.spec)
        with self._lock:
            u = self._entries.get(key)
            if u is not None:
                self._entries.move_to_end(key)
                self.stats["hits"] += 1
                return u
            self.stats["misses"] += 1
        u = step_propagator(h, dt, steps)
        self._store(key, xp.freeze(u))
        return u

    def propagators(
        self,
        hamiltonians,
        dt: float,
        steps=1,
        *,
        compute=None,
        tag: str = "",
    ):
        """Cached equivalent of :func:`batched_propagators`.

        Looks every slice up by ``(backend/dtype, fingerprint, dt,
        steps)``; the misses are deduplicated within the batch,
        diagonalized with a single batched call, and inserted.

        *compute* overrides the batched computation for the misses —
        any ``(hamiltonians, dt, steps) -> stack`` callable; the
        open-system engine passes its superoperator exponentiation
        here so Lindblad propagators get the same fingerprint-keyed
        dedup/memoization as unitaries. A non-empty *tag* namespaces
        those entries (the key stays the *Hamiltonian* fingerprint,
        which is cheaper to hash than the ``D^2 x D^2`` superoperator).
        """
        xp = active()
        hs = xp.asarray(hamiltonians, dtype=xp.cdtype)
        if hs.ndim != 3 or hs.shape[1] != hs.shape[2]:
            raise ValidationError(
                f"Hamiltonian stack must have shape (n, D, D), got {hs.shape}"
            )
        n = hs.shape[0]
        if n == 0:
            return xp.copy(hs)
        steps_in = hnp.asarray(steps)
        if hnp.any(steps_in != steps_in.astype(hnp.int64)):
            raise ValidationError(f"steps must be integral, got {steps}")
        steps_arr = hnp.broadcast_to(steps_in.astype(hnp.int64), (n,))
        # Consecutive identical (H, steps) slices — flat-top pulses,
        # segment ansatzes — collapse to one representative per run in
        # a single vectorized comparison pass; non-adjacent repeats
        # collapse through the shared cache key. Only representatives
        # are hashed, and the results scatter back with one gather.
        changed = xp.to_host(xp.any(hs[1:] != hs[:-1], axis=(1, 2))) | (
            steps_arr[1:] != steps_arr[:-1]
        )
        inverse = hnp.concatenate(([0], hnp.cumsum(changed)))
        reps = hnp.concatenate(([0], hnp.nonzero(changed)[0] + 1))
        run_sizes = hnp.diff(hnp.concatenate((reps, [n])))
        keys = [
            self._key(
                hamiltonian_fingerprint(hs[k]),
                dt,
                steps_arr[k],
                tag,
                spec=xp.spec,
            )
            for k in reps
        ]
        run_props: list = [None] * len(reps)
        miss_runs: OrderedDict[tuple, list[int]] = OrderedDict()
        hit_count = miss_count = 0
        with self._lock:
            for i, key in enumerate(keys):
                u = self._entries.get(key)
                if u is not None:
                    self._entries.move_to_end(key)
                    hit_count += int(run_sizes[i])
                    run_props[i] = u
                else:
                    miss_count += int(run_sizes[i])
                    miss_runs.setdefault(key, []).append(i)
            self.stats["hits"] += hit_count
            self.stats["misses"] += miss_count
        with span(
            "cache",
            cache="propagator",
            slices=n,
            unique=len(reps),
            hits=hit_count,
            misses=miss_count,
        ):
            _profile.cache_batch(
                n=n, unique=len(reps), hits=hit_count, misses=miss_count
            )
            if miss_runs:
                sel = reps[[runs[0] for runs in miss_runs.values()]]
                fresh = (compute or batched_propagators)(
                    hs[sel], dt, steps_arr[sel]
                )
                for u, runs in zip(fresh, miss_runs.values()):
                    # Copy before storing: a row view would pin the whole
                    # (n_miss, D, D) batch in memory for the entry's LRU
                    # lifetime.
                    u = xp.freeze(xp.copy(u))
                    for i in runs:
                        run_props[i] = u
                    self._store(keys[runs[0]], u)
            return xp.stack(run_props)[inverse]

    def _store(self, key: tuple, u) -> None:
        # Lookups hand out the stored array itself (no copy on the hot
        # path); the caller freezes it first (where the backend supports
        # it) so an accidental in-place edit becomes an immediate error
        # instead of silent cache poisoning.
        with self._lock:
            self._entries[key] = u
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats["evictions"] += 1


def propagator_sequence(
    drift,
    control_ops: Sequence,
    controls,
    dt: float,
    *,
    cache: PropagatorCache | None = None,
) -> list:
    """Per-slice propagators for GRAPE-style piecewise-constant control.

    ``H_k = drift + sum_j controls[k, j] * control_ops[j]`` (all in Hz).
    The slice Hamiltonians are stacked and diagonalized in one batched
    call (:func:`batched_propagators`); with *cache* given, slices seen
    before skip the decomposition.

    Parameters
    ----------
    controls:
        Real array of shape ``(n_steps, n_controls)``.

    Returns
    -------
    list of ``n_steps`` unitaries ``U_k``; the total propagator is
    ``U_{n-1} ... U_1 U_0``.
    """
    hs = build_hamiltonians(drift, control_ops, controls)
    if dt <= 0:
        raise ValidationError(f"dt must be > 0, got {dt}")
    if cache is not None:
        return list(cache.propagators(hs, dt))
    return list(batched_propagators(hs, dt))


def evolve_piecewise(
    drift,
    control_ops: Sequence,
    controls,
    dt: float,
    state=None,
    *,
    cache: PropagatorCache | None = None,
):
    """Total propagator (or final state) of a piecewise-constant control.

    When *state* is given, the propagators are applied to it step by
    step (cheaper than accumulating the full unitary for large D).
    """
    xp = active()
    steps = propagator_sequence(drift, control_ops, controls, dt, cache=cache)
    if state is not None:
        psi = xp.asarray(state, dtype=xp.cdtype)
        for u in steps:
            psi = evolve_unitary(u, psi)
        return psi
    total = xp.eye(hnp.asarray(drift).shape[0], dtype=xp.cdtype)
    for u in steps:
        total = xp.matmul(u, total)
    return total


def segment_runs(samples, decimals: int = 12) -> list[tuple[int, int]]:
    """Split a per-sample drive matrix into runs of identical rows.

    Host-resident metadata pass (the drive matrices are synthesized on
    the host; only run representatives reach the device backend).

    Parameters
    ----------
    samples:
        Array of shape ``(n_steps, n_channels)`` (complex). Rows equal
        after rounding to *decimals* are merged into one run.

    Returns
    -------
    List of ``(start, length)`` pairs covering ``[0, n_steps)``.
    """
    n = samples.shape[0]
    if n == 0:
        return []
    rounded = hnp.round(samples, decimals)
    changed = hnp.any(
        rounded[1:] != rounded[:-1], axis=tuple(range(1, rounded.ndim))
    )
    starts = hnp.concatenate(([0], hnp.nonzero(changed)[0] + 1))
    ends = hnp.concatenate((starts[1:], [n]))
    return [(int(s), int(e - s)) for s, e in zip(starts, ends)]
