"""Piecewise-constant time evolution — the batched propagator engine.

The control stack discretizes every pulse into samples of length ``dt``;
within one sample the Hamiltonian is constant, so the exact propagator
is a matrix exponential. For the small Hilbert spaces simulated here
(D <= ~32) the fastest exact route is the Hermitian eigendecomposition
``U = V exp(-2*pi*i*E*dt) V†``.

Two complementary strategies keep the Python overhead off the hot path:

* **Batching** — per-slice Hamiltonians are stacked into one
  ``(n, D, D)`` array and exponentiated with a handful of *batched*
  BLAS/LAPACK calls instead of ``n`` Python-level round trips. Entry
  points: :func:`build_hamiltonians`, :func:`batched_propagators`, and
  :func:`propagator_sequence` (which composes the two). Two batched
  methods are implemented: a stacked ``np.linalg.eigh`` (exact, and
  the basis the Daleckii-Krein kernels need), and the default
  scaling-and-squaring Paterson-Stockmeyer Taylor evaluation, which is
  pure batched matmuls — on a single core the LAPACK per-matrix
  overhead of small-``D`` eigendecompositions makes the matmul route
  decisively faster, while agreeing with ``eigh`` to ~1e-13.
* **Caching** — :class:`PropagatorCache` memoizes propagators keyed on
  ``(H fingerprint, dt, steps)``, so repeated slices (flat-top pulses,
  sweeps re-visiting the same amplitudes, drift segments) skip the
  decomposition entirely. :meth:`PropagatorCache.propagators` combines
  both: cache misses are deduplicated *within* the batch and
  diagonalized together.

Identical consecutive samples (flat-top pulses, delays) are still
collapsed into a single propagator with the phase factor raised to the
segment length (:func:`segment_runs`) — the vectorization/caching
strategy recommended by the HPC guides (avoid per-sample Python work
where the physics doesn't change).

Hamiltonians are given in **Hz units** (linear frequency); the ``2*pi``
is applied here, once.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.obs import profile as _profile
from repro.obs.metrics import REGISTRY, CacheStats
from repro.obs.tracing import span

_TWO_PI = 2.0 * np.pi


def step_propagator(hamiltonian: np.ndarray, dt: float, steps: int = 1) -> np.ndarray:
    """Exact propagator for a constant Hamiltonian over ``steps * dt``.

    ``U = exp(-2*pi*i * H * dt * steps)`` with *H* Hermitian, in Hz.
    """
    h = np.asarray(hamiltonian, dtype=np.complex128)
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ValidationError(f"Hamiltonian must be square, got shape {h.shape}")
    if dt <= 0:
        raise ValidationError(f"dt must be > 0, got {dt}")
    if steps < 1:
        raise ValidationError(f"steps must be >= 1, got {steps}")
    evals, evecs = np.linalg.eigh(h)
    phases = np.exp(-1j * _TWO_PI * evals * dt * steps)
    return (evecs * phases) @ evecs.conj().T


def free_propagator(
    drift_eig: tuple[np.ndarray, np.ndarray], dt: float, steps: int
) -> np.ndarray:
    """Propagator for the drift alone, from its cached eigendecomposition.

    *drift_eig* is the ``(evals, evecs)`` pair from ``np.linalg.eigh``.
    """
    evals, evecs = drift_eig
    phases = np.exp(-1j * _TWO_PI * evals * dt * steps)
    return (evecs * phases) @ evecs.conj().T


def evolve_unitary(unitary: np.ndarray, state: np.ndarray) -> np.ndarray:
    """Apply *unitary* to a ket (1-D) or density matrix (2-D)."""
    state = np.asarray(state, dtype=np.complex128)
    if state.ndim == 1:
        return unitary @ state
    if state.ndim == 2:
        return unitary @ state @ unitary.conj().T
    raise ValidationError(f"state must be 1-D or 2-D, got ndim={state.ndim}")


# ---- batched engine --------------------------------------------------------------


def build_hamiltonians(
    drift: np.ndarray,
    control_ops: Sequence[np.ndarray],
    controls: np.ndarray,
) -> np.ndarray:
    """Stack the per-slice Hamiltonians ``H_k = drift + sum_j u_kj C_j``.

    Parameters
    ----------
    controls:
        Real array of shape ``(n_steps, n_controls)`` in Hz.

    Returns
    -------
    Complex array of shape ``(n_steps, D, D)``.
    """
    controls = np.asarray(controls, dtype=np.float64)
    if controls.ndim != 2 or controls.shape[1] != len(control_ops):
        raise ValidationError(
            f"controls shape {controls.shape} does not match "
            f"{len(control_ops)} control operators"
        )
    drift = np.asarray(drift, dtype=np.complex128)
    if not control_ops:
        return np.broadcast_to(drift, (controls.shape[0],) + drift.shape).copy()
    # One GEMM builds every slice: (n, j) @ (j, D*D) -> (n, D*D).
    ops = np.stack([np.asarray(c, dtype=np.complex128) for c in control_ops])
    j, d = ops.shape[0], ops.shape[1]
    flat = controls.astype(np.complex128) @ ops.reshape(j, d * d)
    return flat.reshape(-1, d, d) + drift


# Paterson-Stockmeyer Taylor coefficients, degree 12 in chunks of 4:
# exp(x) ~= ((B3 x^4 + B2) x^4 + B1) x^4 + B0 with each B_j cubic in x.
# Degree 12 at the scaled radius 0.7 leaves a truncation error below
# 0.7^13 / 13! ~ 2e-12 per factor — two orders under the engine's
# 1e-10 equivalence contract even after squaring amplification.
_PS_COEFFS = np.array(
    [[1.0 / math.factorial(4 * j + k) for k in range(4)] for j in range(3)]
)
_PS_SCALE_THRESHOLD = 0.7
# "auto" hands stacks needing more squaring levels than this to eigh:
# 2^14 levels of rounding amplification keep the expm route under
# ~4e-12, comfortably inside the 1e-10 equivalence contract.
_EXPM_MAX_LEVELS = 14

# Process large stacks in cache-resident chunks: the working set of
# the expm evaluation is ~9 stack-sized arrays, and keeping it inside
# the CPU caches beats one monolithic DRAM-bound pass.
_EXPM_CHUNK = 256

# Reusable per-thread work buffers for the expm evaluation. A fresh
# multi-megabyte allocation per call costs more in first-touch page
# faults than the matmuls that fill it; the hot paths (GRAPE line
# searches, schedule sweeps) call with identical shapes thousands of
# times, so the buffers are keyed by shape and recycled per thread.
_SCRATCH = threading.local()


def _scratch(
    tag: str, shape: tuple[int, ...], dtype=np.complex128
) -> tuple[np.ndarray, bool]:
    """``(buffer, fresh)`` — a recycled work array for *tag*.

    One flat allocation per tag, grown to the largest capacity seen
    and viewed at the requested shape — varying chunk shapes reuse the
    same storage instead of accumulating per-shape buffers. ``fresh``
    is True whenever the returned view does not hold the previous
    call's contents for this tag (new allocation or shape change).
    """
    pool = getattr(_SCRATCH, "pool", None)
    if pool is None:
        pool = _SCRATCH.pool = {}
    size = int(np.prod(shape))
    entry = pool.get(tag)
    if entry is not None:
        flat, last_shape = entry
        if flat.size >= size and flat.dtype == np.dtype(dtype):
            pool[tag] = (flat, shape)
            return flat[:size].reshape(shape), last_shape != shape
    flat = np.empty(size, dtype=dtype)
    pool[tag] = (flat, shape)
    return flat.reshape(shape), True


def _expm_skew_batched(
    hs: np.ndarray,
    coeff: np.ndarray | complex,
    shift: np.ndarray,
    out: np.ndarray,
) -> int:
    """``out = exp(coeff * hs - diag(shift))`` for a Hermitian stack.

    Returns the squaring level ``s`` used for this chunk (profiling
    reads it; the result in *out* is unaffected).

    Scaling-and-squaring with a degree-12 Paterson-Stockmeyer Taylor
    evaluation — pure batched matmuls, no per-matrix LAPACK calls. The
    scaling power is shared across the stack (``exp(theta) =
    exp(theta/2^s)^(2^s)`` holds for any ``s``, so the largest needed
    power is simply used for every matrix) and is bounded through the
    quartic power: ``rho(theta) <= ||theta^4||_inf ^ (1/4)``, which the
    evaluation computes anyway. The powers — including an identity row,
    so the B_j constant terms ride along — are combined into the
    Paterson-Stockmeyer blocks by a single GEMM whose coefficients
    absorb the scale factors, so scaling costs no extra array passes.
    All intermediates live in recycled per-thread scratch buffers; only
    *out* (the caller's array) is written.
    """
    n, dim, _ = hs.shape
    powers, fresh = _scratch("powers", (5, n, dim, dim))
    if fresh:
        powers[0] = np.eye(dim)
    theta = powers[1]
    np.multiply(hs, coeff if np.ndim(coeff) == 0 else coeff[:, None, None], out=theta)
    idx = np.arange(dim)
    theta[:, idx, idx] -= shift[:, None]
    np.matmul(theta, theta, out=powers[2])  # theta^2
    np.matmul(powers[2], theta, out=powers[3])  # theta^3
    np.matmul(powers[2], powers[2], out=powers[4])  # theta^4
    absbuf, _ = _scratch("abs", (n, dim, dim), np.float64)
    np.abs(powers[4], out=absbuf)
    rho = float(absbuf.sum(axis=2).max()) ** 0.25
    s = max(0, int(np.ceil(np.log2(max(rho, 1e-300) / _PS_SCALE_THRESHOLD))))
    # Squaring doubles the truncation error per level, so the norm-based
    # scale alone degrades linearly in 2^s for long constant runs (large
    # steps). Keep adding levels until the accumulated bound
    # 2^s * r^13/13! clears ~1e-11 — each level wins back 2^12.
    while (2.0**s) * (rho / 2.0**s) ** 13 / math.factorial(13) > 1e-11:
        s += 1
    sc = 2.0**-s
    # Blocks B0..B2 in one GEMM; B3 = I/12! contributes F12 * x^4 to B2.
    coeffs = np.zeros((3, 5), dtype=np.complex128)
    coeffs[:, :4] = _PS_COEFFS * sc ** np.arange(4)
    coeffs[2, 4] = sc**4 / math.factorial(12)
    blocks, _ = _scratch("blocks", (3, n, dim, dim))
    np.matmul(coeffs, powers.reshape(5, -1), out=blocks.reshape(3, -1))
    b0, b1, b2 = blocks
    x4 = powers[4]
    x4 *= sc**4
    t1, _ = _scratch("horner", (n, dim, dim))
    np.matmul(b2, x4, out=t1)
    t1 += b1
    u = np.matmul(t1, x4, out=b2)
    u += b0
    if s == 0:
        out[...] = u
        return 0
    scratch = t1
    for i in range(s):
        out_buf = out if i == s - 1 else scratch
        np.matmul(u, u, out=out_buf)
        u, scratch = out_buf, u
    return s


def batched_propagators(
    hamiltonians: np.ndarray,
    dt: float,
    steps: int | np.ndarray = 1,
    *,
    method: str = "auto",
) -> np.ndarray:
    """Exact propagators for a stack of constant Hamiltonians.

    ``U_k = exp(-2*pi*i * H_k * dt * steps_k)`` for the whole
    ``(n, D, D)`` stack in a handful of batched array operations.

    Parameters
    ----------
    hamiltonians:
        Hermitian stack of shape ``(n, D, D)`` in Hz.
    steps:
        Scalar or length-``n`` integer array of segment lengths.
    method:
        ``"expm"`` — scaling-and-squaring Paterson-Stockmeyer Taylor
        after a per-matrix trace shift; pure batched matmuls, the
        fastest route for the small dimensions simulated here.
        ``"eigh"`` — one stacked ``np.linalg.eigh`` then broadcast
        phase application ``V exp(-2*pi*i E dt s) V†``; exact to
        machine precision but pays LAPACK's per-matrix overhead.
        ``"auto"`` (default) selects ``"expm"`` for typical slice
        durations (where the two agree to ~1e-13) and falls back to
        ``"eigh"`` when any slice's phase radius would need so many
        squaring levels that amplified rounding could breach the
        engine's 1e-10 equivalence contract (very long constant runs).

    Returns
    -------
    Complex array of shape ``(n, D, D)``.
    """
    hs = np.asarray(hamiltonians, dtype=np.complex128)
    if hs.ndim != 3 or hs.shape[1] != hs.shape[2]:
        raise ValidationError(
            f"Hamiltonian stack must have shape (n, D, D), got {hs.shape}"
        )
    if dt <= 0:
        raise ValidationError(f"dt must be > 0, got {dt}")
    steps_arr = np.asarray(steps)
    if steps_arr.ndim not in (0, 1) or (
        steps_arr.ndim == 1 and steps_arr.shape[0] != hs.shape[0]
    ):
        raise ValidationError(
            f"steps must be a scalar or length-{hs.shape[0]} array, "
            f"got shape {steps_arr.shape}"
        )
    if np.any(steps_arr < 1):
        raise ValidationError("steps must be >= 1")
    if method not in ("auto", "expm", "eigh"):
        raise ValidationError(
            f"method must be 'auto', 'expm' or 'eigh', got {method!r}"
        )
    n, dim = hs.shape[0], hs.shape[1]
    if n == 0:
        return hs.copy()
    durations = dt * steps_arr.astype(np.float64)

    if method == "auto":
        # Each squaring level amplifies rounding by ~2x, so past
        # _EXPM_MAX_LEVELS levels the exact eigh route is the accurate
        # (and, with that much squaring, also the cheaper) choice.
        # Cheap per-slice radius bound: |coeff| * inf-norm of the
        # trace-shifted Hamiltonian.
        mu_est = np.real(np.trace(hs, axis1=1, axis2=2)) / dim
        row_sums = np.abs(hs).sum(axis=2).max(axis=1)
        radius = _TWO_PI * durations * (row_sums + np.abs(mu_est))
        method = (
            "eigh"
            if radius.max() > _PS_SCALE_THRESHOLD * 2.0**_EXPM_MAX_LEVELS
            else "expm"
        )

    if method == "eigh":
        t0 = time.perf_counter()
        evals, evecs = np.linalg.eigh(hs)  # (n, D), (n, D, D)
        if durations.ndim == 1:
            durations = durations[:, None]
        phases = np.exp(-1j * _TWO_PI * evals * durations)
        us = (evecs * phases[:, None, :]) @ evecs.conj().transpose(0, 2, 1)
        _profile.kernel(
            "propagators",
            n=n,
            dim=dim,
            seconds=time.perf_counter() - t0,
            method="eigh",
        )
        return us

    # expm route: theta_k = -2*pi*i * dt * steps_k * (H_k - mu_k I),
    # with the trace shift mu_k = tr(H_k)/D peeled off as a scalar
    # phase — it halves the spectral radius for the lopsided spectra
    # (transmon anharmonicity ladders) seen here, saving squarings.
    t0 = time.perf_counter()
    coeff = np.asarray(-1j * _TWO_PI * durations)  # scalar or (n,)
    mu = np.real(np.trace(hs, axis1=1, axis2=2)) / dim
    shift = coeff * mu
    out = np.empty_like(hs)
    levels = 0
    for a in range(0, n, _EXPM_CHUNK):
        b = min(a + _EXPM_CHUNK, n)
        c = coeff if coeff.ndim == 0 else coeff[a:b]
        s = _expm_skew_batched(hs[a:b], c, shift[a:b], out[a:b])
        if s > levels:
            levels = s
    out *= np.exp(shift)[:, None, None]
    _profile.kernel(
        "propagators",
        n=n,
        dim=dim,
        seconds=time.perf_counter() - t0,
        levels=levels,
        method="expm",
    )
    return out


def batched_expm(
    matrices: np.ndarray,
    *,
    scale: float | np.ndarray = 1.0,
    method: str = "auto",
) -> np.ndarray:
    """``exp(scale_k * A_k)`` for a stack of *general* square matrices.

    The open-system engine exponentiates Lindblad superoperators —
    non-Hermitian, so the ``eigh`` route of
    :func:`batched_propagators` does not apply — through the same
    scaling-and-squaring Paterson-Stockmeyer evaluation: pure batched
    matmuls after a per-matrix trace shift. Unlike the Hermitian case
    there is no spectral fallback, so ``method="dense"`` hands the
    stack to ``scipy.linalg.expm`` (Pade) one matrix at a time — the
    accurate route when a slice's scaled norm would need excessive
    squaring. ``"auto"`` picks ``"expm"`` below the squaring-level
    bound and ``"dense"`` above it.

    Parameters
    ----------
    matrices:
        Stack of shape ``(n, m, m)`` — complex, no symmetry assumed.
    scale:
        Scalar or length-``n`` multiplier folded into the exponent
        (e.g. ``dt * steps`` in seconds for superoperator stacks whose
        rates are per-second).
    """
    a = np.asarray(matrices, dtype=np.complex128)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValidationError(
            f"matrix stack must have shape (n, m, m), got {a.shape}"
        )
    if method not in ("auto", "expm", "dense"):
        raise ValidationError(
            f"method must be 'auto', 'expm' or 'dense', got {method!r}"
        )
    n, m = a.shape[0], a.shape[1]
    if n == 0:
        return a.copy()
    scale_arr = np.asarray(scale)
    if scale_arr.ndim not in (0, 1) or (
        scale_arr.ndim == 1 and scale_arr.shape[0] != n
    ):
        raise ValidationError(
            f"scale must be a scalar or length-{n} array, got shape "
            f"{scale_arr.shape}"
        )
    coeff = np.asarray(scale_arr, dtype=np.complex128)
    mu = np.trace(a, axis1=1, axis2=2) / m
    if method == "auto":
        row_sums = np.abs(a).sum(axis=2).max(axis=1)
        radius = np.abs(coeff) * (row_sums + np.abs(mu))
        method = (
            "dense"
            if radius.max() > _PS_SCALE_THRESHOLD * 2.0**_EXPM_MAX_LEVELS
            else "expm"
        )
    if method == "dense":
        t0 = time.perf_counter()
        dense = _dense_expm(a, coeff)
        _profile.kernel(
            "expm",
            n=n,
            dim=m,
            seconds=time.perf_counter() - t0,
            method="dense",
        )
        return dense
    t0 = time.perf_counter()
    shift = np.broadcast_to(coeff * mu, (n,))  # mu is (n,), so shift is too
    out = np.empty_like(a)
    levels = 0
    for lo in range(0, n, _EXPM_CHUNK):
        hi = min(lo + _EXPM_CHUNK, n)
        c = coeff if coeff.ndim == 0 else coeff[lo:hi]
        s = _expm_skew_batched(a[lo:hi], c, shift[lo:hi], out[lo:hi])
        if s > levels:
            levels = s
    out *= np.exp(shift)[:, None, None]
    _profile.kernel(
        "expm",
        n=n,
        dim=m,
        seconds=time.perf_counter() - t0,
        levels=levels,
        method="expm",
    )
    return out


def _dense_expm(a: np.ndarray, coeff: np.ndarray) -> np.ndarray:
    """Per-matrix dense exponential fallback (scipy Pade when present)."""
    scaled = a * np.broadcast_to(coeff, (a.shape[0],))[:, None, None]
    try:
        from scipy.linalg import expm as _scipy_expm
    except ImportError:  # scipy is optional at runtime: diagonalize instead
        out = np.empty_like(scaled)
        for k in range(scaled.shape[0]):
            evals, vecs = np.linalg.eig(scaled[k])
            # Non-normal matrices can be near-defective; eig+inv then
            # returns garbage silently. Fail loud instead: scipy's Pade
            # route is the supported path for these inputs.
            cond = np.linalg.cond(vecs)
            if not np.isfinite(cond) or cond > 1e12:
                raise ValidationError(
                    "dense expm fallback: eigenvector matrix is "
                    f"ill-conditioned (cond ~ {cond:.1e}); install scipy "
                    "for the Pade route"
                )
            out[k] = (vecs * np.exp(evals)) @ np.linalg.inv(vecs)
        return out
    return np.stack([_scipy_expm(scaled[k]) for k in range(scaled.shape[0])])


def batched_expm_and_frechet(
    hamiltonians: np.ndarray, dt: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched eigendecomposition plus the Daleckii-Krein kernel.

    For every Hamiltonian in the ``(n, D, D)`` stack, returns
    ``(U, V, gamma)`` stacks where ``U_k = exp(-2*pi*i*H_k*dt)``,
    ``V_k`` is the eigenvector matrix and ``gamma_k[a, b]`` is the
    divided-difference kernel such that the derivative of ``U_k`` in
    direction ``E`` is ``V_k (gamma_k ∘ (V_k† E V_k)) V_k†``. The
    kernel is elementwise on the stacked eigenbasis, so the whole
    construction is a handful of broadcast operations.
    """
    hs = np.asarray(hamiltonians, dtype=np.complex128)
    if hs.ndim != 3 or hs.shape[1] != hs.shape[2]:
        raise ValidationError(
            f"Hamiltonian stack must have shape (n, D, D), got {hs.shape}"
        )
    evals, vecs = np.linalg.eigh(hs)  # (n, D), (n, D, D)
    f = np.exp(-1j * _TWO_PI * evals * dt)  # (n, D)
    us = (vecs * f[:, None, :]) @ vecs.conj().transpose(0, 2, 1)
    lam = evals[:, :, None] - evals[:, None, :]  # (n, D, D)
    df = f[:, :, None] - f[:, None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        gamma = np.where(np.abs(lam) > 1e-12, df / lam, 0.0)
    # Fill the (near-)degenerate entries with the derivative f'(lambda).
    diag = -1j * _TWO_PI * dt * f
    near = np.abs(lam) <= 1e-12
    gamma = np.where(near, 0.5 * (diag[:, :, None] + diag[:, None, :]), gamma)
    return us, vecs, gamma


def hamiltonian_fingerprint(hamiltonian: np.ndarray) -> bytes:
    """Content digest of a Hamiltonian, for propagator-cache keys."""
    h = np.ascontiguousarray(hamiltonian, dtype=np.complex128)
    digest = hashlib.blake2b(h.tobytes(), digest_size=16)
    digest.update(str(h.shape).encode())
    return digest.digest()


class PropagatorCache:
    """Bounded LRU cache of slice propagators.

    Keys are ``(H fingerprint, dt, steps)``; values are the exact
    propagators ``exp(-2*pi*i*H*dt*steps)``. Repeated slices — flat-top
    pulses, parameter sweeps re-visiting the same amplitudes, drift
    segments between pulses — skip the eigendecomposition entirely.
    Thread-safe; one instance can be shared across executors.

    :meth:`propagator` returns the stored arrays themselves, frozen
    read-only (``.copy()`` before mutating); :meth:`propagators`
    returns a freshly assembled, writable stack.

    Hit/miss/eviction accounting lives in a
    :class:`~repro.obs.CacheStats` whose every mutation happens under
    the cache lock (concurrent ``compute=`` overrides used to race the
    bare integer attributes); ``stats()`` returns the same dict shape
    as :class:`~repro.serving.cache.CompileCache` and
    :class:`~repro.compiler.jit.JITCompiler`, and each instance
    self-registers on the global obs registry.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats(
            self.__len__,
            lambda: self.max_entries,
            hits=0,
            misses=0,
            evictions=0,
        )
        REGISTRY.register_cache(
            REGISTRY.autoname("propagator"), self, kind="propagator"
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hits(self) -> int:
        """Total slice lookups served from the cache."""
        with self._lock:
            return self.stats["hits"]

    @property
    def misses(self) -> int:
        """Total slice lookups that had to be computed."""
        with self._lock:
            return self.stats["misses"]

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.stats["hits"] + self.stats["misses"]
            return self.stats["hits"] / total if total else 0.0

    def _key(
        self, fingerprint: bytes, dt: float, steps: int, tag: str = ""
    ) -> tuple:
        # Non-integral steps would compute one propagator but file it
        # under the truncated key, poisoning later integer lookups.
        if steps != int(steps):
            raise ValidationError(f"steps must be integral, got {steps}")
        # The tag namespaces entries produced by different compute
        # functions (e.g. Lindblad superoperator propagators keyed on
        # the same Hamiltonian fingerprints) so they cannot collide
        # with plain unitary propagators in a shared cache.
        return (tag, fingerprint, float(dt), int(steps))

    def propagator(
        self,
        hamiltonian: np.ndarray,
        dt: float,
        steps: int = 1,
        *,
        fingerprint: bytes | None = None,
    ) -> np.ndarray:
        """Cached equivalent of :func:`step_propagator`."""
        if fingerprint is None:
            fingerprint = hamiltonian_fingerprint(hamiltonian)
        key = self._key(fingerprint, dt, steps)
        with self._lock:
            u = self._entries.get(key)
            if u is not None:
                self._entries.move_to_end(key)
                self.stats["hits"] += 1
                return u
            self.stats["misses"] += 1
        u = step_propagator(hamiltonian, dt, steps)
        self._store(key, u)
        return u

    def propagators(
        self,
        hamiltonians: np.ndarray,
        dt: float,
        steps: int | np.ndarray = 1,
        *,
        compute=None,
        tag: str = "",
    ) -> np.ndarray:
        """Cached equivalent of :func:`batched_propagators`.

        Looks every slice up by ``(fingerprint, dt, steps)``; the
        misses are deduplicated within the batch, diagonalized with a
        single batched call, and inserted.

        *compute* overrides the batched computation for the misses —
        any ``(hamiltonians, dt, steps) -> stack`` callable; the
        open-system engine passes its superoperator exponentiation
        here so Lindblad propagators get the same fingerprint-keyed
        dedup/memoization as unitaries. A non-empty *tag* namespaces
        those entries (the key stays the *Hamiltonian* fingerprint,
        which is cheaper to hash than the ``D^2 x D^2`` superoperator).
        """
        hs = np.asarray(hamiltonians, dtype=np.complex128)
        if hs.ndim != 3 or hs.shape[1] != hs.shape[2]:
            raise ValidationError(
                f"Hamiltonian stack must have shape (n, D, D), got {hs.shape}"
            )
        n = hs.shape[0]
        if n == 0:
            return hs.copy()
        steps_in = np.asarray(steps)
        if np.any(steps_in != steps_in.astype(np.int64)):
            raise ValidationError(f"steps must be integral, got {steps}")
        steps_arr = np.broadcast_to(steps_in.astype(np.int64), (n,))
        # Consecutive identical (H, steps) slices — flat-top pulses,
        # segment ansatzes — collapse to one representative per run in
        # a single vectorized comparison pass; non-adjacent repeats
        # collapse through the shared cache key. Only representatives
        # are hashed, and the results scatter back with one gather.
        changed = np.any(hs[1:] != hs[:-1], axis=(1, 2)) | (
            steps_arr[1:] != steps_arr[:-1]
        )
        inverse = np.concatenate(([0], np.cumsum(changed)))
        reps = np.concatenate(([0], np.nonzero(changed)[0] + 1))
        run_sizes = np.diff(np.concatenate((reps, [n])))
        keys = [
            self._key(hamiltonian_fingerprint(hs[k]), dt, steps_arr[k], tag)
            for k in reps
        ]
        run_props: list[np.ndarray | None] = [None] * len(reps)
        miss_runs: OrderedDict[tuple, list[int]] = OrderedDict()
        hit_count = miss_count = 0
        with self._lock:
            for i, key in enumerate(keys):
                u = self._entries.get(key)
                if u is not None:
                    self._entries.move_to_end(key)
                    hit_count += int(run_sizes[i])
                    run_props[i] = u
                else:
                    miss_count += int(run_sizes[i])
                    miss_runs.setdefault(key, []).append(i)
            self.stats["hits"] += hit_count
            self.stats["misses"] += miss_count
        with span(
            "cache",
            cache="propagator",
            slices=n,
            unique=len(reps),
            hits=hit_count,
            misses=miss_count,
        ):
            _profile.cache_batch(
                n=n, unique=len(reps), hits=hit_count, misses=miss_count
            )
            if miss_runs:
                sel = reps[[runs[0] for runs in miss_runs.values()]]
                fresh = (compute or batched_propagators)(
                    hs[sel], dt, steps_arr[sel]
                )
                for u, runs in zip(fresh, miss_runs.values()):
                    # Copy before storing: a row view would pin the whole
                    # (n_miss, D, D) batch in memory for the entry's LRU
                    # lifetime.
                    u = u.copy()
                    for i in runs:
                        run_props[i] = u
                    self._store(keys[runs[0]], u)
            return np.stack(run_props)[inverse]

    def _store(self, key: tuple, u: np.ndarray) -> None:
        # Lookups hand out the stored array itself (no copy on the hot
        # path); freezing it turns an accidental in-place edit into an
        # immediate error instead of silent cache poisoning.
        u.flags.writeable = False
        with self._lock:
            self._entries[key] = u
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats["evictions"] += 1


def propagator_sequence(
    drift: np.ndarray,
    control_ops: Sequence[np.ndarray],
    controls: np.ndarray,
    dt: float,
    *,
    cache: PropagatorCache | None = None,
) -> list[np.ndarray]:
    """Per-slice propagators for GRAPE-style piecewise-constant control.

    ``H_k = drift + sum_j controls[k, j] * control_ops[j]`` (all in Hz).
    The slice Hamiltonians are stacked and diagonalized in one batched
    call (:func:`batched_propagators`); with *cache* given, slices seen
    before skip the decomposition.

    Parameters
    ----------
    controls:
        Real array of shape ``(n_steps, n_controls)``.

    Returns
    -------
    list of ``n_steps`` unitaries ``U_k``; the total propagator is
    ``U_{n-1} ... U_1 U_0``.
    """
    hs = build_hamiltonians(drift, control_ops, controls)
    if dt <= 0:
        raise ValidationError(f"dt must be > 0, got {dt}")
    if cache is not None:
        return list(cache.propagators(hs, dt))
    return list(batched_propagators(hs, dt))


def evolve_piecewise(
    drift: np.ndarray,
    control_ops: Sequence[np.ndarray],
    controls: np.ndarray,
    dt: float,
    state: np.ndarray | None = None,
    *,
    cache: PropagatorCache | None = None,
) -> np.ndarray:
    """Total propagator (or final state) of a piecewise-constant control.

    When *state* is given, the propagators are applied to it step by
    step (cheaper than accumulating the full unitary for large D).
    """
    steps = propagator_sequence(drift, control_ops, controls, dt, cache=cache)
    if state is not None:
        psi = np.asarray(state, dtype=np.complex128)
        for u in steps:
            psi = evolve_unitary(u, psi)
        return psi
    total = np.eye(drift.shape[0], dtype=np.complex128)
    for u in steps:
        total = u @ total
    return total


def segment_runs(samples: np.ndarray, decimals: int = 12) -> list[tuple[int, int]]:
    """Split a per-sample drive matrix into runs of identical rows.

    Parameters
    ----------
    samples:
        Array of shape ``(n_steps, n_channels)`` (complex). Rows equal
        after rounding to *decimals* are merged into one run.

    Returns
    -------
    List of ``(start, length)`` pairs covering ``[0, n_steps)``.
    """
    n = samples.shape[0]
    if n == 0:
        return []
    rounded = np.round(samples, decimals)
    changed = np.any(rounded[1:] != rounded[:-1], axis=tuple(range(1, rounded.ndim)))
    starts = np.concatenate(([0], np.nonzero(changed)[0] + 1))
    ends = np.concatenate((starts[1:], [n]))
    return [(int(s), int(e - s)) for s, e in zip(starts, ends)]
