"""The mitigated execution engine behind the primitives' options stack.

When an :class:`~repro.primitives.estimator.Estimator` (or
:class:`~repro.primitives.sampler.Sampler`) carries a
:class:`~repro.qem.options.EstimatorOptions` /
:class:`~repro.qem.options.SamplerOptions`, its ``run`` routes here.
The engine expands every PUB point into a grid of circuit variants —
one per (stretch factor x twirl randomization), minted through the
``Executable.specialize`` template fast path so a whole ZNE sweep is
one broadcast PUB batch — executes the entire grid in a single
batched dispatch, and folds the results back in reverse declared
order: confusion-invert each variant's distribution, average the
twirls (with the observable sign-tracked through the flip frame), and
extrapolate the stretch factors to zero noise.

Mitigated evaluation reads the **post-readout** distribution
(``ExecutionResult.probabilities``) — the noisy quantity mitigation
exists to clean up — unlike the default Estimator convention of
pre-readout exactness, and therefore requires a direct simulator
target and diagonal (Z-basis) observables. An *empty* stack is the
unmitigated noisy baseline over the same convention.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import span
from repro.primitives.containers import DataBin, PrimitiveResult, PubResult
from repro.qem import twirling as _twirling
from repro.qem.readout import mitigate_distribution
from repro.qem.zne import extrapolate_to_zero, stretch_schedule
from repro.sim.measurement import ReadoutModel


class _Variant:
    """One executed circuit variant of one PUB point."""

    __slots__ = ("schedule", "factor_index", "twirl_index", "mask", "is_base")

    def __init__(self, schedule, factor_index, twirl_index, mask, is_base=False):
        self.schedule = schedule
        self.factor_index = factor_index
        self.twirl_index = twirl_index
        self.mask = mask
        self.is_base = is_base


def _require_direct(primitive, what: str) -> None:
    if primitive.mode != "direct":
        raise ValidationError(
            f"{what} needs a direct simulator target (mitigation folds "
            "exact post-readout distributions that only the local "
            "executor reports)"
        )


def _twirl_device(primitive):
    device = None if primitive.target is None else primitive.target.device
    if device is None:
        raise ValidationError(
            "twirling needs a device-backed target (the flip pulses come "
            "from the device's calibrated 'x' entries); executor-backed "
            "primitives compose 'readout' only"
        )
    return device


def _readout_models(primitive, options, result) -> list[ReadoutModel]:
    override = options.readout.models
    sites = result.measured_sites
    if override is not None:
        if len(override) != len(sites):
            raise ValidationError(
                f"{len(override)} readout-model overrides for "
                f"{len(sites)} measured sites"
            )
        return list(override)
    return [
        primitive._executor.readout.get(site, ReadoutModel()) for site in sites
    ]


def _variant_distribution(primitive, options, result, cache, index):
    """The (optionally confusion-inverted) distribution of one variant."""
    if index in cache:
        return cache[index]
    if not result.measured_sites:
        raise ValidationError(
            "mitigated evaluation needs measuring programs (the schedule "
            "captured nothing)"
        )
    dist = dict(result.probabilities)
    if "readout" in options.mitigation:
        dist = mitigate_distribution(
            dist, _readout_models(primitive, options, result)
        ).distribution
    cache[index] = dist
    return dist


def _expand_pub(est, pub, options, rng, n_points) -> list[list[_Variant]]:
    """The variant grid of one Estimator PUB, per binding point."""
    stack = options.mitigation
    zne_opt = options.zne if "zne" in stack else None
    tw_opt = options.twirling if "twirling" in stack else None
    factors = zne_opt.stretch_factors if zne_opt is not None else (1.0,)
    zne_outer = (
        tw_opt is None
        or zne_opt is None
        or stack.index("zne") < stack.index("twirling")
    )
    constraints = (
        est.target.constraints if est.target is not None else None
    )
    device = _twirl_device(est) if tw_opt is not None else None
    base = est._point_schedules(pub)
    per_factor = {0: base}
    if zne_opt is not None and zne_outer:
        # Each stretch factor mints through the specialize template fast
        # path; the whole factor sweep is one broadcast PUB batch.
        for fi, f in enumerate(factors):
            if fi:
                per_factor[fi] = est._point_schedules(pub, stretch=f)
    plans: list[list[_Variant]] = []
    for b in range(n_points):
        if tw_opt is not None:
            slots = _twirling.measured_slots(base[b])
            if not slots:
                raise ValidationError(
                    "twirling needs measuring programs (the schedule "
                    "captured nothing)"
                )
            sites = [site for _, site in slots]
            masks = _twirling.twirl_masks(len(slots), tw_opt, rng)
        else:
            masks = [None]
        variants: list[_Variant] = []
        if zne_outer:
            for fi in range(len(factors)):
                sched = per_factor[fi][b]
                for ri, mask in enumerate(masks):
                    s = (
                        sched
                        if mask is None or not any(mask)
                        else _twirling.twirl_schedule(sched, mask, device, sites)
                    )
                    variants.append(_Variant(s, fi, ri, mask))
        else:  # twirling declared first: stretch the twirled circuits
            for ri, mask in enumerate(masks):
                s0 = (
                    base[b]
                    if mask is None or not any(mask)
                    else _twirling.twirl_schedule(base[b], mask, device, sites)
                )
                for fi, f in enumerate(factors):
                    s = (
                        s0
                        if f == 1.0
                        else stretch_schedule(s0, f, constraints=constraints)
                    )
                    variants.append(_Variant(s, fi, ri, mask))
        plans.append(variants)
    return plans


def _fold_estimate(
    est, options, observable, variants, results, dist_cache
) -> tuple[float, float]:
    """``(value, variance)`` of one observable at one binding point."""
    if not observable.is_diagonal:
        raise ValidationError(
            "mitigated estimation evaluates from measured outcome "
            "distributions; only diagonal (Z-basis) observables compose "
            "with the mitigation stack"
        )
    stack = options.mitigation
    zne_opt = options.zne if "zne" in stack else None
    factors = zne_opt.stretch_factors if zne_opt is not None else (1.0,)
    n_factors = len(factors)
    n_twirls = len(variants) // n_factors
    grid = np.empty((n_factors, n_twirls), dtype=np.float64)
    variance = 0.0
    for index, variant in enumerate(variants):
        result = results[index]
        dist = _variant_distribution(est, options, result, dist_cache, index)
        adjusted = (
            observable
            if variant.mask is None
            else _twirling.conjugate_by_x(observable, variant.mask)
        )
        mean, var = est._distribution_moments(
            adjusted, dist, len(result.measured_sites)
        )
        grid[variant.factor_index, variant.twirl_index] = mean
        if variant.factor_index == 0 and variant.twirl_index == 0:
            variance = var
    if zne_opt is None:
        return float(grid[0].mean()), variance
    zne_outer = (
        "twirling" not in stack
        or stack.index("zne") < stack.index("twirling")
    )
    if zne_outer:
        # fold right-to-left: twirl-average within each factor, then
        # extrapolate the per-factor means to c = 0
        value = extrapolate_to_zero(
            factors, grid.mean(axis=1), zne_opt.extrapolation
        )
    else:
        # twirling declared first: extrapolate within each
        # randomization, then average the extrapolated values
        value = float(
            np.mean(
                [
                    extrapolate_to_zero(
                        factors, grid[:, ri], zne_opt.extrapolation
                    )
                    for ri in range(n_twirls)
                ]
            )
        )
    return value, variance


def _qem_metadata(options, plans) -> dict[str, Any]:
    meta: dict[str, Any] = {
        "mitigation": list(options.mitigation),
        "overhead": options.overhead,
        "variants_per_point": len(plans[0]) if plans and plans[0] else 1,
    }
    if "zne" in options.mitigation:
        meta["stretch_factors"] = list(options.zne.stretch_factors)
        meta["extrapolation"] = options.zne.extrapolation
    if "twirling" in options.mitigation:
        meta["randomizations"] = options.twirling.num_randomizations
    return meta


def run_mitigated_estimator(est, pubs, *, timeout=None) -> PrimitiveResult:
    """Mitigated ``Estimator.run``: expand, batch-execute, fold."""
    options = est.options
    _require_direct(est, "mitigated estimation")
    rng = np.random.default_rng(est._seed if est._seed is not None else 0)
    stack = ",".join(options.mitigation) or "none"
    with span("qem.expand", pubs=len(pubs), stack=stack):
        all_plans = [
            _expand_pub(est, pub, options, rng, pub.bindings.size)
            for pub in pubs
        ]
    per_pub = [
        (pub, [v.schedule for point in plans for v in point], 0)
        for pub, plans in zip(pubs, all_plans)
    ]
    total = sum(len(h) for _, h, _ in per_pub)
    REGISTRY.counter(
        "repro_qem_variants_total",
        "Circuit variants executed by the mitigation engine",
        {"primitive": "estimator"},
    ).inc(total)
    results = est._execute_all(per_pub, timeout=timeout)
    with span("qem.fold", pubs=len(pubs), stack=stack):
        pub_results = [
            _assemble_estimator(est, options, pub, plans, res)
            for (pub, plans), res in zip(zip(pubs, all_plans), results)
        ]
    return PrimitiveResult(
        pub_results,
        metadata={
            "dispatch": est.mode,
            "seed": est._seed,
            "qem": _qem_metadata(options, all_plans[0]),
        },
    )


def _assemble_estimator(
    est, options, pub, plans, results: Sequence[Any]
) -> PubResult:
    shape = pub.shape
    size = pub.size
    bind_idx = pub.binding_indices().reshape(-1) if shape else None
    obs_idx = pub.observable_indices().reshape(-1) if shape else None
    observables = pub.observables.flat()
    stride = len(plans[0]) if plans else 1
    evs = np.empty(size, dtype=np.float64)
    variances = np.empty(size, dtype=np.float64)
    memo: dict[tuple[int, int], tuple[float, float]] = {}
    dist_caches: dict[int, dict] = {}
    for flat in range(size):
        b = int(bind_idx[flat]) if bind_idx is not None else 0
        o = int(obs_idx[flat]) if obs_idx is not None else 0
        key = (b, o)
        if key not in memo:
            memo[key] = _fold_estimate(
                est,
                options,
                observables[o],
                plans[b],
                results[b * stride : (b + 1) * stride],
                dist_caches.setdefault(b, {}),
            )
        evs[flat], variances[flat] = memo[key]
    stds = (
        np.sqrt(variances / est.shots)
        if est.shots > 0
        else np.zeros(size, dtype=np.float64)
    )
    metadata: dict[str, Any] = {
        "shots": est.shots,
        "target": est._device_name(),
        "dispatch": est.mode,
        "qem": _qem_metadata(options, plans),
    }
    profile = est._batch_profile(results)
    if profile is not None:
        metadata["profile"] = profile
    return PubResult(
        DataBin(shape=shape, evs=evs.reshape(shape), stds=stds.reshape(shape)),
        metadata=metadata,
    )


# ---- sampler -------------------------------------------------------------------------


def _expand_sampler_pub(sampler, pub, options, rng, n_points):
    """Variant grid of one Sampler PUB: the raw base execution first
    (it keeps reporting ``counts``/``probabilities``), then the twirl
    randomizations the quasi-distribution folds over."""
    tw_opt = options.twirling if "twirling" in options.mitigation else None
    device = _twirl_device(sampler) if tw_opt is not None else None
    base = sampler._point_schedules(pub)
    plans: list[list[_Variant]] = []
    for b in range(n_points):
        variants = [_Variant(base[b], 0, 0, None, is_base=True)]
        if tw_opt is not None:
            slots = _twirling.measured_slots(base[b])
            if not slots:
                raise ValidationError(
                    "twirling needs measuring programs (the schedule "
                    "captured nothing)"
                )
            sites = [site for _, site in slots]
            for ri, mask in enumerate(
                _twirling.twirl_masks(len(slots), tw_opt, rng)
            ):
                s = (
                    base[b]
                    if not any(mask)
                    else _twirling.twirl_schedule(base[b], mask, device, sites)
                )
                variants.append(_Variant(s, 0, ri, mask))
        plans.append(variants)
    return plans


def run_mitigated_sampler(sampler, specs, *, timeout=None) -> PrimitiveResult:
    """Mitigated ``Sampler.run``; *specs* is ``[(pub, shots), ...]``."""
    options = sampler.options
    _require_direct(sampler, "mitigated sampling")
    rng = np.random.default_rng(
        sampler._seed if sampler._seed is not None else 0
    )
    stack = ",".join(options.mitigation) or "none"
    with span("qem.expand", pubs=len(specs), stack=stack):
        all_plans = [
            _expand_sampler_pub(sampler, pub, options, rng, pub.bindings.size)
            for pub, _ in specs
        ]
    per_pub = [
        (pub, [v.schedule for point in plans for v in point], shots)
        for (pub, shots), plans in zip(specs, all_plans)
    ]
    REGISTRY.counter(
        "repro_qem_variants_total",
        "Circuit variants executed by the mitigation engine",
        {"primitive": "sampler"},
    ).inc(sum(len(h) for _, h, _ in per_pub))
    results = sampler._execute_all(per_pub, timeout=timeout)
    with span("qem.fold", pubs=len(specs), stack=stack):
        pub_results = [
            _assemble_sampler(sampler, options, pub, shots, plans, res)
            for ((pub, shots), plans), res in zip(
                zip(specs, all_plans), results
            )
        ]
    return PrimitiveResult(
        pub_results,
        metadata={
            "dispatch": sampler.mode,
            "seed": sampler._seed,
            "qem": _qem_metadata(options, all_plans[0]),
        },
    )


def _fold_sampler_point(
    sampler, options, shots, variants, results
) -> tuple[dict, float]:
    """``(quasi_distribution, condition_number)`` of one point."""
    twirling = "twirling" in options.mitigation
    readout = "readout" in options.mitigation
    # the fold averages the twirl randomizations; without twirling the
    # base execution is the single fold input (readout-only inversion)
    fold = [
        (v, r)
        for v, r in zip(variants, results)
        if (not v.is_base) == twirling
    ]
    condition = float("nan")
    folded: dict[str, float] = {}
    for variant, result in fold:
        observed = (
            {
                k: v / sum(result.counts.values())
                for k, v in result.counts.items()
            }
            if shots > 0 and result.counts
            else dict(result.probabilities)
        )
        if not observed:
            return {}, condition
        if readout:
            mitigated = mitigate_distribution(
                observed, _readout_models(sampler, options, result)
            )
            observed = mitigated.distribution
            if math.isnan(condition):  # first inversion wins
                condition = mitigated.condition_number
        if variant.mask is not None:
            observed = _twirling.unflip_distribution(observed, variant.mask)
        for key, p in observed.items():
            folded[key] = folded.get(key, 0.0) + p / len(fold)
    return folded, condition


def _assemble_sampler(
    sampler, options, pub, shots, plans, results: Sequence[Any]
) -> PubResult:
    shape = pub.shape
    stride = len(plans[0]) if plans else 1
    counts: list[dict] = []
    probabilities: list[dict] = []
    noisy: list[dict] = []
    quasi: list[dict] = []
    conditions: list[float] = []
    leakage: list[float] = []
    for b, variants in enumerate(plans):
        point_results = results[b * stride : (b + 1) * stride]
        base = point_results[0]
        counts.append(dict(base.counts))
        probabilities.append(dict(base.ideal_probabilities))
        noisy.append(dict(base.probabilities))
        leakage.append(float(sum(base.leakage.values())))
        folded, condition = _fold_sampler_point(
            sampler, options, shots, variants, point_results
        )
        quasi.append(folded)
        conditions.append(condition)
    fields: dict[str, Any] = {
        "counts": sampler._object_array(shape, counts),
        "quasi_dists": sampler._object_array(shape, quasi),
        "probabilities": sampler._object_array(shape, probabilities),
        "noisy_probabilities": sampler._object_array(shape, noisy),
        "leakage": np.asarray(leakage, dtype=np.float64).reshape(shape),
    }
    if "readout" in options.mitigation:
        fields["condition_numbers"] = np.asarray(
            conditions, dtype=np.float64
        ).reshape(shape)
    metadata: dict[str, Any] = {
        "shots": shots,
        "target": sampler._device_name(),
        "dispatch": sampler.mode,
        "mitigated": True,
        "qem": _qem_metadata(options, plans),
    }
    profile = sampler._batch_profile(results)
    if profile is not None:
        metadata["profile"] = profile
    return PubResult(DataBin(shape=shape, **fields), metadata=metadata)
