"""Confusion-matrix readout mitigation and assignment calibration.

Absorbed from ``repro.mitigation.readout`` and
``repro.calibration.readout`` (both remain as deprecated shims): given
per-site confusion matrices ``M_i[observed, actual]``, the joint
confusion matrix is their tensor product; applying its inverse to the
observed distribution recovers an (unbiased, possibly slightly
unphysical) estimate of the true distribution, which is then clipped
and renormalized — the textbook "matrix-free measurement mitigation"
baseline. Exact for the independent-error model the simulator uses;
statistical noise shrinks at the shot rate.

:func:`validate_readout_mitigation` closes the loop end to end through
the composable options stack: a
:class:`~repro.primitives.sampler.Sampler` with
``SamplerOptions(mitigation=("readout",))`` executes the schedule on
the (possibly decohering) model — exact Lindblad dynamics via the
batched open-system engine — and the observed / mitigated
distributions are scored against the exact pre-readout distribution,
the ground truth only a simulator can provide.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.schedule import PulseSchedule
from repro.errors import ValidationError
from repro.sim.measurement import ReadoutModel


@dataclass
class MitigatedResult:
    """Outcome of readout mitigation."""

    distribution: dict[str, float]
    raw_distribution: dict[str, float]
    condition_number: float

    def expectation_z(self, slot: int = 0) -> float:
        """``<Z>`` of the bit at *slot* from the mitigated distribution.

        Raises :class:`~repro.errors.ValidationError` on an empty
        distribution or an out-of-range slot.

        .. deprecated::
            Thin view over the Observable engine; use
            ``repro.primitives.Observable.z(slot).expectation(...)``
            directly.
        """
        warnings.warn(
            "MitigatedResult.expectation_z is deprecated; evaluate "
            "repro.primitives.Observable.z(slot) against the mitigated "
            "distribution instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.primitives.observables import expectation_z

        return expectation_z(self.distribution, slot)


def _joint_confusion(models: Sequence[ReadoutModel]) -> np.ndarray:
    out = np.array([[1.0]])
    for m in models:
        out = np.kron(out, m.confusion_matrix())
    return out


def mitigate_distribution(
    distribution: Mapping[str, float],
    models: Sequence[ReadoutModel],
) -> MitigatedResult:
    """Invert the joint confusion matrix on a bitstring distribution.

    *models* must align with bit positions (leftmost bit = models[0]).
    """
    if not distribution:
        raise ValidationError("cannot mitigate an empty distribution")
    n_bits = len(next(iter(distribution)))
    if any(len(k) != n_bits for k in distribution):
        raise ValidationError("inconsistent bitstring lengths")
    if len(models) != n_bits:
        raise ValidationError(
            f"{len(models)} readout models for {n_bits}-bit outcomes"
        )
    confusion = _joint_confusion(models)
    cond = float(np.linalg.cond(confusion))
    observed = np.zeros(2**n_bits, dtype=np.float64)
    for key, p in distribution.items():
        observed[int(key, 2)] = p
    recovered = np.linalg.solve(confusion, observed)
    # Clip tiny negative leakage from inversion noise; renormalize.
    recovered = np.clip(recovered, 0.0, None)
    total = recovered.sum()
    if total <= 0:
        raise ValidationError("mitigation produced a degenerate distribution")
    recovered /= total
    mitigated = {
        format(i, f"0{n_bits}b"): float(v)
        for i, v in enumerate(recovered)
        if v > 1e-15
    }
    return MitigatedResult(
        distribution=mitigated,
        raw_distribution=dict(distribution),
        condition_number=cond,
    )


def mitigate_counts(
    counts: Mapping[str, int],
    models: Sequence[ReadoutModel],
) -> MitigatedResult:
    """Mitigate raw shot counts (normalizes internally)."""
    total = sum(counts.values())
    if total <= 0:
        raise ValidationError("cannot mitigate zero counts")
    distribution = {k: v / total for k, v in counts.items()}
    return mitigate_distribution(distribution, models)


def total_variation_distance(
    p: Mapping[str, float], q: Mapping[str, float]
) -> float:
    """``1/2 * sum_k |p_k - q_k|`` over the union of outcomes."""
    keys = set(p) | set(q)
    if not keys:
        raise ValidationError("cannot compare two empty distributions")
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


# ---- assignment calibration ----------------------------------------------------------


@dataclass
class ReadoutCalibration:
    """Estimated assignment errors for one site."""

    site: int
    p01: float  # P(read 1 | prepared 0)
    p10: float  # P(read 0 | prepared 1)
    shots: int

    def confusion_matrix(self) -> np.ndarray:
        """2x2 ``M[observed, actual]`` from the estimates."""
        return np.array(
            [[1 - self.p01, self.p10], [self.p01, 1 - self.p10]], dtype=np.float64
        )


def measure_confusion(
    device, site: int, *, shots: int = 2048, seed: int = 0
) -> ReadoutCalibration:
    """Estimate the confusion matrix of *site* from prepared states."""
    rng = np.random.default_rng(seed)

    def run(prepare_one: bool) -> float:
        sched = PulseSchedule("readout-cal")
        if prepare_one:
            device.calibrations.get("x", (site,)).apply(sched, [])
        device.calibrations.get("measure", (site,)).apply(sched, [0])
        result = device.executor.execute(sched, shots=shots, rng=rng)
        total = sum(result.counts.values())
        ones = sum(c for k, c in result.counts.items() if k[0] == "1")
        return ones / max(1, total)

    p1_given_0 = run(prepare_one=False)
    p1_given_1 = run(prepare_one=True)
    return ReadoutCalibration(
        site=site, p01=p1_given_0, p10=1.0 - p1_given_1, shots=shots
    )


# ---- end-to-end validation -----------------------------------------------------------


@dataclass
class MitigationValidation:
    """End-to-end score of readout mitigation against exact dynamics.

    ``exact`` is the pre-readout outcome distribution of the Lindblad
    evolution; ``observed`` what the (possibly sampled) noisy readout
    reported; ``mitigated`` the recovered estimate. The figures of
    merit are total-variation distances to ``exact``.
    """

    exact: dict[str, float]
    observed: dict[str, float]
    mitigated: dict[str, float]
    tv_observed: float
    tv_mitigated: float
    condition_number: float
    shots: int

    @property
    def improvement(self) -> float:
        """TV-distance reduction achieved by mitigation (>0 is good)."""
        return self.tv_observed - self.tv_mitigated


def validate_readout_mitigation(
    executor,
    schedule,
    *,
    shots: int = 4096,
    seed: int = 0,
) -> MitigationValidation:
    """Execute, corrupt, mitigate, and score against the exact result.

    *executor* is a :class:`~repro.sim.executor.ScheduleExecutor`
    whose readout mapping supplies the confusion matrices (sites
    without a model count as ideal); *schedule* must capture at least
    one site. With ``shots > 0`` the observed distribution is the
    sampled counts — the realistic path, statistical noise included;
    ``shots = 0`` scores the readout-error channel alone.

    With decoherence enabled on the executor's model, the reference
    distribution comes from the exact batched Lindblad engine, so the
    returned distances measure mitigation quality *under* T1/T2 —
    e.g. whether confusion inversion stays well-conditioned while
    amplitude damping skews the populations.

    Scoring runs through the composable options stack — a
    :class:`~repro.primitives.sampler.Sampler` with
    ``SamplerOptions(mitigation=("readout",))`` over the executor: the
    same DataBin fields (``counts``/``quasi_dists``/``probabilities``/
    ``noisy_probabilities``/``condition_numbers``) any sampler PUB
    exposes, just re-packed into the validation dataclass.
    """
    from repro.primitives import Sampler
    from repro.qem.options import SamplerOptions

    sampler = Sampler.from_executor(
        executor,
        default_shots=max(shots, 0),
        seed=seed,
        options=SamplerOptions(mitigation=("readout",)),
    )
    bin_ = sampler.run([(schedule,)])[0].data
    exact = dict(bin_.probabilities[()])
    if not exact:
        raise ValidationError(
            "cannot validate mitigation: the schedule captured nothing"
        )
    counts = bin_.counts[()]
    if shots > 0:
        total = sum(counts.values())
        observed = {k: v / total for k, v in counts.items()}
    else:
        observed = dict(bin_.noisy_probabilities[()])
    mitigated = dict(bin_.quasi_dists[()])
    return MitigationValidation(
        exact=exact,
        observed=observed,
        mitigated=mitigated,
        tv_observed=total_variation_distance(observed, exact),
        tv_mitigated=total_variation_distance(mitigated, exact),
        condition_number=float(bin_.condition_numbers[()]),
        shots=max(shots, 0),
    )
