"""Device characterization as durable pipeline task kinds.

Three experiment families, each split into a measurement task
(category ``experiment``) and a pure fitting task (category ``fit``)
so they run as resumable :mod:`repro.pipeline` DAG nodes — a killed
run replays recorded scans instead of re-measuring:

* **Randomized benchmarking** (``rb_scan`` / ``rb_fit``) — standard
  and interleaved single-site RB over the 24-element single-qubit
  Clifford group, generated here by closure over the device's native
  ``sx`` pulse and the virtual ``rz(pi/2)``. The fit extracts the
  depolarizing decay ``A * p**m + B``, the error per Clifford
  ``r = (1 - p)/2``, and — when an interleaved scan rides along —
  the interleaved gate error ``r_gate = (1 - p_int/p_std)/2``. The
  scan records the device's configured T1/T2 and the measured
  Clifford block durations, so the fit can score ``p`` against the
  coherence-limited prediction ``(2*exp(-t/T2) + exp(-t/T1)) / 3``.

* **Coherence** (``coherence_scan`` / ``coherence_fit``) — T1
  (inversion recovery), T2 (Ramsey with artificial detuning) and
  T2echo (Hahn echo) delay scans with exponential / damped-cosine
  fits. The simulator collapses constant zero-drive stretches into
  repeated superpropagator powers, so long delays cost almost
  nothing extra.

* **Process tomography** (``tomography_scan`` / ``tomography_fit``)
  — single-site Pauli transfer matrix reconstruction from four
  linearly independent preparations. The prep matrix ``C`` is
  *measured* (prep-only scans), so ``R = S @ inv(C)`` is
  self-calibrated: systematic prep error cancels instead of
  biasing the gate fidelity.

Scans batch every schedule of the experiment through **one**
primitive call (one ``execute_batch`` evolution pass on a direct
target); fits touch only recorded dicts.

:func:`characterization_dag` assembles the standard full-suite DAG.
"""

from __future__ import annotations

import functools
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.frame import Frame
from repro.core.instructions import Delay, Play
from repro.core.schedule import PulseSchedule
from repro.errors import PipelineError, ValidationError
from repro.pipeline.dag import DAG, register_task

__all__ = [
    "CLIFFORD_COUNT",
    "characterization_dag",
    "clifford_table",
    "clifford_word_schedule",
    "ideal_ptm",
    "inverse_word",
]

#: Order of the single-qubit Clifford group (mod global phase).
CLIFFORD_COUNT = 24

#: Generator matrices: ``s`` is the virtual ``rz(pi/2)`` frame shift,
#: ``x`` is the calibrated ``sx`` (pi/2 about X) pulse.
_GEN = {
    "s": np.diag([np.exp(-0.25j * np.pi), np.exp(0.25j * np.pi)]),
    "x": np.array([[1.0, -1.0j], [-1.0j, 1.0]]) / np.sqrt(2.0),
}

#: Single-qubit Paulis in PTM order (I, X, Y, Z).
_PAULIS = (
    np.eye(2, dtype=complex),
    np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
    np.array([[0.0, -1.0j], [1.0j, 0.0]]),
    np.diag([1.0, -1.0]).astype(complex),
)

#: Unitaries of the gates tomography can score (global phase free).
_GATE_UNITARIES = {
    "id": np.eye(2, dtype=complex),
    "sx": _GEN["x"],
    "x": np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex),
}


# ---- the single-qubit Clifford group -------------------------------------------------


def _canon_key(matrix: np.ndarray) -> bytes:
    """A hashable key identifying *matrix* up to global phase."""
    flat = matrix.reshape(-1)
    mags = np.abs(flat)
    # First entry within tolerance of the max: ``argmax`` alone is
    # unstable when several entries tie in magnitude up to rounding
    # (e.g. the all-1/sqrt(2) Cliffords), which would pick different
    # pivots for phase-equivalent matrices.
    pivot = flat[int(np.argmax(mags > mags.max() - 1e-9))]
    normalized = matrix * (abs(pivot) / pivot)
    # ``+ 0.0`` folds IEEE -0.0 into +0.0 so the byte keys agree.
    return (np.round(normalized, 6) + 0.0).tobytes()


@functools.lru_cache(maxsize=1)
def clifford_table() -> tuple[tuple[tuple[str, ...], ...], dict[bytes, int]]:
    """``(words, index)`` for the 24 single-qubit Cliffords.

    ``words[i]`` is the *shortest* generator word (letters ``s``/``x``,
    applied left to right) realizing element ``i``; ``index`` maps the
    phase-canonical matrix key back to the element. Breadth-first
    closure over the generators guarantees minimal words.
    """
    words: list[tuple[str, ...]] = [()]
    matrices: list[np.ndarray] = [np.eye(2, dtype=complex)]
    index: dict[bytes, int] = {_canon_key(matrices[0]): 0}
    head = 0
    while head < len(words):
        word, mat = words[head], matrices[head]
        head += 1
        for letter, gen in _GEN.items():
            new = gen @ mat
            key = _canon_key(new)
            if key not in index:
                index[key] = len(words)
                words.append(word + (letter,))
                matrices.append(new)
    if len(words) != CLIFFORD_COUNT:  # pragma: no cover - sanity net
        raise ValidationError(
            f"Clifford closure produced {len(words)} elements, "
            f"expected {CLIFFORD_COUNT}"
        )
    return tuple(words), index


def _word_matrix(word: Sequence[str]) -> np.ndarray:
    mat = np.eye(2, dtype=complex)
    for letter in word:
        mat = _GEN[letter] @ mat
    return mat


def inverse_word(word: Sequence[str]) -> tuple[str, ...]:
    """The Clifford word undoing *word* (shortest representative)."""
    words, index = clifford_table()
    inverse = _word_matrix(word).conj().T
    return words[index[_canon_key(inverse)]]


def clifford_word_schedule(
    device, site: int, schedule: PulseSchedule, word: Sequence[str]
) -> None:
    """Append *word* to *schedule* via the device's calibrations."""
    for letter in word:
        if letter == "s":
            device.calibrations.get("rz", (site,)).apply(
                schedule, [np.pi / 2.0]
            )
        elif letter == "x":
            device.calibrations.get("sx", (site,)).apply(schedule, [])
        else:  # pragma: no cover - table only emits s/x
            raise ValidationError(f"unknown Clifford generator {letter!r}")


# ---- shared helpers ------------------------------------------------------------------


def _require_direct(ctx, kind: str) -> None:
    if ctx.runner.dispatch != "direct":
        raise PipelineError(
            f"{kind} needs a direct simulator runner (exact "
            "distributions / simulator state); got dispatch "
            f"{ctx.runner.dispatch!r}"
        )


def _survival(slot: int = 0):
    """P(0) on one measurement slot: ``(1 + Z)/2``."""
    from repro.primitives import Observable

    return Observable.identity(0.5) + Observable.z(slot, 0.5)


def _population(slot: int = 0):
    """P(1) on one measurement slot: ``(1 - Z)/2``."""
    from repro.primitives import Observable

    return Observable.identity(0.5) - Observable.z(slot, 0.5)


def _program(schedule: PulseSchedule):
    from repro.api.program import Program

    return Program.from_schedule(schedule)


def _measure(device, site: int, schedule: PulseSchedule) -> None:
    device.calibrations.get("measure", (site,)).apply(schedule, [0])


def _site_coherence(device, site: int) -> dict[str, float]:
    from repro.qdmi.properties import SiteProperty
    from repro.qdmi.types import Site

    return {
        "t1": float(device.query_site_property(Site(site), SiteProperty.T1)),
        "t2": float(device.query_site_property(Site(site), SiteProperty.T2)),
    }


def _single_upstream(upstream: Mapping, kind: str, marker: str) -> Mapping:
    matches = [
        r for r in upstream.values() if isinstance(r, Mapping) and marker in r
    ]
    if len(matches) != 1:
        raise PipelineError(
            f"{kind} needs exactly one upstream result with {marker!r}, "
            f"found {len(matches)}"
        )
    return matches[0]


# ---- randomized benchmarking ---------------------------------------------------------


def _rb_scan_run(ctx, params, seed, upstream) -> dict:
    _require_direct(ctx, "rb_scan")
    device = ctx.device
    site = int(params.get("site", 0))
    lengths = [int(m) for m in params.get("lengths", (1, 4, 8, 12))]
    samples = int(params.get("samples", 2))
    shots = int(params.get("shots", 0))
    interleaved = params.get("interleaved")
    if interleaved is not None and interleaved not in _GATE_UNITARIES:
        raise PipelineError(
            f"interleaved gate must be one of {sorted(_GATE_UNITARIES)}, "
            f"got {interleaved!r}"
        )
    words, index = clifford_table()
    rng = np.random.default_rng(seed)
    pubs = []
    durations: list[list[int]] = []
    for m in lengths:
        row: list[int] = []
        for k in range(samples):
            sched = PulseSchedule(f"rb-{site}-m{m}-s{k}")
            net = np.eye(2, dtype=complex)
            for _ in range(m):
                choice = int(rng.integers(0, CLIFFORD_COUNT))
                clifford_word_schedule(device, site, sched, words[choice])
                net = _word_matrix(words[choice]) @ net
                if interleaved == "sx":
                    clifford_word_schedule(device, site, sched, ("x",))
                    net = _GEN["x"] @ net
                elif interleaved == "x":
                    clifford_word_schedule(device, site, sched, ("x", "x"))
                    net = _GATE_UNITARIES["x"] @ net
            recovery = words[index[_canon_key(net.conj().T)]]
            clifford_word_schedule(device, site, sched, recovery)
            row.append(int(sched.duration))  # gate block, pre-readout
            _measure(device, site, sched)
            pubs.append((_program(sched), _survival()))
        durations.append(row)
    res = ctx.estimator(shots=shots, seed=seed).run(pubs)
    survival = [
        [
            float(res[i * samples + k].data.evs)
            for k in range(samples)
        ]
        for i in range(len(lengths))
    ]
    return {
        "site": site,
        "rb_lengths": lengths,
        "samples": samples,
        "shots": shots,
        "interleaved": interleaved,
        "survival": survival,
        "block_durations": durations,
        "dt": float(device.config.constraints.dt),
        # Captured at scan time so the fit stays pure.
        "coherence": _site_coherence(device, site),
    }


register_task("rb_scan", "experiment")(_rb_scan_run)


def _fit_rb_decay(
    lengths: np.ndarray, survival: np.ndarray
) -> tuple[float, float, float]:
    from scipy.optimize import curve_fit

    # The depolarizing asymptote is pinned at 1/2: over the shallow
    # decays short sequences probe, a free baseline makes (A, p, B)
    # degenerate (only A*(1-p) is constrained) and the fitted rate
    # meaningless.
    def model(m, a, p):
        return a * np.power(p, m) + 0.5

    popt, _ = curve_fit(
        model,
        lengths,
        survival,
        p0=(0.5, 0.98),
        bounds=((0.0, 0.0), (1.0, 1.0)),
        maxfev=5000,
    )
    return float(popt[0]), float(popt[1]), 0.5


def _rb_fit_run(ctx, params, seed, upstream) -> dict:
    scans = [
        r
        for r in upstream.values()
        if isinstance(r, Mapping) and "rb_lengths" in r
    ]
    if not scans:
        raise PipelineError("rb_fit needs at least one upstream rb_scan")
    out: dict[str, Any] = {}
    fits: dict[str, dict] = {}
    for scan in scans:
        lengths = np.asarray(scan["rb_lengths"], dtype=np.float64)
        mean = np.asarray(scan["survival"], dtype=np.float64).mean(axis=1)
        a, p, b = _fit_rb_decay(lengths, mean)
        # Coherence-limited prediction: average Clifford duration from
        # the linear growth of the recorded gate-block durations.
        dur = np.asarray(scan["block_durations"], dtype=np.float64).mean(axis=1)
        t_clifford = (
            float(np.polyfit(lengths, dur, 1)[0]) * float(scan["dt"])
            if len(lengths) > 1
            else float(dur[0]) * float(scan["dt"])
        )
        t1 = scan["coherence"]["t1"]
        t2 = scan["coherence"]["t2"]
        p_pred = (
            2.0 * np.exp(-t_clifford / t2) + np.exp(-t_clifford / t1)
        ) / 3.0
        key = "interleaved" if scan.get("interleaved") else "standard"
        fits[key] = {
            "A": a,
            "p": p,
            "B": b,
            "error_per_clifford": (1.0 - p) / 2.0,
            "clifford_seconds": t_clifford,
            "p_predicted": float(p_pred),
        }
    out["fits"] = fits
    if "standard" in fits and "interleaved" in fits:
        ratio = fits["interleaved"]["p"] / fits["standard"]["p"]
        out["interleaved_gate_error"] = (1.0 - ratio) / 2.0
    return out


register_task("rb_fit", "fit")(_rb_fit_run)


# ---- coherence (T1 / T2 / T2echo) ----------------------------------------------------

#: Artificial Ramsey detuning (Hz) giving a few fringes per T2.
T2_DETUNING_HZ = 2e5


def _coherence_delays(device, params) -> list[int]:
    g = device.config.constraints.granularity
    delays = params.get("delays_samples")
    if delays is None:
        max_delay = int(params.get("max_delay_samples", 40000))
        points = int(params.get("points", 17))
        delays = np.linspace(0, max_delay, points)
    return sorted({int(round(d / g)) * g for d in np.asarray(delays)})


def _coherence_schedule(
    device, site: int, kind: str, tau: int, detuning_hz: float, tag: str
) -> PulseSchedule:
    from repro.calibration.ramsey import _half_pi_pulse

    sched = PulseSchedule(tag)
    drive = device.drive_port(site)
    if kind == "t1":
        device.calibrations.get("x", (site,)).apply(sched, [])
        if tau > 0:
            sched.append(Delay(drive, tau))
    elif kind == "t2":
        base = device.default_frame(drive)
        frame = Frame(base.name, base.frequency + detuning_hz, base.phase)
        half = _half_pi_pulse(device, site)
        sched.append(Play(drive, frame, half))
        if tau > 0:
            sched.append(Delay(drive, tau))
        sched.append(Play(drive, frame, half))
    elif kind == "t2echo":
        device.calibrations.get("sx", (site,)).apply(sched, [])
        first = tau // 2
        if first > 0:
            sched.append(Delay(drive, first))
        device.calibrations.get("x", (site,)).apply(sched, [])
        if tau - first > 0:
            sched.append(Delay(drive, tau - first))
        device.calibrations.get("sx", (site,)).apply(sched, [])
    else:
        raise PipelineError(
            f"coherence kind must be 't1', 't2' or 't2echo', got {kind!r}"
        )
    _measure(device, site, sched)
    return sched


def _coherence_scan_run(ctx, params, seed, upstream) -> dict:
    _require_direct(ctx, "coherence_scan")
    device = ctx.device
    site = int(params.get("site", 0))
    kind = str(params.get("kind", "t1"))
    shots = int(params.get("shots", 0))
    detuning = float(params.get("detuning_hz", T2_DETUNING_HZ))
    delays = _coherence_delays(device, params)
    pubs = [
        (
            _program(
                _coherence_schedule(
                    device, site, kind, tau, detuning, f"{kind}-{site}-{i}"
                )
            ),
            _population(),
        )
        for i, tau in enumerate(delays)
    ]
    res = ctx.estimator(shots=shots, seed=seed).run(pubs)
    return {
        "site": site,
        "coherence_kind": kind,
        "delays_samples": delays,
        "detuning_hz": detuning,
        "dt": float(device.config.constraints.dt),
        "shots": shots,
        "populations": [float(r.data.evs) for r in res],
        "coherence": _site_coherence(device, site),
    }


register_task("coherence_scan", "experiment")(_coherence_scan_run)


def _coherence_fit_run(ctx, params, seed, upstream) -> dict:
    from scipy.optimize import curve_fit

    scan = _single_upstream(upstream, "coherence_fit", "coherence_kind")
    kind = scan["coherence_kind"]
    tau = np.asarray(scan["delays_samples"], dtype=np.float64) * float(
        scan["dt"]
    )
    pops = np.asarray(scan["populations"], dtype=np.float64)
    t_guess = max(tau[-1] / 2.0, float(scan["dt"]))
    if kind == "t2":

        def model(t, a, T, f, phi, c):
            return a * np.exp(-t / T) * np.cos(2 * np.pi * f * t + phi) + c

        p0 = (0.5, t_guess, float(scan["detuning_hz"]), 0.0, 0.5)
    else:

        def model(t, a, T, c):
            return a * np.exp(-t / T) + c

        p0 = (pops[0] - pops[-1], t_guess, pops[-1])
    popt, _ = curve_fit(model, tau, pops, p0=p0, maxfev=20000)
    fitted = float(popt[1])
    residual = float(np.sqrt(np.mean((model(tau, *popt) - pops) ** 2)))
    configured = scan["coherence"]["t1" if kind == "t1" else "t2"]
    return {
        "kind": kind,
        "fitted_seconds": fitted,
        "configured_seconds": float(configured),
        "relative_error": (
            abs(fitted - configured) / configured
            if np.isfinite(configured) and configured > 0
            else float("nan")
        ),
        "fit_residual": residual,
    }


register_task("coherence_fit", "fit")(_coherence_fit_run)


# ---- single-site process tomography --------------------------------------------------

#: Four preparations spanning the Bloch ball affinely: |0>, |1>, the
#: -Y state sx|0>, and an equatorial +-X state from sx played after a
#: virtual rz(pi/2). The frame shift must precede the pulse — the
#: virtual Z only retargets *later* pulses' rotation axes, so a
#: trailing "s" would be a physical no-op and collapse the prep
#: matrix to singular.
_PREP_WORDS: tuple[tuple[str, ...], ...] = ((), ("x", "x"), ("x",), ("s", "x"))


def ideal_ptm(unitary: np.ndarray) -> np.ndarray:
    """The 4x4 Pauli transfer matrix of a single-qubit unitary."""
    out = np.empty((4, 4), dtype=np.float64)
    for i, pi in enumerate(_PAULIS):
        for j, pj in enumerate(_PAULIS):
            out[i, j] = 0.5 * np.real(
                np.trace(pi @ unitary @ pj @ unitary.conj().T)
            )
    return out


def _tomography_scan_run(ctx, params, seed, upstream) -> dict:
    _require_direct(ctx, "tomography_scan")
    device = ctx.device
    site = int(params.get("site", 0))
    gate = str(params.get("gate", "x"))
    if gate not in _GATE_UNITARIES:
        raise PipelineError(
            f"tomography gate must be one of {sorted(_GATE_UNITARIES)}, "
            f"got {gate!r}"
        )
    from repro.primitives import Observable

    observables = [
        Observable.from_pauli("X"),
        Observable.from_pauli("Y"),
        Observable.z(0),
    ]
    pubs = []
    for include_gate in (False, True):
        for p, word in enumerate(_PREP_WORDS):
            sched = PulseSchedule(
                f"ptm-{gate}-{site}-p{p}{'g' if include_gate else ''}"
            )
            clifford_word_schedule(device, site, sched, word)
            # A prep's virtual-Z shifts the frame for *everything*
            # after it — left in place it would retarget the gate's
            # rotation axis per prep. Undo it: the compensating rz is
            # virtual, so the prepared state itself is untouched.
            n_s = sum(1 for letter in word if letter == "s")
            if n_s:
                device.calibrations.get("rz", (site,)).apply(
                    sched, [-n_s * np.pi / 2.0]
                )
            if include_gate and gate != "id":
                clifford_word_schedule(
                    device, site, sched, ("x", "x") if gate == "x" else ("x",)
                )
            _measure(device, site, sched)
            pubs.append((_program(sched), observables))
    res = ctx.estimator(shots=0, seed=seed).run(pubs)
    columns = [
        [1.0] + [float(v) for v in res[i].data.evs] for i in range(len(pubs))
    ]
    n = len(_PREP_WORDS)
    return {
        "site": site,
        "tomography_gate": gate,
        # Column p is (1, <X>, <Y>, <Z>) of preparation p ...
        "prep_columns": columns[:n],
        # ... and of preparation p followed by the gate.
        "gate_columns": columns[n:],
    }


register_task("tomography_scan", "experiment")(_tomography_scan_run)


def _tomography_fit_run(ctx, params, seed, upstream) -> dict:
    scan = _single_upstream(upstream, "tomography_fit", "tomography_gate")
    c = np.asarray(scan["prep_columns"], dtype=np.float64).T
    s = np.asarray(scan["gate_columns"], dtype=np.float64).T
    condition = float(np.linalg.cond(c))
    # Self-calibrated PTM: measured prep matrix inverts out, so
    # systematic prep/measure error cancels to first order.
    ptm = s @ np.linalg.inv(c)
    ideal = ideal_ptm(_GATE_UNITARIES[scan["tomography_gate"]])
    f_pro = float(np.trace(ideal.T @ ptm)) / 4.0
    return {
        "gate": scan["tomography_gate"],
        "ptm": [[float(v) for v in row] for row in ptm],
        "prep_condition_number": condition,
        "process_fidelity": f_pro,
        "average_gate_fidelity": (2.0 * f_pro + 1.0) / 3.0,
    }


register_task("tomography_fit", "fit")(_tomography_fit_run)


# ---- DAG builder ---------------------------------------------------------------------


def characterization_dag(
    *,
    site: int = 0,
    name: str = "characterization",
    rb_lengths: Sequence[int] = (1, 4, 8, 12),
    rb_samples: int = 2,
    interleaved_gate: str | None = None,
    coherence_kinds: Sequence[str] = ("t1", "t2", "t2echo"),
    max_delay_samples: int = 40000,
    coherence_points: int = 17,
    tomography_gate: str | None = "x",
    shots: int = 0,
) -> DAG:
    """The full characterization suite as one resumable DAG.

    Every scan is an independent root (they parallelize across the
    runner's ready set); each fit depends only on its scan's recorded
    result, so a resumed run replays completed scans from the store
    and never re-measures.
    """
    dag = DAG(name)
    rb_after = ["rb-standard"]
    dag.task(
        "rb-standard",
        "rb_scan",
        {
            "site": site,
            "lengths": list(rb_lengths),
            "samples": rb_samples,
            "shots": shots,
        },
    )
    if interleaved_gate is not None:
        dag.task(
            "rb-interleaved",
            "rb_scan",
            {
                "site": site,
                "lengths": list(rb_lengths),
                "samples": rb_samples,
                "shots": shots,
                "interleaved": interleaved_gate,
            },
        )
        rb_after.append("rb-interleaved")
    dag.task("rb-fit", "rb_fit", after=rb_after)
    for kind in coherence_kinds:
        dag.task(
            f"{kind}-scan",
            "coherence_scan",
            {
                "site": site,
                "kind": kind,
                "max_delay_samples": max_delay_samples,
                "points": coherence_points,
                "shots": shots,
            },
        )
        dag.task(f"{kind}-fit", "coherence_fit", after=[f"{kind}-scan"])
    if tomography_gate is not None:
        dag.task(
            "ptm-scan",
            "tomography_scan",
            {"site": site, "gate": tomography_gate},
        )
        dag.task("ptm-fit", "tomography_fit", after=["ptm-scan"])
    dag.validate()
    return dag
