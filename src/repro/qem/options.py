"""Composable mitigation options for the primitives tier.

``EstimatorOptions`` / ``SamplerOptions`` hold an ordered ``mitigation``
stack naming the techniques to compose, plus one options block per
technique. The *declared order* is the composition order: circuit
variants expand left-to-right (the first mitigator is the outermost
loop of the variant grid) and estimates fold back right-to-left, so

``EstimatorOptions(mitigation=("zne", "twirling", "readout"))``

means: for every ZNE stretch factor, run every twirling randomization;
fold by confusion-inverting each variant's distribution, averaging the
twirls within each stretch factor, and extrapolating the per-factor
means to zero noise. Declaring ``("twirling", "zne")`` instead
extrapolates *within* each randomization and averages the extrapolated
values — identical for linear folds, deliberately different for
nonlinear ones.

Every mitigator declares its ``overhead`` — the circuit/shot multiplier
it costs — and :attr:`EstimatorOptions.overhead` is their product, so a
caller can budget a mitigated sweep before running it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ValidationError

#: Techniques the Estimator composes (ZNE is an expectation-value
#: technique; samplers only symmetrize/invert distributions).
ESTIMATOR_MITIGATORS = ("zne", "twirling", "readout")
SAMPLER_MITIGATORS = ("twirling", "readout")


@dataclass(frozen=True)
class ZNEOptions:
    """Zero-noise extrapolation via pulse stretching.

    ``stretch_factors`` must start at ``1.0`` (the unstretched circuit)
    and increase strictly; ``extrapolation`` picks the ``c -> 0`` fold:
    ``"linear"`` (least-squares line), ``"exponential"``
    (``a + b*exp(-g*c)``, falling back to linear when the fit cannot
    converge) or ``"richardson"`` (exact polynomial through all
    factors).
    """

    stretch_factors: tuple[float, ...] = (1.0, 1.5, 2.0)
    extrapolation: str = "linear"

    def __post_init__(self) -> None:
        factors = tuple(float(f) for f in self.stretch_factors)
        object.__setattr__(self, "stretch_factors", factors)
        if len(factors) < 2:
            raise ValidationError(
                "ZNE needs at least two stretch factors to extrapolate"
            )
        if any(not math.isfinite(f) or f < 1.0 for f in factors):
            raise ValidationError(
                f"stretch factors must be finite and >= 1, got {factors}"
            )
        if factors[0] != 1.0:
            raise ValidationError(
                "the first stretch factor must be 1.0 (the unstretched "
                f"circuit), got {factors[0]}"
            )
        if list(factors) != sorted(set(factors)):
            raise ValidationError(
                f"stretch factors must be strictly increasing, got {factors}"
            )
        if self.extrapolation not in ("linear", "exponential", "richardson"):
            raise ValidationError(
                f"unknown extrapolation {self.extrapolation!r}; expected "
                "'linear', 'exponential' or 'richardson'"
            )

    @property
    def overhead(self) -> float:
        """Circuit multiplier: one execution per stretch factor."""
        return float(len(self.stretch_factors))


@dataclass(frozen=True)
class TwirlingOptions:
    """Pauli (bit-flip) twirling of the measurement.

    Each randomization conjugates the final measurement by X on a
    random subset of measured slots — physically an X pulse before
    readout, algebraically a sign-tracked frame change of the
    observable — which symmetrizes coherent/asymmetric readout bias
    into unbiased stochastic noise. With ``balanced=True`` (default)
    the flip masks enumerate all ``2**n_slots`` patterns whenever that
    many fit in ``num_randomizations`` — an exhaustive twirl whose
    average is exact, not sampled.
    """

    num_randomizations: int = 8
    balanced: bool = True

    def __post_init__(self) -> None:
        n = int(self.num_randomizations)
        object.__setattr__(self, "num_randomizations", n)
        if n < 1:
            raise ValidationError(
                f"num_randomizations must be >= 1, got {self.num_randomizations}"
            )

    @property
    def overhead(self) -> float:
        """Circuit multiplier: one execution per randomization."""
        return float(self.num_randomizations)


@dataclass(frozen=True)
class ReadoutOptions:
    """Confusion-matrix inversion of measured distributions.

    ``models`` optionally overrides the per-slot
    :class:`~repro.sim.measurement.ReadoutModel` sequence; by default
    the executor's configured readout models are used (exact inversion
    on the simulator).
    """

    models: tuple | None = None

    def __post_init__(self) -> None:
        if self.models is not None:
            object.__setattr__(self, "models", tuple(self.models))

    @property
    def overhead(self) -> float:
        """Pure post-processing: no extra circuits."""
        return 1.0


def _coerce_stack(mitigation, known: tuple[str, ...]) -> tuple[str, ...]:
    if isinstance(mitigation, str):
        mitigation = (mitigation,)
    stack = tuple(str(m) for m in mitigation)
    for name in stack:
        if name not in known:
            raise ValidationError(
                f"unknown mitigator {name!r}; expected a subset of {known}"
            )
    if len(set(stack)) != len(stack):
        raise ValidationError(f"mitigation stack repeats a technique: {stack}")
    return stack


@dataclass(frozen=True)
class EstimatorOptions:
    """Mitigation stack for :class:`~repro.primitives.estimator.Estimator`.

    An *empty* stack is meaningful: the estimator then evaluates from
    the exact post-readout distribution — the noisy, unmitigated
    baseline every mitigated run is scored against — instead of the
    default pre-readout convention.
    """

    mitigation: tuple[str, ...] = ()
    zne: ZNEOptions = field(default_factory=ZNEOptions)
    twirling: TwirlingOptions = field(default_factory=TwirlingOptions)
    readout: ReadoutOptions = field(default_factory=ReadoutOptions)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mitigation", _coerce_stack(self.mitigation, ESTIMATOR_MITIGATORS)
        )

    @property
    def overhead(self) -> float:
        """Total circuit multiplier of the declared stack (product)."""
        out = 1.0
        for name in self.mitigation:
            out *= getattr(self, name).overhead
        return out


@dataclass(frozen=True)
class SamplerOptions:
    """Mitigation stack for :class:`~repro.primitives.sampler.Sampler`.

    Samplers mitigate *distributions*, so only ``twirling`` and
    ``readout`` compose here (ZNE is an expectation-value technique).
    The mitigated distributions land in ``quasi_dists``; ``counts`` /
    ``probabilities`` keep reporting the raw base execution.
    """

    mitigation: tuple[str, ...] = ()
    twirling: TwirlingOptions = field(default_factory=TwirlingOptions)
    readout: ReadoutOptions = field(default_factory=ReadoutOptions)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mitigation", _coerce_stack(self.mitigation, SAMPLER_MITIGATORS)
        )

    @property
    def overhead(self) -> float:
        """Total circuit multiplier of the declared stack (product)."""
        out = 1.0
        for name in self.mitigation:
            out *= getattr(self, name).overhead
        return out
