"""Pauli (bit-flip) twirling of the measurement frame.

A twirl randomization conjugates the final Z-basis measurement by X on
a subset of measured slots: physically, a calibrated ``x`` pulse lands
on each flipped site *just before* the measurement block; algebraically,
the estimated observable rides along in the flipped frame —
``X Z X = -Z`` / ``X Y X = -Y`` — so every randomization still
estimates the same quantity. Averaging over randomizations symmetrizes
whatever is not covariant under the twirl: an asymmetric confusion
matrix (``p01 != p10``) becomes an unbiased symmetric one, and coherent
readout bias turns into zero-mean stochastic noise.

Schedule surgery, not circuit surgery: the primitives tier hands us
*compiled* pulse schedules, so :func:`twirl_schedule` splits the
schedule at the earliest :class:`~repro.core.instructions.Capture`,
re-inserts the circuit half verbatim, appends the flip pulses from the
device's calibrated ``"x"`` entries, and re-inserts the measurement
half shifted by the flip-pulse duration — valid by construction, and
the twirl pulses are the device's own calibrated gates.
"""

from __future__ import annotations

import numpy as np

from repro.core.instructions import Capture
from repro.core.schedule import PulseSchedule
from repro.errors import ValidationError
from repro.primitives.observables import Observable
from repro.qem.options import TwirlingOptions


def measured_slots(schedule: PulseSchedule) -> list[tuple[int, int]]:
    """``(memory_slot, site)`` pairs of *schedule*'s captures, slot-ordered."""
    out = []
    for item in schedule.instructions_of(Capture):
        capture = item.instruction
        targets = capture.port.targets
        if len(targets) != 1:
            raise ValidationError(
                f"capture port {capture.port.name!r} must target exactly "
                "one site"
            )
        out.append((capture.memory_slot, targets[0]))
    return sorted(out)


def twirl_masks(
    n_slots: int, options: TwirlingOptions, rng: np.random.Generator
) -> list[tuple[bool, ...]]:
    """The flip masks of one twirl, one per randomization.

    With ``options.balanced`` and ``2**n_slots <= num_randomizations``
    the masks enumerate every flip pattern — an exhaustive twirl whose
    average symmetrizes exactly; otherwise ``num_randomizations``
    uniform random masks.
    """
    if n_slots < 1:
        raise ValidationError("twirling needs at least one measured slot")
    if options.balanced and 2**n_slots <= options.num_randomizations:
        return [
            tuple(bool((pattern >> bit) & 1) for bit in range(n_slots))
            for pattern in range(2**n_slots)
        ]
    return [
        tuple(bool(b) for b in rng.integers(0, 2, size=n_slots))
        for _ in range(options.num_randomizations)
    ]


def twirl_schedule(
    schedule: PulseSchedule,
    mask,
    device,
    sites,
) -> PulseSchedule:
    """*schedule* with a calibrated X inserted pre-measurement on every
    flipped site; ``sites[i]`` is the device site of measured slot *i*."""
    mask = tuple(bool(b) for b in mask)
    if len(mask) != len(sites):
        raise ValidationError(
            f"twirl mask covers {len(mask)} slots for {len(sites)} "
            "measured sites"
        )
    if not any(mask):
        return schedule
    items = schedule.ordered()
    capture_starts = [
        it.t0 for it in items if isinstance(it.instruction, Capture)
    ]
    if not capture_starts:
        raise ValidationError(
            "twirling needs a measuring schedule (no capture found)"
        )
    split = min(capture_starts)
    entries = [
        device.calibrations.get("x", (site,))
        for site, flip in zip(sites, mask)
        if flip
    ]
    shift = max(entry.duration for entry in entries)
    out = PulseSchedule(f"{schedule.name}@twirl")
    for item in items:
        if item.t0 < split:
            out.insert(item.t0, item.instruction)
    for entry in entries:
        entry.apply(out, [])
    for item in items:
        if item.t0 >= split:
            out.insert(item.t0 + shift, item.instruction)
    return out


def conjugate_by_x(observable: Observable, mask) -> Observable:
    """*observable* pushed through the twirl frame: per flipped slot,
    ``Z -> -Z`` and ``Y -> -Y`` (X commutes). Same term structure, only
    signs move — the Observable algebra keeps the bookkeeping exact."""
    mask = tuple(bool(b) for b in mask)
    terms: dict = {}
    for key, coeff in observable.terms.items():
        sign = 1.0
        for slot, pauli in key:
            if slot < len(mask) and mask[slot] and pauli in ("Y", "Z"):
                sign = -sign
        terms[key] = terms.get(key, 0.0) + coeff * sign
    return Observable(terms)


def unflip_distribution(distribution, mask) -> dict[str, float]:
    """Classically undo a twirl's bit flips on an outcome distribution
    (the sampler-side fold: flip the flipped bits back, then average)."""
    mask = tuple(bool(b) for b in mask)
    if not any(mask):
        return dict(distribution)
    out: dict[str, float] = {}
    for key, p in distribution.items():
        if len(key) != len(mask):
            raise ValidationError(
                f"outcome {key!r} has {len(key)} bits for a "
                f"{len(mask)}-slot twirl mask"
            )
        flipped = "".join(
            ("1" if bit == "0" else "0") if mask[i] else bit
            for i, bit in enumerate(key)
        )
        out[flipped] = out.get(flipped, 0.0) + p
    return out
