"""repro.qem — composable error mitigation & characterization.

The subsystem has two halves:

* **Mitigation** — a declarative options stack
  (:class:`EstimatorOptions` / :class:`SamplerOptions`) that the
  primitives route through :mod:`repro.qem.engine`: zero-noise
  extrapolation via pulse stretching (:mod:`repro.qem.zne`), Pauli
  twirling over the measurement frame (:mod:`repro.qem.twirling`) and
  confusion-matrix readout inversion (:mod:`repro.qem.readout`,
  absorbed from the deprecated ``repro.mitigation`` package). Each
  mitigator declares its ``overhead`` (circuit multiplier) and the
  declared order is the composition order.

* **Characterization** — standard/interleaved randomized
  benchmarking, T1/T2/T2echo coherence fits and single-site process
  tomography (:mod:`repro.qem.characterization`), each registered as
  a :mod:`repro.pipeline` task kind so experiments run as durable,
  resumable DAG nodes.

Ground-truth helpers for validating mitigated estimates against the
exact Lindblad engine live in :mod:`repro.sim.ground_truth` and are
re-exported here.
"""

from __future__ import annotations

from repro.qem import characterization, engine, readout, twirling, zne
from repro.qem.characterization import characterization_dag
from repro.qem.engine import run_mitigated_estimator, run_mitigated_sampler
from repro.qem.options import (
    ESTIMATOR_MITIGATORS,
    SAMPLER_MITIGATORS,
    EstimatorOptions,
    ReadoutOptions,
    SamplerOptions,
    TwirlingOptions,
    ZNEOptions,
)
from repro.qem.readout import (
    MitigatedResult,
    MitigationValidation,
    ReadoutCalibration,
    measure_confusion,
    mitigate_counts,
    mitigate_distribution,
    total_variation_distance,
    validate_readout_mitigation,
)
from repro.qem.twirling import twirl_masks, twirl_schedule
from repro.qem.zne import extrapolate_to_zero, stretch_schedule
from repro.sim.ground_truth import (
    exact_distribution,
    exact_expectation,
    noiseless_twin,
    reference_expectation,
)

__all__ = [
    "ESTIMATOR_MITIGATORS",
    "SAMPLER_MITIGATORS",
    "EstimatorOptions",
    "MitigatedResult",
    "MitigationValidation",
    "ReadoutCalibration",
    "ReadoutOptions",
    "SamplerOptions",
    "TwirlingOptions",
    "ZNEOptions",
    "characterization",
    "characterization_dag",
    "engine",
    "exact_distribution",
    "exact_expectation",
    "extrapolate_to_zero",
    "measure_confusion",
    "mitigate_counts",
    "mitigate_distribution",
    "noiseless_twin",
    "readout",
    "reference_expectation",
    "run_mitigated_estimator",
    "run_mitigated_sampler",
    "stretch_schedule",
    "total_variation_distance",
    "twirl_masks",
    "twirl_schedule",
    "twirling",
    "validate_readout_mitigation",
    "zne",
]
