"""Zero-noise extrapolation: the ``c -> 0`` fold.

The noise-scaling half (pulse stretching) lives in
:mod:`repro.core.stretch`; this module owns the statistical half —
fitting the measured expectation values at stretch factors ``c_i >= 1``
and reporting the extrapolated value at ``c = 0``.
"""

from __future__ import annotations

import numpy as np

from repro.core.stretch import (  # noqa: F401 — re-exported: qem is the
    coerce_stretch_factor,  # public face of the stretch machinery
    stretch_schedule,
    stretch_waveform,
)
from repro.errors import ValidationError


def _linear(factors: np.ndarray, values: np.ndarray) -> float:
    slope, intercept = np.polyfit(factors, values, 1)
    return float(intercept)


def _richardson(factors: np.ndarray, values: np.ndarray) -> float:
    # Lagrange interpolation evaluated at c = 0: exact for a polynomial
    # of degree len(factors) - 1 — the classic Richardson weights.
    out = 0.0
    for i, ci in enumerate(factors):
        weight = 1.0
        for j, cj in enumerate(factors):
            if j != i:
                weight *= cj / (cj - ci)
        out += weight * values[i]
    return float(out)


def _exponential(factors: np.ndarray, values: np.ndarray) -> float:
    # v(c) = a + b * exp(-g * c); decoherence noise is exponential in
    # circuit duration, so this model is near-exact for T1/T2-limited
    # error. Falls back to the linear fold when the fit cannot converge
    # (degenerate data, too few points for three parameters).
    from scipy.optimize import curve_fit

    def model(c, a, b, g):
        return a + b * np.exp(-g * c)

    if len(factors) < 3:
        return _linear(factors, values)
    slope, intercept = np.polyfit(factors, values, 1)
    p0 = (float(values[-1]), float(values[0] - values[-1]), 0.5)
    try:
        params, _ = curve_fit(model, factors, values, p0=p0, maxfev=4000)
    except (RuntimeError, ValueError):
        return _linear(factors, values)
    return float(model(0.0, *params))


_FOLDS = {
    "linear": _linear,
    "exponential": _exponential,
    "richardson": _richardson,
}


def extrapolate_to_zero(
    factors, values, method: str = "linear"
) -> float:
    """Extrapolate *values* measured at stretch *factors* to ``c = 0``."""
    fold = _FOLDS.get(method)
    if fold is None:
        raise ValidationError(
            f"unknown extrapolation {method!r}; expected one of {sorted(_FOLDS)}"
        )
    cs = np.asarray(list(factors), dtype=np.float64)
    vs = np.asarray(list(values), dtype=np.float64)
    if cs.shape != vs.shape or cs.ndim != 1 or cs.size < 2:
        raise ValidationError(
            "extrapolation needs matching 1-D factors/values with at "
            f"least two points, got shapes {cs.shape} and {vs.shape}"
        )
    if len(set(cs.tolist())) != cs.size:
        raise ValidationError(f"stretch factors must be distinct, got {cs}")
    return fold(cs, vs)
