"""Process-wide metrics: counters, gauges, histograms, exposition.

A :class:`MetricsRegistry` owns metric *families* (one name, one
type, one help string) holding one instrument per distinct label
set. The module-level :data:`REGISTRY` is the process default; the
serving layer, the runtime telemetry, and every cache
(:class:`~repro.sim.evolve.PropagatorCache`,
:class:`~repro.serving.cache.CompileCache`, the JIT artifact LRU,
the primitives template memo) report into it, so a single
:func:`exposition` call emits one Prometheus text page for the
whole process.

Conventions (see the README "Observability" section):

* metric names are ``repro_<area>_<noun>[_<unit>][_total]`` —
  e.g. ``repro_cache_hits_total``, ``repro_sim_kernel_seconds``;
* label keys are sorted lexicographically in the exposition, so
  output is byte-stable for a given registry state;
* durations are seconds, sizes are entries/bytes as named.
"""

from __future__ import annotations

import math
import re
import threading
import weakref
from bisect import bisect_left
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "CacheStats",
    "MetricsRegistry",
    "REGISTRY",
    "exposition",
    "register_cache",
    "DEFAULT_TIME_BUCKETS_S",
]

# Log-spaced 2 µs .. ~268 s; shared with the serving layer's
# LatencyHistogram (formerly serving.metrics.BUCKET_BOUNDS_S).
DEFAULT_TIME_BUCKETS_S = tuple(2e-6 * 4**i for i in range(14))

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via repr."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape a HELP string per the Prometheus text format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in labels
    )
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value; thread-safe."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(
                f"counters only go up; got inc({amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down; thread-safe."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    *buckets* are strictly increasing finite upper bounds; an
    implicit ``+Inf`` bucket catches the overflow. Thread-safe;
    :meth:`observe` is a bisect plus two adds under one lock.
    """

    __slots__ = ("bounds", "_counts", "_lock", "_count", "_sum", "_max")

    def __init__(
        self, buckets: Iterable[float] = DEFAULT_TIME_BUCKETS_S
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValidationError("histogram needs >= 1 bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError(
                "bucket bounds must be strictly increasing"
            )
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot = +Inf
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum_value(self) -> float:
        return self._sum

    @property
    def max_value(self) -> float:
        return self._max

    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``[(upper_bound, cumulative_count)]`` ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds + (math.inf,), counts):
            running += n
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing quantile *q*.

        Returns the last finite bound when *q* lands in the
        overflow bucket, and 0.0 with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            if running >= rank:
                return bound
        return self.bounds[-1]


_TYPE_FOR = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    __slots__ = ("name", "type", "help", "children", "buckets")

    def __init__(
        self, name: str, type_: str, help_: str, buckets: Any
    ) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.buckets = buckets
        # label tuple (sorted) -> instrument
        self.children: dict[tuple[tuple[str, str], ...], Any] = {}


def _label_key(
    labels: Mapping[str, str] | None,
) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    items = []
    for k in sorted(labels):
        if not _LABEL_NAME_RE.match(k):
            raise ValidationError(f"invalid label name {k!r}")
        items.append((k, str(labels[k])))
    return tuple(items)


class MetricsRegistry:
    """Families of named instruments plus pull-style collectors.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create an
    instrument for (name, labels); re-registering a name with a
    different type raises. Collectors are callables returning
    ``(name, type, labels, value)`` sample tuples evaluated at
    exposition time — used for wrapping pre-existing stat holders
    (caches, Telemetry, ServingMetrics) without double bookkeeping.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], Any]] = []
        self._autonames: dict[str, int] = {}
        self._prune_at = 64

    # -- instrument management -------------------------------------------

    def _family(
        self, name: str, type_: str, help_: str, buckets: Any = None
    ) -> _Family:
        if not _METRIC_NAME_RE.match(name):
            raise ValidationError(f"invalid metric name {name!r}")
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = _Family(name, type_, help_, buckets)
                self._families[name] = fam
            elif fam.type != type_:
                raise ValidationError(
                    f"metric {name!r} already registered as "
                    f"{fam.type}, not {type_}"
                )
            return fam

    def _child(
        self,
        name: str,
        type_: str,
        help_: str,
        labels: Mapping[str, str] | None,
        buckets: Any = None,
    ) -> Any:
        fam = self._family(name, type_, help_, buckets)
        key = _label_key(labels)
        with self._lock:
            inst = fam.children.get(key)
            if inst is None:
                if type_ == "histogram":
                    inst = Histogram(
                        fam.buckets
                        if fam.buckets is not None
                        else DEFAULT_TIME_BUCKETS_S
                    )
                else:
                    inst = _TYPE_FOR[type_]()
                fam.children[key] = inst
            return inst

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        return self._child(name, "counter", help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        return self._child(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        return self._child(name, "histogram", help, labels, buckets)

    # -- collectors ------------------------------------------------------

    def register_collector(self, fn: Callable[[], Any]) -> None:
        """Add a callable yielding ``(name, type, labels, value)``.

        A collector returning ``None`` is treated as dead and
        dropped (used by the weakref cache collectors).
        """
        with self._lock:
            self._collectors.append(fn)
            if len(self._collectors) > self._prune_at:
                self._prune_locked()

    def unregister_collector(self, fn: Callable[[], Any]) -> None:
        with self._lock:
            try:
                self._collectors.remove(fn)
            except ValueError:
                pass

    def _prune_locked(self) -> None:
        alive = []
        for fn in self._collectors:
            probe = getattr(fn, "_obs_alive", None)
            if probe is not None and not probe():
                continue
            alive.append(fn)
        self._collectors = alive
        self._prune_at = max(64, 2 * len(alive))

    def autoname(self, kind: str) -> str:
        """Process-unique default instance name like ``compile-2``."""
        with self._lock:
            n = self._autonames.get(kind, 0)
            self._autonames[kind] = n + 1
            return f"{kind}-{n}"

    def register_cache(
        self, name: str, cache: Any, kind: str = ""
    ) -> str:
        """Expose a cache's ``stats()`` as gauge/counter series.

        Holds only a weak reference; the collector evaporates when
        the cache is garbage-collected. Emits
        ``repro_cache_{hits,misses,evictions}_total`` plus
        ``repro_cache_entries`` / ``repro_cache_capacity``, all
        labelled ``{cache=name, kind=kind}``.
        """
        ref = weakref.ref(cache)
        labels = {"cache": name}
        if kind:
            labels["kind"] = kind

        def collect() -> list[tuple[str, str, dict[str, str], float]] | None:
            obj = ref()
            if obj is None:
                return None
            stats = obj.stats() if callable(obj.stats) else dict(obj.stats)
            out = []
            for key in ("hits", "misses", "evictions"):
                if key in stats:
                    out.append(
                        (
                            f"repro_cache_{key}_total",
                            "counter",
                            labels,
                            float(stats[key]),
                        )
                    )
            if stats.get("size") is not None:
                out.append(
                    (
                        "repro_cache_entries",
                        "gauge",
                        labels,
                        float(stats["size"]),
                    )
                )
            capacity = stats.get("capacity")
            if capacity is not None:
                out.append(
                    (
                        "repro_cache_capacity",
                        "gauge",
                        labels,
                        float(capacity) if capacity != math.inf else math.inf,
                    )
                )
            return out

        collect._obs_alive = lambda: ref() is not None  # type: ignore[attr-defined]
        self.register_collector(collect)
        return name

    # -- exposition ------------------------------------------------------

    _HELP_FOR_COLLECTED = {
        "repro_cache_hits_total": "Cache lookup hits.",
        "repro_cache_misses_total": "Cache lookup misses.",
        "repro_cache_evictions_total": "Cache LRU evictions.",
        "repro_cache_entries": "Entries currently cached.",
        "repro_cache_capacity": "Configured cache capacity.",
    }

    def collect(
        self,
    ) -> dict[str, tuple[str, str, dict[tuple, Any]]]:
        """Snapshot: name -> (type, help, {label_key: value-ish}).

        Histogram children stay as :class:`Histogram` objects;
        scalar children become floats.
        """
        out: dict[str, tuple[str, str, dict[tuple, Any]]] = {}
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors)
        for fam in families:
            children: dict[tuple, Any] = {}
            for key, inst in list(fam.children.items()):
                if isinstance(inst, Histogram):
                    children[key] = inst
                else:
                    children[key] = inst.value
            out[fam.name] = (fam.type, fam.help, children)
        dead = []
        for fn in collectors:
            samples = fn()
            if samples is None:
                dead.append(fn)
                continue
            for name, type_, labels, value in samples:
                entry = out.get(name)
                if entry is None:
                    help_ = self._HELP_FOR_COLLECTED.get(name, "")
                    entry = out[name] = (type_, help_, {})
                entry[2][_label_key(labels)] = value
        for fn in dead:
            self.unregister_collector(fn)
        return out

    def exposition(self) -> str:
        """One Prometheus text-format page for the whole registry."""
        lines: list[str] = []
        collected = self.collect()
        for name in sorted(collected):
            type_, help_, children = collected[name]
            if help_:
                lines.append(f"# HELP {name} {escape_help(help_)}")
            lines.append(f"# TYPE {name} {type_}")
            for key in sorted(children):
                value = children[key]
                if isinstance(value, Histogram):
                    self._render_histogram(lines, name, key, value)
                else:
                    lines.append(
                        f"{name}{_label_suffix(key)} "
                        f"{_format_value(float(value))}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    @staticmethod
    def _render_histogram(
        lines: list[str],
        name: str,
        key: tuple[tuple[str, str], ...],
        hist: Histogram,
    ) -> None:
        for bound, cum in hist.cumulative_buckets():
            le = "+Inf" if bound == math.inf else _format_value(bound)
            bucket_key = key + (("le", le),)
            lines.append(
                f"{name}_bucket{_label_suffix(bucket_key)} {cum}"
            )
        lines.append(
            f"{name}_sum{_label_suffix(key)} "
            f"{_format_value(hist.sum_value)}"
        )
        lines.append(f"{name}_count{_label_suffix(key)} {hist.count}")

    def reset(self) -> None:
        """Drop every family and collector (tests only)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()
            self._autonames.clear()
            self._prune_at = 64


class CacheStats(dict):
    """Mutable hit/miss/eviction counters that double as ``stats()``.

    Subclasses ``dict`` so existing ``cache.stats["hits"]`` access
    keeps working, while *calling* it yields the uniform shape
    shared by every cache in the process::

        {"hits": int, "misses": int, "evictions": int,
         "size": int, "capacity": int | None}

    ``aliases`` maps the uniform keys onto legacy dict keys (the
    JIT compiler counts ``compilations``/``cache_hits``).
    """

    __slots__ = ("_size_fn", "_capacity_fn", "_aliases")

    def __init__(
        self,
        size_fn: Callable[[], int],
        capacity_fn: Callable[[], int | None],
        aliases: Mapping[str, str] | None = None,
        **counters: int,
    ) -> None:
        super().__init__(counters)
        self._size_fn = size_fn
        self._capacity_fn = capacity_fn
        self._aliases = dict(aliases or {})

    def __call__(self) -> dict[str, int | None]:
        out: dict[str, int | None] = {}
        for key in ("hits", "misses", "evictions"):
            out[key] = int(self.get(self._aliases.get(key, key), 0))
        out["size"] = int(self._size_fn())
        capacity = self._capacity_fn()
        out["capacity"] = None if capacity is None else int(capacity)
        return out


#: The process-default registry every built-in subsystem reports to.
REGISTRY = MetricsRegistry()


def exposition() -> str:
    """Prometheus text page for the default :data:`REGISTRY`."""
    return REGISTRY.exposition()


def register_cache(name: str, cache: Any, kind: str = "") -> str:
    """Register *cache* on the default :data:`REGISTRY`."""
    return REGISTRY.register_cache(name, cache, kind=kind)
