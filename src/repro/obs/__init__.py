"""Unified observability: tracing, metrics, and profiling.

The paper's QDMI workflow calls out telemetry-driven error
mitigation (§5.3); closing that loop — and serving heavy traffic at
all — needs one place to ask *where time and cache capacity go*.
This package is that seam:

* :mod:`repro.obs.tracing` — :func:`span` / :func:`trace`: a span
  tree over compile → dispatch → simulate, exportable as a Chrome
  ``trace_event`` JSON or an indented text dump;
* :mod:`repro.obs.metrics` — the global :data:`REGISTRY` of
  counters/gauges/histograms plus pull-collectors for every cache
  and the serving layer; :func:`exposition` renders one Prometheus
  text page for the whole process;
* :mod:`repro.obs.profile` — per-batch sim-kernel records (stack
  size, dimension, squaring levels, dedup ratio, GEMM seconds)
  surfaced as ``result.metadata["profile"]``.

Everything is near-zero cost when disabled; the gate is
``benchmarks/bench_obs_overhead.py``.
"""

from repro.obs.metrics import (
    REGISTRY,
    CacheStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition,
    register_cache,
)
from repro.obs.profile import (
    disable_profiling,
    enable_profiling,
    profiling_enabled,
)
from repro.obs.tracing import (
    Span,
    Trace,
    current_span,
    current_trace,
    disable_tracing,
    enable_tracing,
    span,
    trace,
    tracing_enabled,
)

__all__ = [
    "Span",
    "Trace",
    "span",
    "trace",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_span",
    "current_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CacheStats",
    "REGISTRY",
    "exposition",
    "register_cache",
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
]
