"""Structured tracing: spans, thread-local context, Chrome export.

One :func:`trace` block (or an explicit :func:`enable_tracing` /
:func:`disable_tracing` pair) captures every :func:`span` opened
anywhere in the process — across threads — into a single
:class:`Trace`. A span records wall-clock start/stop via
``time.perf_counter`` plus arbitrary attributes, and nests under
whichever span is open on the *same thread*, so one
``Estimator.run`` call yields a tree covering
adapter → compile → specialize → cache lookup → ``execute_batch`` →
expm kernels → measurement.

Export formats:

* :meth:`Trace.tree_str` — human-readable indented tree dump;
* :meth:`Trace.chrome_trace` — Chrome ``trace_event`` JSON
  (load in ``chrome://tracing`` or https://ui.perfetto.dev).

Cost model: when tracing is disabled (the default) :func:`span`
returns a shared no-op singleton, so an instrumented call site costs
one global-flag check plus a trivial ``with`` enter/exit — gated
below 2% end-to-end by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Span",
    "Trace",
    "span",
    "trace",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_span",
    "current_trace",
]

_state_lock = threading.Lock()
_tls = threading.local()

# Module-level fast path: ``span()`` reads this one global before
# touching anything else. Rebinding it is atomic under the GIL.
_enabled = False
_active_trace: "Trace | None" = None


class Span:
    """One timed, attributed stage of a traced operation.

    Use as a context manager (normally via :func:`span`). On entry
    the span pushes itself onto the calling thread's span stack; on
    exit it records its duration and attaches itself to its parent
    (or, for a root span, to the active :class:`Trace`).
    """

    __slots__ = (
        "name",
        "attrs",
        "children",
        "thread_id",
        "start_s",
        "end_s",
        "_trace",
    )

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.thread_id = threading.get_ident()
        self.start_s = 0.0
        self.end_s = 0.0
        self._trace = _active_trace

    @property
    def duration_s(self) -> float:
        """Wall-clock duration in seconds (0.0 while still open)."""
        if self.end_s < self.start_s:
            return 0.0
        return self.end_s - self.start_s

    def annotate(self, **attrs: Any) -> "Span":
        """Attach extra attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.end_s = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = getattr(_tls, "stack", None) or []
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exit; recover best-effort
            stack.remove(self)
        parent = stack[-1] if stack else None
        if parent is not None and parent._trace is self._trace:
            parent.children.append(self)
        elif self._trace is not None:
            self._trace._add_root(self)
        return False

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
            f"{len(self.children)} children)"
        )


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs: Any) -> Any:
    """Open a named span under the current thread's active span.

    Returns a context manager. With tracing disabled this is a
    near-free call returning a shared no-op singleton.
    """
    if not _enabled:
        return _NOOP_SPAN
    return Span(name, attrs)


def current_span() -> Span | None:
    """The innermost open :class:`Span` on this thread, if any."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


class Trace:
    """A collection of root spans captured while tracing was on."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.roots: list[Span] = []
        self.origin_s = time.perf_counter()

    def _add_root(self, sp: Span) -> None:
        with self._lock:
            self.roots.append(sp)

    def spans(self) -> Iterator[Span]:
        """All completed spans in this trace, depth-first."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """Every span in the trace with the given name."""
        return [sp for sp in self.spans() if sp.name == name]

    def tree_str(self, *, attrs: bool = True) -> str:
        """Human-readable indented dump of the span forest."""
        lines: list[str] = []
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            self._render(root, "", lines, attrs)
        return "\n".join(lines)

    def _render(
        self, sp: Span, indent: str, lines: list[str], attrs: bool
    ) -> None:
        label = f"{indent}- {sp.name}  {sp.duration_s * 1e3:.3f} ms"
        if attrs and sp.attrs:
            kv = ", ".join(f"{k}={v!r}" for k, v in sp.attrs.items())
            label += f"  [{kv}]"
        lines.append(label)
        for child in sp.children:
            self._render(child, indent + "  ", lines, attrs)

    def chrome_trace(self) -> dict[str, Any]:
        """Chrome ``trace_event`` document (dict; see module doc)."""
        events: list[dict[str, Any]] = []
        tid_map: dict[int, int] = {}
        for sp in self.spans():
            tid = tid_map.setdefault(sp.thread_id, len(tid_map) + 1)
            events.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "ts": (sp.start_s - self.origin_s) * 1e6,
                    "dur": sp.duration_s * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": {k: _jsonable(v) for k, v in sp.attrs.items()},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def chrome_trace_json(self, **dumps_kwargs: Any) -> str:
        """The :meth:`chrome_trace` document serialized to JSON."""
        return json.dumps(self.chrome_trace(), **dumps_kwargs)

    def save(self, path: str) -> None:
        """Write the Chrome trace JSON to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.chrome_trace_json())


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _enabled


def current_trace() -> Trace | None:
    """The :class:`Trace` currently receiving spans, if any."""
    return _active_trace


def enable_tracing() -> Trace:
    """Start recording spans into a fresh :class:`Trace`.

    Returns the new active trace. Any previously active trace stops
    receiving spans (spans already open keep reporting to the trace
    they were created under).
    """
    global _enabled, _active_trace
    with _state_lock:
        tr = Trace()
        _active_trace = tr
        _enabled = True
        return tr


def disable_tracing() -> Trace | None:
    """Stop recording spans; returns the trace that was active."""
    global _enabled, _active_trace
    with _state_lock:
        tr = _active_trace
        _enabled = False
        _active_trace = None
        return tr


@contextmanager
def trace() -> Iterator[Trace]:
    """Context manager: record all spans in the block into a Trace.

    >>> with trace() as tr:          # doctest: +SKIP
    ...     estimator.run(pubs)
    >>> print(tr.tree_str())         # doctest: +SKIP
    """
    global _enabled, _active_trace
    with _state_lock:
        prev_enabled, prev_trace = _enabled, _active_trace
        tr = Trace()
        _active_trace = tr
        _enabled = True
    try:
        yield tr
    finally:
        with _state_lock:
            _enabled, _active_trace = prev_enabled, prev_trace
