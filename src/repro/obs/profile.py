"""Profiling hooks for the simulation hot paths.

Two tiers, chosen so the always-on part stays out of inner loops:

* **Registry histograms** — every call to
  :func:`~repro.sim.evolve.batched_propagators` /
  :func:`~repro.sim.evolve.batched_expm` reports its wall time and
  stack size into ``repro_sim_kernel_seconds`` /
  ``repro_sim_kernel_slices`` (one observe per *batch*, not per
  slice, so the cost is a few microseconds against millisecond-scale
  GEMMs).
* **Per-batch records** — with :func:`enable_profiling` on,
  kernel and cache-dedup records accumulate in a thread-local sink
  that :meth:`~repro.sim.executor.ScheduleExecutor.execute_batch`
  drains into each result's ``metadata["profile"]``: stack sizes,
  Hilbert dimension, squaring levels, dedup ratio, and GEMM seconds.

Disabled (the default), the per-record path is one module-global
check; the overhead gate lives in ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.metrics import REGISTRY

__all__ = [
    "enable_profiling",
    "disable_profiling",
    "profiling_enabled",
    "kernel",
    "cache_batch",
    "begin_collect",
    "end_collect",
    "summarize",
]

_enabled = False
_tls = threading.local()

# Powers of 4 from 1 to ~262k: batch ("stack") sizes.
_SLICE_BUCKETS = tuple(float(4**i) for i in range(10))


def enable_profiling() -> None:
    """Start collecting per-batch profile records process-wide."""
    global _enabled
    _enabled = True


def disable_profiling() -> None:
    """Stop collecting per-batch profile records."""
    global _enabled
    _enabled = False


def profiling_enabled() -> bool:
    return _enabled


def _observe_kernel(
    name: str, n: int, seconds: float, backend: str = ""
) -> None:
    labels = {"kernel": name}
    if backend:
        labels["backend"] = backend
    REGISTRY.histogram(
        "repro_sim_kernel_seconds",
        "Wall time of one batched sim kernel call.",
        labels,
    ).observe(seconds)
    REGISTRY.histogram(
        "repro_sim_kernel_slices",
        "Stack size (number of matrices) per sim kernel call.",
        labels,
        buckets=_SLICE_BUCKETS,
    ).observe(float(n))


def _sink() -> list[dict[str, Any]] | None:
    return getattr(_tls, "sink", None)


def kernel(
    name: str,
    *,
    n: int,
    dim: int,
    seconds: float,
    levels: int = 0,
    method: str = "",
    backend: str = "",
) -> None:
    """Report one batched-kernel invocation (always feeds REGISTRY).

    *backend* is the array-backend spec (``"numpy/complex128"``) the
    kernel ran on; it becomes a metric label and a record field so
    profiles from different backend/dtype scopes stay separable.
    """
    _observe_kernel(name, n, seconds, backend)
    if not _enabled:
        return
    sink = _sink()
    if sink is not None:
        sink.append(
            {
                "kind": "kernel",
                "kernel": name,
                "n": int(n),
                "dim": int(dim),
                "seconds": float(seconds),
                "levels": int(levels),
                "method": method,
                "backend": backend,
            }
        )


def cache_batch(
    *, n: int, unique: int, hits: int, misses: int
) -> None:
    """Report one PropagatorCache batch lookup's dedup outcome."""
    if not _enabled:
        return
    sink = _sink()
    if sink is not None:
        sink.append(
            {
                "kind": "cache",
                "n": int(n),
                "unique": int(unique),
                "hits": int(hits),
                "misses": int(misses),
            }
        )


def begin_collect() -> list[dict[str, Any]] | None:
    """Open a thread-local record sink; ``None`` when disabled.

    Returns the previous sink so nested collectors restore it via
    :func:`end_collect`.
    """
    if not _enabled:
        return None
    prev = getattr(_tls, "sink", None)
    _tls.sink = []
    return prev


def end_collect(
    prev: list[dict[str, Any]] | None,
) -> list[dict[str, Any]]:
    """Close the current sink, restore *prev*, return the records."""
    records = getattr(_tls, "sink", None) or []
    _tls.sink = prev
    return records


def summarize(
    records: list[dict[str, Any]], **extra: Any
) -> dict[str, Any]:
    """Fold raw records into one ``metadata["profile"]`` dict."""
    kernels = [r for r in records if r["kind"] == "kernel"]
    caches = [r for r in records if r["kind"] == "cache"]
    looked_up = sum(c["n"] for c in caches)
    unique = sum(c["unique"] for c in caches)
    out: dict[str, Any] = {
        "kernel_calls": len(kernels),
        "slices": sum(k["n"] for k in kernels),
        "max_stack": max((k["n"] for k in kernels), default=0),
        "dim": max((k["dim"] for k in kernels), default=0),
        "max_squaring_levels": max(
            (k["levels"] for k in kernels), default=0
        ),
        "gemm_s": sum(k["seconds"] for k in kernels),
        "cache_lookups": looked_up,
        "cache_hits": sum(c["hits"] for c in caches),
        "cache_misses": sum(c["misses"] for c in caches),
        "dedup_ratio": (looked_up / unique) if unique else 1.0,
        "records": records,
    }
    out.update(extra)
    return out
