"""Enumerations of the QDMI query and job interfaces.

The real QDMI is a C header-only library keyed by enumeration values so
that "new properties or operations can be added without breaking
existing interfaces" (paper §5.3). The pulse extension shows up here as
*additional enum members* — marked ``# pulse extension`` below — not as
new interfaces, reproducing the paper's backward-compatibility claim.
"""

from __future__ import annotations

import enum


class DeviceStatus(enum.Enum):
    """Operational status of a device."""

    OFFLINE = "offline"
    IDLE = "idle"
    BUSY = "busy"
    CALIBRATING = "calibrating"
    MAINTENANCE = "maintenance"


class JobStatus(enum.Enum):
    """Lifecycle of a QDMI job."""

    CREATED = "created"
    SUBMITTED = "submitted"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


class ProgramFormat(enum.Enum):
    """Payload formats a job submission may carry.

    Pulse support needs "only ... a single enumeration value" on the job
    interface (paper Fig. 3 caption): :attr:`QIR_PULSE`. The others are
    the formats MQSS already routes.
    """

    QASM2 = "qasm2"
    QASM3 = "qasm3"
    QIR_BASE = "qir-base"
    MLIR_QUANTUM = "mlir-quantum"
    MLIR_PULSE = "mlir-pulse"
    QIR_PULSE = "qir-pulse"  # pulse extension
    PULSE_SCHEDULE = "pulse-schedule"  # in-memory schedule (local fast path)


class PulseSupportLevel(enum.Enum):
    """How much pulse access a device grants (paper §5.3: pulse support
    "can be provided at two levels of abstraction: site level and port
    level")."""

    NONE = "none"
    SITE = "site"  # pulses attached to sites; ports hidden
    PORT = "port"  # full port-level access


class DeviceProperty(enum.Enum):
    """Device-scope query keys."""

    NAME = "name"
    VERSION = "version"
    TECHNOLOGY = "technology"  # superconducting / trapped-ion / neutral-atom / ...
    NUM_SITES = "num_sites"
    STATUS = "status"
    COUPLING_MAP = "coupling_map"
    SUPPORTED_FORMATS = "supported_formats"
    NATIVE_GATES = "native_gates"
    # pulse extension:
    PULSE_SUPPORT_LEVEL = "pulse_support_level"
    PULSE_CONSTRAINTS = "pulse_constraints"
    PORTS = "ports"
    FRAMES = "frames"
    SAMPLE_RATE = "sample_rate"
    TIMING_GRANULARITY = "timing_granularity"
    SUPPORTED_ENVELOPES = "supported_envelopes"


class SiteProperty(enum.Enum):
    """Site-scope query keys (a site is a physical/logical qubit slot)."""

    INDEX = "index"
    T1 = "t1"
    T2 = "t2"
    FREQUENCY = "frequency"
    ANHARMONICITY = "anharmonicity"
    READOUT_ERROR = "readout_error"
    # pulse extension:
    DRIVE_PORT = "drive_port"
    READOUT_PORT = "readout_port"
    ACQUIRE_PORT = "acquire_port"
    DEFAULT_FRAME = "default_frame"
    RABI_RATE = "rabi_rate"


class OperationProperty(enum.Enum):
    """Operation-scope query keys (gates, measurement, movement...)."""

    NAME = "name"
    NUM_QUBITS = "num_qubits"
    DURATION = "duration"  # seconds, for the given sites
    FIDELITY = "fidelity"
    PARAMETERS = "parameters"
    # pulse extension:
    HAS_PULSE_IMPLEMENTATION = "has_pulse_implementation"
    PULSE_SCHEDULE = "pulse_schedule"  # the default calibration, as a schedule
    IS_VIRTUAL = "is_virtual"  # implemented as frame updates only


class PortProperty(enum.Enum):
    """Port-scope query keys (pulse extension)."""

    NAME = "name"
    KIND = "kind"
    TARGETS = "targets"
    DIRECTION = "direction"
    MAX_AMPLITUDE = "max_amplitude"
    FREQUENCY_RANGE = "frequency_range"


class FrameProperty(enum.Enum):
    """Frame-scope query keys (pulse extension)."""

    NAME = "name"
    FREQUENCY = "frequency"
    PHASE = "phase"
    PORT = "port"
