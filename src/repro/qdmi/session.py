"""QDMI sessions: the client-side access handle.

Clients "do not have direct access to the devices but access through a
QDMI Driver" (paper §5.3). A session is the capability the driver hands
out: it scopes which device a client may talk to, forwards queries and
job submissions, and refuses everything once closed.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

from repro.core.frame import Frame
from repro.core.port import Port
from repro.errors import SessionError
from repro.qdmi.device import QDMIDevice
from repro.qdmi.job import QDMIJob
from repro.qdmi.properties import (
    DeviceProperty,
    FrameProperty,
    OperationProperty,
    PortProperty,
    ProgramFormat,
    SiteProperty,
)
from repro.qdmi.types import Site

_session_ids = itertools.count(1)


class QDMISession:
    """An open handle on one device, mediated by the driver."""

    def __init__(self, device: QDMIDevice, client_name: str) -> None:
        self.session_id = next(_session_ids)
        self.client_name = client_name
        self._device = device
        self._open = True
        self._jobs: list[QDMIJob] = []

    # ---- lifecycle ------------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self._open

    def close(self) -> None:
        """Close the session; subsequent use raises SessionError."""
        self._open = False

    def _check(self) -> QDMIDevice:
        if not self._open:
            raise SessionError(
                f"session {self.session_id} ({self.client_name!r}) is closed"
            )
        return self._device

    @property
    def device_name(self) -> str:
        return self._check().name

    # ---- query forwarding ------------------------------------------------------------

    def query_device_property(self, prop: DeviceProperty) -> Any:
        return self._check().query_device_property(prop)

    def query_site_property(self, site: Site, prop: SiteProperty) -> Any:
        return self._check().query_site_property(site, prop)

    def query_operation_property(
        self, operation: str, sites: Sequence[Site], prop: OperationProperty
    ) -> Any:
        return self._check().query_operation_property(operation, sites, prop)

    def query_port_property(self, port: Port, prop: PortProperty) -> Any:
        return self._check().query_port_property(port, prop)

    def query_frame_property(self, frame: Frame, prop: FrameProperty) -> Any:
        return self._check().query_frame_property(frame, prop)

    # ---- job interface ---------------------------------------------------------------

    def create_job(
        self,
        program_format: ProgramFormat,
        payload: Any,
        shots: int = 1024,
        metadata: dict | None = None,
    ) -> QDMIJob:
        """Create a job bound to this session's device (not yet submitted)."""
        device = self._check()
        job = QDMIJob(device.name, program_format, payload, shots, metadata)
        self._jobs.append(job)
        return job

    def submit(self, job: QDMIJob) -> QDMIJob:
        """Submit a previously created job to the device."""
        device = self._check()
        if job.device_name != device.name:
            raise SessionError(
                f"job {job.job_id} targets {job.device_name!r}, session is on "
                f"{device.name!r}"
            )
        device.submit_job(job)
        return job

    def run(
        self,
        program_format: ProgramFormat,
        payload: Any,
        shots: int = 1024,
        metadata: dict | None = None,
    ) -> QDMIJob:
        """Create + submit in one call (the common path)."""
        return self.submit(self.create_job(program_format, payload, shots, metadata))

    @property
    def jobs(self) -> tuple[QDMIJob, ...]:
        """Jobs created through this session."""
        return tuple(self._jobs)
