"""QDMI data types: sites and operations.

"In QDMI, a *site* references a physical or logical qubit location —
e.g., a superconducting qubit, an ion-trapped qubit, or a neutral-atom
trap. *Operations* encompass, for example, quantum gates, measurements,
and movement primitives." (paper §5.3)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError


@dataclass(frozen=True, order=True)
class Site:
    """A qubit location on a device."""

    index: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValidationError(f"site index must be >= 0, got {self.index}")
        if not self.name:
            object.__setattr__(self, "name", f"site{self.index}")


@dataclass(frozen=True)
class OperationInfo:
    """Description of one device operation (gate / measure / move).

    Attributes
    ----------
    name:
        Operation identifier, e.g. ``"x"``, ``"cz"``, ``"measure"``.
    num_qubits:
        Arity; 0 means "any" (e.g. global operations).
    parameters:
        Names of continuous parameters (e.g. ``("theta",)`` for ``rz``).
    is_virtual:
        True when the operation compiles to frame updates only and
        costs zero wall-clock time (e.g. ``rz`` on most platforms).
    has_pulse_implementation:
        Whether the device publishes a default pulse calibration for it.
    """

    name: str
    num_qubits: int
    parameters: tuple[str, ...] = field(default=())
    is_virtual: bool = False
    has_pulse_implementation: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("operation name must be non-empty")
        if self.num_qubits < 0:
            raise ValidationError(
                f"num_qubits must be >= 0, got {self.num_qubits}"
            )
