"""QDMI jobs: submission handles with a strict lifecycle FSM."""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.errors import JobError
from repro.qdmi.properties import JobStatus, ProgramFormat

_job_ids = itertools.count(1)

#: Legal transitions of the job FSM.
_TRANSITIONS: dict[JobStatus, frozenset[JobStatus]] = {
    JobStatus.CREATED: frozenset({JobStatus.SUBMITTED, JobStatus.CANCELLED}),
    JobStatus.SUBMITTED: frozenset(
        {JobStatus.QUEUED, JobStatus.RUNNING, JobStatus.FAILED, JobStatus.CANCELLED}
    ),
    JobStatus.QUEUED: frozenset(
        {JobStatus.RUNNING, JobStatus.FAILED, JobStatus.CANCELLED}
    ),
    JobStatus.RUNNING: frozenset(
        {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}
    ),
    JobStatus.DONE: frozenset(),
    JobStatus.FAILED: frozenset(),
    JobStatus.CANCELLED: frozenset(),
}


class QDMIJob:
    """One submitted program: payload + format + shots + results.

    The job object is the opaque handle the QDMI job interface hands to
    clients; devices drive its status through :meth:`transition` and
    deposit results with :meth:`complete`. Transitions outside the FSM
    raise :class:`~repro.errors.JobError` — tests assert this guards
    against e.g. completing a cancelled job.
    """

    def __init__(
        self,
        device_name: str,
        program_format: ProgramFormat,
        payload: Any,
        shots: int = 1024,
        metadata: dict | None = None,
    ) -> None:
        if shots < 0:
            raise JobError(f"shots must be >= 0, got {shots}")
        if not isinstance(program_format, ProgramFormat):
            raise JobError(
                f"program_format must be a ProgramFormat, got {program_format!r}"
            )
        self.job_id = next(_job_ids)
        self.device_name = device_name
        self.program_format = program_format
        self.payload = payload
        self.shots = shots
        self.metadata = dict(metadata or {})
        self._status = JobStatus.CREATED
        self._result: Any = None
        self._error: str | None = None
        self._lock = threading.Lock()

    # ---- lifecycle -------------------------------------------------------------

    @property
    def status(self) -> JobStatus:
        return self._status

    def transition(self, new: JobStatus) -> None:
        """Move the FSM to *new*; raises on illegal transitions."""
        with self._lock:
            allowed = _TRANSITIONS[self._status]
            if new not in allowed:
                raise JobError(
                    f"job {self.job_id}: illegal transition "
                    f"{self._status.value} -> {new.value}"
                )
            self._status = new

    def complete(self, result: Any) -> None:
        """Deposit *result* and mark DONE (job must be RUNNING)."""
        self.transition(JobStatus.DONE)
        self._result = result

    def fail(self, error: str) -> None:
        """Mark FAILED with an error message."""
        self.transition(JobStatus.FAILED)
        self._error = error

    def cancel(self) -> None:
        """Cancel the job if not already terminal."""
        if self._status.is_terminal:
            raise JobError(
                f"job {self.job_id}: cannot cancel terminal job "
                f"({self._status.value})"
            )
        self.transition(JobStatus.CANCELLED)

    # ---- results ----------------------------------------------------------------

    @property
    def result(self) -> Any:
        """The execution result; raises unless the job is DONE."""
        if self._status is not JobStatus.DONE:
            raise JobError(
                f"job {self.job_id}: result unavailable in state "
                f"{self._status.value}"
                + (f" (error: {self._error})" if self._error else "")
            )
        return self._result

    @property
    def error(self) -> str | None:
        """Failure message for FAILED jobs."""
        return self._error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QDMIJob(id={self.job_id}, device={self.device_name!r}, "
            f"format={self.program_format.value}, status={self._status.value})"
        )
