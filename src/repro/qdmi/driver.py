"""QDMI driver: device registry + session control.

"A bespoke solution for orchestrating these interactions, managing
available QDMI Devices and mediating client-side requests by
implementing session and job control structures." (paper §5.3)
"""

from __future__ import annotations


from repro.errors import QDMIError
from repro.qdmi.device import QDMIDevice
from repro.qdmi.properties import DeviceProperty, PulseSupportLevel
from repro.qdmi.session import QDMISession


class QDMIDriver:
    """Manages devices and hands out sessions to clients."""

    def __init__(self) -> None:
        self._devices: dict[str, QDMIDevice] = {}
        self._sessions: list[QDMISession] = []

    # ---- device registry -----------------------------------------------------------

    def register_device(self, device: QDMIDevice) -> None:
        """Add *device* to the registry; names must be unique."""
        if device.name in self._devices:
            raise QDMIError(f"device {device.name!r} already registered")
        self._devices[device.name] = device

    def unregister_device(self, name: str) -> None:
        """Remove a device; open sessions on it are closed."""
        if name not in self._devices:
            raise QDMIError(f"device {name!r} not registered")
        del self._devices[name]
        for s in self._sessions:
            if s.is_open and s.device_name == name:
                s.close()

    def device_names(self) -> list[str]:
        """Registered device names, sorted."""
        return sorted(self._devices)

    def get_device(self, name: str) -> QDMIDevice:
        """Direct device access (driver-internal use; clients should
        open sessions instead)."""
        try:
            return self._devices[name]
        except KeyError:
            raise QDMIError(
                f"device {name!r} not registered; known: {self.device_names()}"
            ) from None

    # ---- session control -------------------------------------------------------------

    def open_session(self, device_name: str, client_name: str) -> QDMISession:
        """Open a session for *client_name* on *device_name*."""
        device = self.get_device(device_name)
        session = QDMISession(device, client_name)
        self._sessions.append(session)
        return session

    def close_all_sessions(self) -> int:
        """Close every open session; returns how many were closed."""
        n = 0
        for s in self._sessions:
            if s.is_open:
                s.close()
                n += 1
        return n

    @property
    def open_sessions(self) -> list[QDMISession]:
        """Currently open sessions."""
        return [s for s in self._sessions if s.is_open]

    # ---- discovery helpers -----------------------------------------------------------

    def devices_with_pulse_support(
        self, minimum: PulseSupportLevel = PulseSupportLevel.SITE
    ) -> list[str]:
        """Names of devices granting at least *minimum* pulse access."""
        rank = {
            PulseSupportLevel.NONE: 0,
            PulseSupportLevel.SITE: 1,
            PulseSupportLevel.PORT: 2,
        }
        out = []
        for name, dev in sorted(self._devices.items()):
            if rank[dev.pulse_support_level()] >= rank[minimum]:
                out.append(name)
        return out

    def devices_by_technology(self, technology: str) -> list[str]:
        """Names of devices whose TECHNOLOGY property equals *technology*."""
        out = []
        for name, dev in sorted(self._devices.items()):
            try:
                tech = dev.query_device_property(DeviceProperty.TECHNOLOGY)
            except Exception:
                continue
            if tech == technology:
                out.append(name)
        return out

    def capability_matrix(self) -> dict[str, dict[str, object]]:
        """Summary table used by the Fig. 3 reproduction benchmark:
        device -> {technology, sites, pulse level, formats}."""
        out: dict[str, dict[str, object]] = {}
        for name, dev in sorted(self._devices.items()):
            out[name] = {
                "technology": dev.query_device_property(DeviceProperty.TECHNOLOGY),
                "num_sites": dev.query_device_property(DeviceProperty.NUM_SITES),
                "pulse_support": dev.pulse_support_level().value,
                "formats": [f.value for f in dev.supported_formats()],
                "num_ports": len(dev.ports()),
                "num_frames": len(dev.frames()),
            }
        return out
