"""QDMI — the Quantum Device Management Interface (paper §5.3, Fig. 3).

QDMI is the hardware abstraction layer of MQSS: the boundary between
software services (compilers, clients, calibration tools) and quantum
devices. The paper's Fig. 3 defines three entities, all modeled here:

* **Clients** — consumers of the interface (the MQSS client, compiler
  passes, calibration tools). They never hold a device directly; they
  open a :class:`QDMISession` through a driver.
* **Driver** — :class:`QDMIDriver` orchestrates the interactions:
  device registry, session control, job mediation.
* **Devices** — anything implementing the :class:`QDMIDevice` protocol:
  the simulated QPUs in :mod:`repro.devices`, simulators, databases.

The pulse extension proposed by the paper is implemented exactly as
described: pulse-specific *device*, *site* and *operation* properties
are new enumeration values retrievable through the existing ``Query``
interface, and pulse jobs need only one new :class:`ProgramFormat`
enumeration value on the existing ``Job`` interface.
"""

from repro.qdmi.properties import (
    DeviceProperty,
    DeviceStatus,
    FrameProperty,
    JobStatus,
    OperationProperty,
    PortProperty,
    ProgramFormat,
    PulseSupportLevel,
    SiteProperty,
)
from repro.qdmi.types import OperationInfo, Site
from repro.qdmi.device import QDMIDevice
from repro.qdmi.job import QDMIJob
from repro.qdmi.driver import QDMIDriver
from repro.qdmi.session import QDMISession

__all__ = [
    "DeviceProperty",
    "SiteProperty",
    "OperationProperty",
    "PortProperty",
    "FrameProperty",
    "DeviceStatus",
    "JobStatus",
    "ProgramFormat",
    "PulseSupportLevel",
    "Site",
    "OperationInfo",
    "QDMIDevice",
    "QDMIJob",
    "QDMIDriver",
    "QDMISession",
]
