"""The QDMI device protocol.

Every backend — physical QPU stand-in, simulator, database — implements
this interface. It is deliberately *query-shaped*: clients retrieve
enum-keyed properties rather than calling device-specific methods,
which is what lets the compiler stay generic over heterogeneous
hardware (paper challenge 3). Unknown queries raise
:class:`~repro.errors.UnsupportedQueryError`, mirroring QDMI's
"not supported" status code rather than returning junk defaults.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

from repro.core.constraints import PulseConstraints
from repro.core.frame import Frame
from repro.core.port import Port
from repro.errors import UnsupportedQueryError
from repro.qdmi.job import QDMIJob
from repro.qdmi.properties import (
    DeviceProperty,
    FrameProperty,
    OperationProperty,
    PortProperty,
    ProgramFormat,
    PulseSupportLevel,
    SiteProperty,
)
from repro.qdmi.types import OperationInfo, Site


class QDMIDevice(abc.ABC):
    """Abstract QDMI device (paper Fig. 3, right-hand entity)."""

    # ---- identity ---------------------------------------------------------------

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Unique device name within a driver."""

    # ---- query interface ----------------------------------------------------------

    @abc.abstractmethod
    def query_device_property(self, prop: DeviceProperty) -> Any:
        """Device-scope property lookup."""

    @abc.abstractmethod
    def query_site_property(self, site: Site, prop: SiteProperty) -> Any:
        """Site-scope property lookup."""

    @abc.abstractmethod
    def query_operation_property(
        self, operation: str, sites: Sequence[Site], prop: OperationProperty
    ) -> Any:
        """Operation-scope property lookup for a concrete site tuple."""

    def query_port_property(self, port: Port, prop: PortProperty) -> Any:
        """Port-scope property lookup (pulse extension).

        Default implementation answers the structural keys from the
        port object itself; devices override to add hardware limits.
        """
        if prop is PortProperty.NAME:
            return port.name
        if prop is PortProperty.KIND:
            return port.kind
        if prop is PortProperty.TARGETS:
            return port.targets
        if prop is PortProperty.DIRECTION:
            return port.direction
        raise UnsupportedQueryError(
            f"device {self.name!r} does not answer port property {prop.value!r}"
        )

    def query_frame_property(self, frame: Frame, prop: FrameProperty) -> Any:
        """Frame-scope property lookup (pulse extension)."""
        if prop is FrameProperty.NAME:
            return frame.name
        if prop is FrameProperty.FREQUENCY:
            return frame.frequency
        if prop is FrameProperty.PHASE:
            return frame.phase
        raise UnsupportedQueryError(
            f"device {self.name!r} does not answer frame property {prop.value!r}"
        )

    # ---- convenience wrappers (typed accessors over the query interface) ---------

    def sites(self) -> list[Site]:
        """All sites, from NUM_SITES."""
        n = int(self.query_device_property(DeviceProperty.NUM_SITES))
        return [Site(i) for i in range(n)]

    def operations(self) -> list[OperationInfo]:
        """Native operations, from NATIVE_GATES."""
        return list(self.query_device_property(DeviceProperty.NATIVE_GATES))

    def ports(self) -> list[Port]:
        """All pulse ports; empty when pulse access is NONE."""
        try:
            return list(self.query_device_property(DeviceProperty.PORTS))
        except UnsupportedQueryError:
            return []

    def frames(self) -> list[Frame]:
        """All declared frames; empty when pulse access is NONE."""
        try:
            return list(self.query_device_property(DeviceProperty.FRAMES))
        except UnsupportedQueryError:
            return []

    def pulse_support_level(self) -> PulseSupportLevel:
        """Pulse access level, defaulting to NONE for legacy devices."""
        try:
            return self.query_device_property(DeviceProperty.PULSE_SUPPORT_LEVEL)
        except UnsupportedQueryError:
            return PulseSupportLevel.NONE

    def pulse_constraints(self) -> PulseConstraints:
        """The device's pulse constraints; raises if unsupported."""
        return self.query_device_property(DeviceProperty.PULSE_CONSTRAINTS)

    def supported_formats(self) -> tuple[ProgramFormat, ...]:
        """Program formats the job interface accepts."""
        return tuple(self.query_device_property(DeviceProperty.SUPPORTED_FORMATS))

    # ---- job interface --------------------------------------------------------------

    @abc.abstractmethod
    def submit_job(self, job: QDMIJob) -> None:
        """Accept *job* (CREATED -> SUBMITTED...) and eventually run it.

        Simulated devices in this repo execute synchronously, driving
        the job to a terminal state before returning; that keeps the
        reproduction deterministic while exercising the full FSM.
        """

    def supports_format(self, fmt: ProgramFormat) -> bool:
        """Whether the device accepts *fmt* payloads."""
        return fmt in self.supported_formats()
