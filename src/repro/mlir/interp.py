"""Pulse-dialect interpreter: ``pulse.sequence`` -> ``PulseSchedule``.

This is the executable semantics of the pulse dialect. The interpreter
binds the sequence's block arguments — mixed frames through the
``pulse.argPorts`` attribute resolved against a *target* (any object
with ``port(name)``, ``default_frame(port)`` and ``calibrations``, i.e.
a :class:`~repro.devices.base.SimulatedDevice`), scalars from a
user-supplied dictionary — then walks the body appending core
instructions with the same as-soon-as-possible placement the QPI
builder uses. Two representations of a kernel that interpret to
equivalent schedules *are* the same program; that is the equivalence
the paper's Listings 1-3 claim and experiment E1 checks.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol

from repro.core.frame import Frame, MixedFrame
from repro.core.instructions import (
    Capture,
    Delay,
    FrameChange,
    Play,
    SetFrequency,
    SetPhase,
    ShiftFrequency,
    ShiftPhase,
)
from repro.core.port import Port
from repro.core.schedule import PulseSchedule
from repro.errors import IRError
from repro.mlir.dialects.pulse import MIXED_FRAME, attrs_to_waveform, find_sequence
from repro.mlir.ir import F64, Module, Operation, Value


class PulseTarget(Protocol):
    """What the interpreter needs from a device."""

    def port(self, name: str) -> Port: ...

    def default_frame(self, port: Port) -> Frame: ...

    @property
    def calibrations(self) -> Any: ...


def _scalar(op: Operation, env: dict, keys: tuple[str, ...]) -> list[float]:
    """Resolve scalar inputs: attributes win, remaining SSA operands
    (after the mixed frame) fill the missing keys in order."""
    ssa = [env[v] for v in op.operands[1:]]
    out: list[float] = []
    it = iter(ssa)
    for key in keys:
        if op.attr(key) is not None:
            out.append(float(op.attr(key)))
        else:
            try:
                out.append(float(next(it)))
            except StopIteration:
                raise IRError(f"{op.name}: missing scalar input {key!r}") from None
    return out


def sequence_to_schedule(
    sequence: Operation,
    target: PulseTarget,
    scalar_args: Mapping[str, float] | None = None,
    *,
    name: str | None = None,
) -> PulseSchedule:
    """Interpret one ``pulse.sequence`` op into a pulse schedule."""
    if sequence.name != "pulse.sequence":
        raise IRError(f"expected pulse.sequence, got {sequence.name!r}")
    scalar_args = dict(scalar_args or {})
    entry = sequence.region().entry
    arg_ports = sequence.attr("pulse.argPorts") or [""] * len(entry.arguments)
    arg_names = sequence.attr("pulse.args") or [a.name for a in entry.arguments]

    # Optional exact frame declarations (written by the schedule->IR
    # lift): one [name, frequency, phase] entry per argument, [] for
    # scalars. Without it, mixed frames bind to the device defaults.
    arg_frames = sequence.attr("pulse.argFrames")

    env: dict[Value, Any] = {}
    for i, (arg, port_name, arg_name) in enumerate(
        zip(entry.arguments, arg_ports, arg_names)
    ):
        if arg.type == MIXED_FRAME:
            port = target.port(port_name)
            if arg_frames is not None and arg_frames[i]:
                fname, ffreq, fphase = arg_frames[i]
                frame = Frame(str(fname), float(ffreq), float(fphase))
            else:
                frame = target.default_frame(port)
            env[arg] = MixedFrame(port, frame)
        elif arg.type == F64:
            if arg_name not in scalar_args:
                raise IRError(
                    f"pulse.sequence {sequence.attr('sym_name')!r}: missing "
                    f"scalar argument {arg_name!r}"
                )
            env[arg] = float(scalar_args[arg_name])
        else:
            raise IRError(f"unsupported sequence argument type {arg.type}")

    schedule = PulseSchedule(name or sequence.attr("sym_name") or "sequence")
    for op in entry.operations:
        _interpret_op(op, env, schedule, target)
    return schedule


def _mf(op: Operation, env: dict) -> MixedFrame:
    mf = env.get(op.operands[0])
    if not isinstance(mf, MixedFrame):
        raise IRError(f"{op.name}: first operand is not a mixed frame")
    return mf


def _interpret_op(
    op: Operation, env: dict, schedule: PulseSchedule, target: PulseTarget
) -> None:
    name = op.name
    if name == "pulse.waveform":
        env[op.result()] = attrs_to_waveform(op.attributes)
    elif name == "pulse.play":
        mf = _mf(op, env)
        wf = env.get(op.operands[1])
        if wf is None:
            raise IRError("pulse.play: waveform operand not materialized")
        schedule.append(Play(mf.port, mf.frame, wf))
    elif name == "pulse.frame_change":
        mf = _mf(op, env)
        freq, phase = _scalar(op, env, ("frequency", "phase"))
        schedule.append(FrameChange(mf.port, mf.frame, freq, phase))
    elif name == "pulse.set_frequency":
        mf = _mf(op, env)
        (freq,) = _scalar(op, env, ("frequency",))
        schedule.append(SetFrequency(mf.port, mf.frame, freq))
    elif name == "pulse.shift_frequency":
        mf = _mf(op, env)
        (delta,) = _scalar(op, env, ("delta",))
        schedule.append(ShiftFrequency(mf.port, mf.frame, delta))
    elif name == "pulse.set_phase":
        mf = _mf(op, env)
        (phase,) = _scalar(op, env, ("phase",))
        schedule.append(SetPhase(mf.port, mf.frame, phase))
    elif name == "pulse.shift_phase":
        mf = _mf(op, env)
        (delta,) = _scalar(op, env, ("delta",))
        schedule.append(ShiftPhase(mf.port, mf.frame, delta))
    elif name == "pulse.delay":
        mf = _mf(op, env)
        schedule.append(Delay(mf.port, int(op.attr("duration"))))
    elif name == "pulse.barrier":
        ports = []
        for v in op.operands:
            mf = env.get(v)
            if not isinstance(mf, MixedFrame):
                raise IRError("pulse.barrier: operands must be mixed frames")
            ports.append(mf.port)
        schedule.barrier(*ports)
    elif name == "pulse.capture":
        mf = _mf(op, env)
        schedule.append(
            Capture(
                mf.port,
                mf.frame,
                int(op.attr("slot")),
                int(op.attr("duration") or 0),
            )
        )
        env[op.result()] = None  # classical bit, unknown until execution
    elif name in ("pulse.standard_x", "pulse.standard_sx"):
        mf = _mf(op, env)
        site = mf.port.targets[0]
        gate = "x" if name.endswith("standard_x") else "sx"
        target.calibrations.get(gate, (site,)).apply(schedule, [])
    elif name == "pulse.return":
        pass  # results are delivered through captures
    else:
        raise IRError(f"pulse interpreter: unsupported operation {name!r}")


def module_to_schedule(
    module: Module,
    target: PulseTarget,
    scalar_args: Mapping[str, float] | None = None,
    *,
    sequence_name: str | None = None,
) -> PulseSchedule:
    """Interpret a pulse module (its only / named sequence)."""
    if sequence_name is not None:
        seq = find_sequence(module, sequence_name)
    else:
        seqs = module.ops_of("pulse.sequence")
        if len(seqs) != 1:
            raise IRError(
                f"module has {len(seqs)} pulse.sequence ops; specify "
                "sequence_name"
            )
        seq = seqs[0]
    return sequence_to_schedule(seq, target, scalar_args)
