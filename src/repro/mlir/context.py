"""Dialect registry and per-op verification hooks.

MLIR's pass manager "supports MLIR dialect-agnostic orchestration by
allowing both operation-specific and operation-agnostic passes to be
registered and executed on IR modules, regardless of the dialect they
belong to — as long as the pass is targered to the correct dialect
context" (paper §5.2). The :class:`MLIRContext` is that dialect
context: dialects register their operations (with arity and verifier)
and types; the verifier and the pass manager consult it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import IRError
from repro.mlir.ir import Operation, Type


@dataclass(frozen=True)
class OpSpec:
    """Registered definition of one operation.

    ``num_operands``/``num_results`` of ``-1`` mean variadic.
    """

    name: str
    num_operands: int = -1
    num_results: int = 0
    has_region: bool = False
    verifier: Callable[[Operation], None] | None = None
    traits: frozenset[str] = frozenset()


class Dialect:
    """A named collection of op specs and type spellings."""

    def __init__(self, name: str) -> None:
        if not name or not name.isidentifier():
            raise IRError(f"invalid dialect name {name!r}")
        self.name = name
        self.ops: dict[str, OpSpec] = {}
        self.types: dict[str, Type] = {}

    def register_op(self, spec: OpSpec) -> None:
        if not spec.name.startswith(self.name + "."):
            raise IRError(
                f"op {spec.name!r} does not belong to dialect {self.name!r}"
            )
        if spec.name in self.ops:
            raise IRError(f"op {spec.name!r} already registered")
        self.ops[spec.name] = spec

    def register_type(self, short_name: str) -> Type:
        t = Type(f"!{self.name}.{short_name}")
        self.types[short_name] = t
        return t


class MLIRContext:
    """Holds the loaded dialects; shared across a compilation."""

    def __init__(self) -> None:
        self._dialects: dict[str, Dialect] = {}

    def load_dialect(self, dialect: Dialect) -> Dialect:
        """Register *dialect*; idempotent if the same object is reloaded."""
        existing = self._dialects.get(dialect.name)
        if existing is dialect:
            return existing
        if existing is not None:
            raise IRError(f"dialect {dialect.name!r} already loaded")
        self._dialects[dialect.name] = dialect
        return dialect

    def dialect(self, name: str) -> Dialect:
        try:
            return self._dialects[name]
        except KeyError:
            raise IRError(
                f"dialect {name!r} not loaded; loaded: {sorted(self._dialects)}"
            ) from None

    def has_dialect(self, name: str) -> bool:
        return name in self._dialects

    def loaded_dialects(self) -> list[str]:
        return sorted(self._dialects)

    def op_spec(self, op_name: str) -> OpSpec | None:
        """Spec for *op_name* if its dialect is loaded and defines it."""
        dialect_name = op_name.split(".", 1)[0]
        d = self._dialects.get(dialect_name)
        if d is None:
            return None
        return d.ops.get(op_name)

    def verify_op(self, op: Operation) -> None:
        """Run structural + registered verification for one op.

        Ops of unloaded dialects verify trivially (MLIR's unregistered-
        op behaviour); ops of loaded dialects must be registered.
        """
        dialect_name = op.dialect
        d = self._dialects.get(dialect_name)
        if d is None:
            return
        spec = d.ops.get(op.name)
        if spec is None:
            raise IRError(
                f"unknown operation {op.name!r} in loaded dialect "
                f"{dialect_name!r}"
            )
        if spec.num_operands >= 0 and len(op.operands) != spec.num_operands:
            raise IRError(
                f"{op.name}: expected {spec.num_operands} operands, "
                f"got {len(op.operands)}"
            )
        if spec.num_results >= 0 and len(op.results) != spec.num_results:
            raise IRError(
                f"{op.name}: expected {spec.num_results} results, "
                f"got {len(op.results)}"
            )
        if spec.has_region and not op.regions:
            raise IRError(f"{op.name}: expected a region")
        if spec.verifier is not None:
            spec.verifier(op)


def default_context() -> MLIRContext:
    """A context with the quantum and pulse dialects loaded."""
    from repro.mlir.dialects.pulse import pulse_dialect
    from repro.mlir.dialects.quantum import quantum_dialect

    ctx = MLIRContext()
    ctx.load_dialect(quantum_dialect())
    ctx.load_dialect(pulse_dialect())
    return ctx
