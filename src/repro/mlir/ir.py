"""IR core: types, values, operations, regions, modules.

Deliberately small but faithful to MLIR's structure:

* every :class:`Operation` has a dialect-qualified name, SSA operands,
  SSA results, an attribute dictionary and nested regions;
* a :class:`Region` holds blocks, a :class:`Block` holds typed
  arguments and an ordered operation list;
* a :class:`Module` is the top-level container;
* printing produces a stable textual form that
  :mod:`repro.mlir.parser` can read back (tested by round-trip
  property tests).

Attribute values are plain Python data (int, float, str, bool, lists,
dicts) — rich enough for envelope parameters and dense sample arrays
without reproducing MLIR's full attribute zoo.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import IRError

# ---- types -----------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """An IR type, e.g. ``i1``, ``f64``, ``!pulse.waveform``.

    Types are interned by spelling; two types are equal iff their
    textual spelling matches.
    """

    spelling: str

    def __post_init__(self) -> None:
        if not self.spelling:
            raise IRError("type spelling must be non-empty")

    def __str__(self) -> str:
        return self.spelling

    @property
    def dialect(self) -> str | None:
        """Owning dialect for ``!dialect.name`` types, else None."""
        if self.spelling.startswith("!") and "." in self.spelling:
            return self.spelling[1:].split(".", 1)[0]
        return None


#: Builtin scalar types.
I1 = Type("i1")
I32 = Type("i32")
I64 = Type("i64")
F64 = Type("f64")
INDEX = Type("index")


# ---- values -----------------------------------------------------------------

_value_ids = itertools.count()


class Value:
    """An SSA value: a block argument or an operation result."""

    __slots__ = ("type", "name", "owner", "uid")

    def __init__(self, type: Type, name: str, owner: "Operation | Block | None" = None):
        if not name:
            raise IRError("value name must be non-empty")
        self.type = type
        self.name = name  # printed as %name
        self.owner = owner
        self.uid = next(_value_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"%{self.name}: {self.type}"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


# ---- operations ----------------------------------------------------------------


class Operation:
    """A generic operation: ``results = name(operands) {attrs} regions``."""

    def __init__(
        self,
        name: str,
        operands: Iterable[Value] = (),
        result_types: Iterable[Type] = (),
        attributes: dict[str, Any] | None = None,
        regions: "Iterable[Region] | None" = None,
        result_names: Iterable[str] | None = None,
    ) -> None:
        if "." not in name:
            raise IRError(
                f"operation name {name!r} must be dialect-qualified (dialect.op)"
            )
        self.name = name
        self.operands: list[Value] = list(operands)
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.regions: list[Region] = list(regions or [])
        names = list(result_names) if result_names is not None else None
        self.results: list[Value] = []
        for i, t in enumerate(result_types):
            rname = names[i] if names else f"r{next(_value_ids)}"
            self.results.append(Value(t, rname, owner=self))
        self.parent: Block | None = None

    @property
    def dialect(self) -> str:
        """Dialect prefix of the operation name."""
        return self.name.split(".", 1)[0]

    @property
    def opname(self) -> str:
        """Operation name without the dialect prefix."""
        return self.name.split(".", 1)[1]

    def result(self, index: int = 0) -> Value:
        """The *index*-th result value."""
        return self.results[index]

    def region(self, index: int = 0) -> "Region":
        """The *index*-th region."""
        return self.regions[index]

    def attr(self, key: str, default: Any = None) -> Any:
        """Attribute lookup with default."""
        return self.attributes.get(key, default)

    def walk(self) -> Iterator["Operation"]:
        """This op, then every nested op, depth-first pre-order."""
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op.walk()

    def erase(self) -> None:
        """Remove this operation from its parent block."""
        if self.parent is None:
            raise IRError("operation has no parent block")
        self.parent.operations.remove(self)
        self.parent = None

    def clone(self, value_map: dict[Value, Value] | None = None) -> "Operation":
        """Deep copy, remapping operands through *value_map*."""
        vmap = value_map if value_map is not None else {}
        new = Operation(
            self.name,
            operands=[vmap.get(v, v) for v in self.operands],
            result_types=[r.type for r in self.results],
            attributes=_deep_copy_attrs(self.attributes),
            result_names=[r.name for r in self.results],
        )
        for old_r, new_r in zip(self.results, new.results):
            vmap[old_r] = new_r
        for region in self.regions:
            new.regions.append(region.clone(vmap))
        return new

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.name} ({len(self.operands)} operands)>"


def _deep_copy_attrs(attrs: Any) -> Any:
    if isinstance(attrs, dict):
        return {k: _deep_copy_attrs(v) for k, v in attrs.items()}
    if isinstance(attrs, list):
        return [_deep_copy_attrs(v) for v in attrs]
    return attrs


# ---- blocks and regions -----------------------------------------------------------


class Block:
    """A sequence of operations with typed block arguments."""

    def __init__(
        self,
        arg_types: Iterable[Type] = (),
        arg_names: Iterable[str] | None = None,
    ):
        names = list(arg_names) if arg_names is not None else None
        self.arguments: list[Value] = []
        for i, t in enumerate(arg_types):
            name = names[i] if names else f"arg{i}"
            self.arguments.append(Value(t, name, owner=self))
        self.operations: list[Operation] = []

    def append(self, op: Operation) -> Operation:
        """Append *op*; sets its parent."""
        if op.parent is not None:
            raise IRError("operation already belongs to a block")
        op.parent = self
        self.operations.append(op)
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        """Insert *op* at position *index*."""
        if op.parent is not None:
            raise IRError("operation already belongs to a block")
        op.parent = self
        self.operations.insert(index, op)
        return op

    def clone(self, value_map: dict[Value, Value]) -> "Block":
        new = Block(
            [a.type for a in self.arguments], [a.name for a in self.arguments]
        )
        for old_a, new_a in zip(self.arguments, new.arguments):
            value_map[old_a] = new_a
        for op in self.operations:
            new.append(op.clone(value_map))
        return new


class Region:
    """A list of blocks (usually exactly one in this reproduction)."""

    def __init__(self, blocks: Iterable[Block] = ()):
        self.blocks: list[Block] = list(blocks)

    @property
    def entry(self) -> Block:
        """The entry block; created on demand for empty regions."""
        if not self.blocks:
            self.blocks.append(Block())
        return self.blocks[0]

    def clone(self, value_map: dict[Value, Value]) -> "Region":
        return Region([b.clone(value_map) for b in self.blocks])


class Module:
    """Top-level IR container (``module { ... }``)."""

    def __init__(self, attributes: dict[str, Any] | None = None):
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.body = Region([Block()])

    @property
    def block(self) -> Block:
        return self.body.entry

    def append(self, op: Operation) -> Operation:
        """Append a top-level operation."""
        return self.block.append(op)

    def walk(self) -> Iterator[Operation]:
        """Every operation in the module, depth-first."""
        for op in list(self.block.operations):
            yield from op.walk()

    def ops_of(self, name: str) -> list[Operation]:
        """All operations with the given full name, anywhere."""
        return [op for op in self.walk() if op.name == name]

    def dialects_used(self) -> set[str]:
        """Dialect prefixes appearing in the module."""
        return {op.dialect for op in self.walk()}

    def clone(self) -> "Module":
        new = Module(_deep_copy_attrs(self.attributes))
        vmap: dict[Value, Value] = {}
        for op in self.block.operations:
            new.append(op.clone(vmap))
        return new

    def __str__(self) -> str:
        return print_module(self)


# ---- builder -----------------------------------------------------------------------


class Builder:
    """Appends operations at an insertion point (a block)."""

    def __init__(self, block: Block):
        self.block = block

    def create(
        self,
        name: str,
        operands: Iterable[Value] = (),
        result_types: Iterable[Type] = (),
        attributes: dict[str, Any] | None = None,
        regions: Iterable[Region] | None = None,
        result_names: Iterable[str] | None = None,
    ) -> Operation:
        """Create and append an operation; returns it."""
        op = Operation(name, operands, result_types, attributes, regions, result_names)
        self.block.append(op)
        return op


# ---- printing -----------------------------------------------------------------------


def _print_attr_value(v: Any) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, int):
        return str(v)
    if isinstance(v, float):
        return repr(v)
    if isinstance(v, str):
        return '"' + v.replace("\\", "\\\\").replace('"', '\\"') + '"'
    if isinstance(v, (list, tuple)):
        return "[" + ", ".join(_print_attr_value(x) for x in v) + "]"
    if isinstance(v, dict):
        inner = ", ".join(f"{k} = {_print_attr_value(x)}" for k, x in v.items())
        return "{" + inner + "}"
    raise IRError(f"unprintable attribute value {v!r} ({type(v).__name__})")


def _print_attrs(attrs: dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(
        f"{k} = {_print_attr_value(v)}" for k, v in sorted(attrs.items())
    )
    return " {" + inner + "}"


def _print_op(op: Operation, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    head = ""
    if op.results:
        head = ", ".join(f"%{r.name}" for r in op.results) + " = "
    operands = ", ".join(f"%{v.name}" for v in op.operands)
    sig = ""
    if op.operands or op.results:
        in_t = ", ".join(str(v.type) for v in op.operands)
        out_t = ", ".join(str(r.type) for r in op.results)
        if out_t:
            sig = f" : ({in_t}) -> ({out_t})"
        else:
            sig = f" : ({in_t})" if op.operands else ""
    line = f"{pad}{head}{op.name}({operands}){_print_attrs(op.attributes)}{sig}"
    if op.regions:
        line += " {"
        lines.append(line)
        for region in op.regions:
            for bi, block in enumerate(region.blocks):
                if block.arguments:
                    args = ", ".join(
                        f"%{a.name}: {a.type}" for a in block.arguments
                    )
                    lines.append("  " * (indent + 1) + f"^bb{bi}({args}):")
                for inner in block.operations:
                    _print_op(inner, indent + 1, lines)
        lines.append(pad + "}")
    else:
        lines.append(line)


def print_module(module: Module) -> str:
    """Stable textual form of *module* (parseable back)."""
    lines: list[str] = []
    lines.append("module" + _print_attrs(module.attributes) + " {")
    for op in module.block.operations:
        _print_op(op, 1, lines)
    lines.append("}")
    return "\n".join(lines) + "\n"


# ---- verification -------------------------------------------------------------------


def verify_module(module: Module, context: "Any | None" = None) -> None:
    """Structural verification of the whole module.

    Checks SSA dominance within each block (operands must be block
    arguments or results of earlier ops in scope) and, when *context*
    is given (an :class:`~repro.mlir.context.MLIRContext`), runs the
    registered per-op verifiers of each dialect.
    """
    _verify_region(module.body, set(), context)


def _verify_region(region: Region, outer_scope: set[Value], context) -> None:
    for block in region.blocks:
        scope = set(outer_scope)
        scope.update(block.arguments)
        for op in block.operations:
            for v in op.operands:
                if v not in scope:
                    raise IRError(
                        f"operation {op.name!r} uses value %{v.name} before "
                        "definition (SSA dominance violation)"
                    )
            if context is not None:
                context.verify_op(op)
            for nested in op.regions:
                _verify_region(nested, scope, context)
            scope.update(op.results)
