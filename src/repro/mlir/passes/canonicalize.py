"""Pulse canonicalization.

Rewrites that normalize pulse sequences without changing semantics:

* merge consecutive ``pulse.delay`` ops on the same mixed frame,
* drop zero-length delays,
* drop no-op frame updates (``shift_phase``/``shift_frequency`` with a
  statically-zero delta),
* fuse an adjacent attribute-form ``set_frequency`` + ``set_phase`` on
  the same mixed frame into one ``frame_change`` (the fused primitive
  all three paper listings use).

The pass is local (per block) and runs to a fixed point.
"""

from __future__ import annotations

from repro.mlir.context import MLIRContext
from repro.mlir.ir import Block, Module, Operation
from repro.mlir.passes.manager import Pass


def _same_mf(a: Operation, b: Operation) -> bool:
    return bool(a.operands) and bool(b.operands) and a.operands[0] is b.operands[0]


class PulseCanonicalizePass(Pass):
    """Normalize pulse sequences (see module docstring)."""

    name = "pulse-canonicalize"
    dialect = "pulse"

    def run(self, module: Module, context: MLIRContext) -> bool:
        changed = False
        for seq in module.ops_of("pulse.sequence"):
            for block in seq.region().blocks:
                while self._run_on_block(block):
                    changed = True
        return changed

    def _run_on_block(self, block: Block) -> bool:
        ops = block.operations
        for i, op in enumerate(ops):
            # Zero delay.
            if op.name == "pulse.delay" and op.attr("duration") == 0:
                op.erase()
                return True
            # No-op shifts (attribute form only: SSA deltas are dynamic).
            if (
                op.name in ("pulse.shift_phase", "pulse.shift_frequency")
                and len(op.operands) == 1
                and op.attr("delta") == 0.0
            ):
                op.erase()
                return True
            nxt = ops[i + 1] if i + 1 < len(ops) else None
            if nxt is None:
                continue
            # Merge adjacent delays on the same mixed frame.
            if (
                op.name == "pulse.delay"
                and nxt.name == "pulse.delay"
                and _same_mf(op, nxt)
            ):
                total = int(op.attr("duration")) + int(nxt.attr("duration"))
                op.attributes["duration"] = total
                nxt.erase()
                return True
            # Fuse set_frequency + set_phase (attribute forms) into
            # frame_change.
            if (
                op.name == "pulse.set_frequency"
                and nxt.name == "pulse.set_phase"
                and _same_mf(op, nxt)
                and len(op.operands) == 1
                and len(nxt.operands) == 1
                and op.attr("frequency") is not None
                and nxt.attr("phase") is not None
            ):
                fused = Operation(
                    "pulse.frame_change",
                    operands=[op.operands[0]],
                    attributes={
                        "frequency": float(op.attr("frequency")),
                        "phase": float(nxt.attr("phase")),
                    },
                )
                idx = ops.index(op)
                nxt.erase()
                op.erase()
                block.insert(idx, fused)
                return True
            # Later set_frequency on the same frame with no intervening
            # time-consuming or phase-sensitive op shadows the earlier one.
            if (
                op.name == "pulse.set_frequency"
                and nxt.name == "pulse.set_frequency"
                and _same_mf(op, nxt)
                and len(op.operands) == 1
            ):
                op.erase()
                return True
        return False


def count_pulse_ops(module: Module) -> dict[str, int]:
    """Histogram of pulse-dialect op names (test/bench helper)."""
    out: dict[str, int] = {}
    for op in module.walk():
        if op.dialect == "pulse":
            out[op.name] = out.get(op.name, 0) + 1
    return out
