"""Common-subexpression elimination for waveform constants.

Gate->pulse lowering inlines one waveform per gate instance, so a
circuit with fifty X gates initially carries fifty identical waveform
constants. This pass dedupes them within each block (keyed by a stable
encoding of the op attributes) and rewires all uses to the surviving
definition — shrinking both the IR and the eventual exchange payload.
"""

from __future__ import annotations

import json

from repro.mlir.context import MLIRContext
from repro.mlir.ir import Block, Module, Value
from repro.mlir.passes.manager import Pass


def _attr_key(attrs: dict) -> str:
    return json.dumps(attrs, sort_keys=True, default=repr)


class WaveformCSEPass(Pass):
    """Deduplicate identical ``pulse.waveform`` constants per block."""

    name = "waveform-cse"
    dialect = "pulse"

    def run(self, module: Module, context: MLIRContext) -> bool:
        changed = False
        for seq in module.ops_of("pulse.sequence"):
            for block in seq.region().blocks:
                changed |= self._run_on_block(block)
        return changed

    def _run_on_block(self, block: Block) -> bool:
        seen: dict[str, Value] = {}
        replacements: dict[Value, Value] = {}
        dead = []
        for op in block.operations:
            if op.name != "pulse.waveform":
                continue
            key = _attr_key(op.attributes)
            if key in seen:
                replacements[op.result()] = seen[key]
                dead.append(op)
            else:
                seen[key] = op.result()
        if not replacements:
            return False
        # Rewire uses anywhere below (single-block sequences in practice).
        for op in block.operations:
            op.operands = [replacements.get(v, v) for v in op.operands]
        for op in dead:
            op.erase()
        return True
