"""Compiler passes and the dialect-agnostic pass manager (paper §5.2)."""

from repro.mlir.passes.manager import Pass, PassManager, PassResult
from repro.mlir.passes.canonicalize import PulseCanonicalizePass
from repro.mlir.passes.dce import DeadWaveformEliminationPass
from repro.mlir.passes.cse import WaveformCSEPass
from repro.mlir.passes.legalize import PulseLegalizationPass

__all__ = [
    "Pass",
    "PassManager",
    "PassResult",
    "PulseCanonicalizePass",
    "DeadWaveformEliminationPass",
    "WaveformCSEPass",
    "PulseLegalizationPass",
]
