"""Dead-waveform elimination.

``pulse.waveform`` is the only side-effect-free, result-producing op in
the pulse dialect; a waveform constant nobody plays is dead weight in
the exchange payload (waveform sample tables dominate payload size), so
this pass erases unused ones. Runs to a fixed point to handle chains.
"""

from __future__ import annotations

from repro.mlir.context import MLIRContext
from repro.mlir.ir import Module, Operation, Value
from repro.mlir.passes.manager import Pass

#: Ops safe to erase when all results are unused.
_PURE_OPS = frozenset({"pulse.waveform"})


def _collect_uses(module: Module) -> set[Value]:
    used: set[Value] = set()
    for op in module.walk():
        used.update(op.operands)
    return used


class DeadWaveformEliminationPass(Pass):
    """Erase pure ops whose results are never used."""

    name = "dead-waveform-elimination"
    dialect = "pulse"

    def run(self, module: Module, context: MLIRContext) -> bool:
        changed = False
        while True:
            used = _collect_uses(module)
            dead: list[Operation] = [
                op
                for op in module.walk()
                if op.name in _PURE_OPS
                and op.results
                and not any(r in used for r in op.results)
            ]
            if not dead:
                return changed
            for op in dead:
                op.erase()
            changed = True
