"""The dialect-agnostic pass manager.

"LLVM's built-in pass manager supports MLIR dialect-agnostic
orchestration by allowing both operation-specific and
operation-agnostic passes to be registered and executed on IR modules,
regardless of the dialect they belong to — as long as the pass is
targeted to the correct dialect context. Thus, any MLIR job loaded into
memory can be processed by a pass suite appropriate for its dialect."
(paper §5.2)

Concretely: a :class:`Pass` may declare a target ``dialect``; the
:class:`PassManager` runs it only on modules that actually use that
dialect and silently skips it otherwise — which is what lets one pass
suite serve gate-only, pulse-only and mixed modules (experiment E6).
The manager verifies the module after every mutating pass, so a buggy
pass fails loudly instead of corrupting downstream stages.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.errors import PassError
from repro.mlir.context import MLIRContext
from repro.mlir.ir import Module, verify_module


class Pass(abc.ABC):
    """Base class for module-level passes."""

    #: Human-readable pass name (defaults to the class name).
    name: str = ""
    #: Target dialect; None means the pass is dialect-agnostic.
    dialect: str | None = None

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    @abc.abstractmethod
    def run(self, module: Module, context: MLIRContext) -> bool:
        """Transform *module* in place; return True when changed."""


@dataclass
class PassResult:
    """Outcome of one pass invocation."""

    name: str
    changed: bool
    skipped: bool
    runtime_s: float
    error: str | None = None


@dataclass
class PipelineReport:
    """Aggregate of one pipeline run."""

    results: list[PassResult] = field(default_factory=list)

    @property
    def any_changed(self) -> bool:
        return any(r.changed for r in self.results)

    @property
    def ran(self) -> list[str]:
        return [r.name for r in self.results if not r.skipped]

    @property
    def skipped(self) -> list[str]:
        return [r.name for r in self.results if r.skipped]

    @property
    def total_runtime_s(self) -> float:
        return sum(r.runtime_s for r in self.results)


class PassManager:
    """Orders and runs passes over a module."""

    def __init__(self, context: MLIRContext, *, verify_each: bool = True) -> None:
        self.context = context
        self.verify_each = verify_each
        self._passes: list[Pass] = []

    def add(self, pass_: Pass) -> "PassManager":
        """Append *pass_* to the pipeline (fluent)."""
        self._passes.append(pass_)
        return self

    @property
    def passes(self) -> tuple[Pass, ...]:
        return tuple(self._passes)

    def run(self, module: Module) -> PipelineReport:
        """Run the pipeline on *module* in place."""
        report = PipelineReport()
        verify_module(module, self.context)
        for p in self._passes:
            dialects = module.dialects_used()
            if p.dialect is not None and p.dialect not in dialects:
                report.results.append(PassResult(p.name, False, True, 0.0))
                continue
            t0 = time.perf_counter()
            try:
                changed = p.run(module, self.context)
            except Exception as exc:
                raise PassError(f"pass {p.name!r} failed: {exc}") from exc
            dt = time.perf_counter() - t0
            report.results.append(PassResult(p.name, bool(changed), False, dt))
            if self.verify_each and changed:
                verify_module(module, self.context)
        return report
