"""Pulse legalization against device constraints (paper challenge C3).

The paper's backend interface exists so the compiler can "query relevant
hardware constraints" during JIT compilation. This pass is where those
answers bite: constructed with the :class:`PulseConstraints` the
compiler queried over QDMI, it rewrites the pulse module to fit the
target —

* waveform durations not on the device's timing granularity are
  zero-padded up to the grid (parametric pulses are re-sampled to raw
  data first, since padding breaks the parametric form),
* parametric envelopes the hardware does not understand are lowered to
  explicit samples (when the device accepts raw samples at all),
* ``pulse.delay`` durations are aligned up to the grid,
* violations that cannot be fixed by rewriting (over-amplitude pulses,
  raw samples on a parametric-only device, out-of-range frequencies)
  raise :class:`~repro.errors.ConstraintError` — the program is
  rejected before submission rather than mangled.
"""

from __future__ import annotations

from repro.core.constraints import PulseConstraints
from repro.core.timing import align_up
from repro.core.waveform import ParametricWaveform, SampledWaveform
from repro.errors import ConstraintError
from repro.mlir.context import MLIRContext
from repro.mlir.dialects.pulse import attrs_to_waveform, waveform_to_attrs
from repro.mlir.ir import Module, Operation
from repro.mlir.passes.manager import Pass


class PulseLegalizationPass(Pass):
    """Make a pulse module satisfy one device's constraints."""

    name = "pulse-legalize"
    dialect = "pulse"

    def __init__(self, constraints: PulseConstraints) -> None:
        super().__init__()
        self.constraints = constraints

    def run(self, module: Module, context: MLIRContext) -> bool:
        changed = False
        for op in list(module.walk()):
            if op.name == "pulse.waveform":
                changed |= self._legalize_waveform(op)
            elif op.name == "pulse.delay":
                changed |= self._legalize_delay(op)
            elif op.name in ("pulse.frame_change", "pulse.set_frequency"):
                self._check_frequency(op)
        return changed

    # ---- rewrites ----------------------------------------------------------------

    def _legalize_waveform(self, op: Operation) -> bool:
        c = self.constraints
        wf = attrs_to_waveform(op.attributes)
        changed = False

        # Amplitude can never be fixed by rewriting: reject.
        peak = wf.max_amplitude()
        if peak > c.max_amplitude * (1 + 1e-9):
            raise ConstraintError(
                f"waveform peak amplitude {peak:.6g} exceeds device limit "
                f"{c.max_amplitude}"
            )
        if wf.duration > c.max_pulse_duration:
            raise ConstraintError(
                f"waveform duration {wf.duration} exceeds device limit "
                f"{c.max_pulse_duration}"
            )

        # Unsupported parametric envelope -> raw samples.
        if c.requires_sampling(wf):
            if not c.supports_raw_samples:
                raise ConstraintError(
                    f"device supports neither envelope "
                    f"{wf.envelope!r} nor raw samples"  # type: ignore[union-attr]
                )
            wf = SampledWaveform(wf.samples())
            changed = True

        # Raw samples on a parametric-only device: reject.
        if isinstance(wf, SampledWaveform) and not c.supports_raw_samples:
            raise ConstraintError("device does not accept raw sampled waveforms")

        # Grid alignment: pad with zeros up to the granularity/minimum.
        target = max(align_up(wf.duration, c.granularity), c.min_pulse_duration)
        target = max(target, align_up(c.min_pulse_duration, c.granularity))
        if target != wf.duration:
            if isinstance(wf, ParametricWaveform):
                if not c.supports_raw_samples:
                    raise ConstraintError(
                        f"cannot pad parametric waveform of duration "
                        f"{wf.duration} to granularity {c.granularity} on a "
                        "parametric-only device"
                    )
                wf = SampledWaveform(wf.samples())
            wf = wf.padded(right=target - wf.duration)
            changed = True

        if changed:
            new_attrs = waveform_to_attrs(wf)
            op.attributes.clear()
            op.attributes.update(new_attrs)
        return changed

    def _legalize_delay(self, op: Operation) -> bool:
        c = self.constraints
        duration = int(op.attr("duration"))
        aligned = align_up(duration, c.granularity)
        if aligned != duration:
            op.attributes["duration"] = aligned
            return True
        return False

    def _check_frequency(self, op: Operation) -> None:
        freq = op.attr("frequency")
        if freq is None:
            return  # SSA operand: dynamic value, checked at execution
        c = self.constraints
        if not (c.min_frequency <= float(freq) <= c.max_frequency):
            raise ConstraintError(
                f"{op.name}: frequency {freq:.6g} Hz outside device range "
                f"[{c.min_frequency:.6g}, {c.max_frequency:.6g}]"
            )
