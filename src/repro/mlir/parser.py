"""Parser for the textual IR form produced by :func:`print_module`.

A small recursive-descent parser over a regex tokenizer. The grammar is
the subset of MLIR's generic form that the printer emits::

    module    ::= 'module' attr-dict? '{' op* '}'
    op        ::= (results '=')? NAME '(' operands? ')' attr-dict?
                  signature? region?
    region    ::= '{' (block-header? op*)+ '}'
    block-hdr ::= '^bb' INT '(' typed-args ')' ':'
    signature ::= ':' '(' types? ')' ('->' '(' types? ')')?

Round-tripping (print -> parse -> print is a fixed point) is covered by
property-based tests; it is what makes MLIR-pulse a viable on-the-wire
format between the MQSS client and the compiler (paper §5.1/§5.2).
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import ParseError
from repro.mlir.ir import Block, Module, Operation, Region, Type, Value

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<arrow>->)
  | (?P<number>-?\d+\.\d+(?:[eE][+-]?\d+)?|-?\d+[eE][+-]?\d+|-?\d+)
  | (?P<caret>\^[A-Za-z_][A-Za-z0-9_]*)
  | (?P<percent>%[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<type>![A-Za-z_][A-Za-z0-9_.]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[(){}\[\],=:])
    """,
    re.VERBOSE,
)

_SCALAR_TYPES = {"i1", "i32", "i64", "f64", "index"}


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.tokens: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if m is None:
                raise ParseError(
                    f"unexpected character {text[pos]!r} at offset {pos}"
                )
            kind = m.lastgroup or ""
            if kind != "ws":
                self.tokens.append((kind, m.group()))
            pos = m.end()
        self.index = 0

    def peek(self) -> tuple[str, str]:
        if self.index >= len(self.tokens):
            return ("eof", "")
        return self.tokens[self.index]

    def next(self) -> tuple[str, str]:
        tok = self.peek()
        self.index += 1
        return tok

    def expect(self, value: str) -> None:
        kind, tok = self.next()
        if tok != value:
            raise ParseError(f"expected {value!r}, got {tok!r}")

    def accept(self, value: str) -> bool:
        if self.peek()[1] == value:
            self.index += 1
            return True
        return False


def _unescape(s: str) -> str:
    return s[1:-1].replace('\\"', '"').replace("\\\\", "\\")


class _Parser:
    def __init__(self, text: str) -> None:
        self.toks = _Tokenizer(text)

    # -- attributes ---------------------------------------------------------

    def parse_attr_value(self) -> Any:
        kind, tok = self.toks.peek()
        if kind == "string":
            self.toks.next()
            return _unescape(tok)
        if kind == "number":
            self.toks.next()
            if re.fullmatch(r"-?\d+", tok):
                return int(tok)
            return float(tok)
        if tok == "true":
            self.toks.next()
            return True
        if tok == "false":
            self.toks.next()
            return False
        if tok == "[":
            self.toks.next()
            items: list[Any] = []
            if not self.toks.accept("]"):
                while True:
                    items.append(self.parse_attr_value())
                    if self.toks.accept("]"):
                        break
                    self.toks.expect(",")
            return items
        if tok == "{":
            return self.parse_attr_dict()
        raise ParseError(f"cannot parse attribute value starting at {tok!r}")

    def parse_attr_dict(self) -> dict[str, Any]:
        self.toks.expect("{")
        out: dict[str, Any] = {}
        if self.toks.accept("}"):
            return out
        while True:
            kind, key = self.toks.next()
            if kind not in ("ident", "string"):
                raise ParseError(f"expected attribute key, got {key!r}")
            if kind == "string":
                key = _unescape(key)
            self.toks.expect("=")
            out[key] = self.parse_attr_value()
            if self.toks.accept("}"):
                return out
            self.toks.expect(",")

    def _at_attr_dict(self) -> bool:
        """Lookahead: '{' starting an attribute dict (key '=' ...) vs a
        region (op or block header)."""
        if self.toks.peek()[1] != "{":
            return False
        i = self.toks.index + 1
        toks = self.toks.tokens
        if i >= len(toks):
            return False
        kind, tok = toks[i]
        if tok == "}":
            return True  # empty braces: treat as empty attr dict
        if kind in ("ident", "string") and i + 1 < len(toks) and toks[i + 1][1] == "=":
            return True
        return False

    # -- types ---------------------------------------------------------------

    def parse_type(self) -> Type:
        kind, tok = self.toks.next()
        if kind == "type":
            return Type(tok)
        if kind == "ident" and tok in _SCALAR_TYPES:
            return Type(tok)
        raise ParseError(f"expected a type, got {tok!r}")

    def parse_type_list(self) -> list[Type]:
        self.toks.expect("(")
        types: list[Type] = []
        if self.toks.accept(")"):
            return types
        while True:
            types.append(self.parse_type())
            if self.toks.accept(")"):
                return types
            self.toks.expect(",")

    # -- operations ------------------------------------------------------------

    def parse_module(self) -> Module:
        kind, tok = self.toks.next()
        if tok != "module":
            raise ParseError(f"expected 'module', got {tok!r}")
        attrs = self.parse_attr_dict() if self._at_attr_dict() else {}
        module = Module(attrs)
        self.toks.expect("{")
        scope: dict[str, Value] = {}
        while not self.toks.accept("}"):
            module.append(self.parse_op(scope))
        if self.toks.peek()[0] != "eof":
            raise ParseError(f"trailing input after module: {self.toks.peek()[1]!r}")
        return module

    def parse_op(self, scope: dict[str, Value]) -> Operation:
        # Optional result list.
        result_names: list[str] = []
        save = self.toks.index
        while self.toks.peek()[0] == "percent":
            result_names.append(self.toks.next()[1][1:])
            if self.toks.accept("="):
                break
            if self.toks.accept(","):
                continue
            # Not a result list after all (can't happen in printed form).
            self.toks.index = save
            result_names = []
            break
        kind, opname = self.toks.next()
        if kind != "ident" or "." not in opname:
            raise ParseError(f"expected an operation name, got {opname!r}")
        # Operand list.
        self.toks.expect("(")
        operand_names: list[str] = []
        if not self.toks.accept(")"):
            while True:
                kind, tok = self.toks.next()
                if kind != "percent":
                    raise ParseError(f"expected %operand, got {tok!r}")
                operand_names.append(tok[1:])
                if self.toks.accept(")"):
                    break
                self.toks.expect(",")
        attrs = self.parse_attr_dict() if self._at_attr_dict() else {}
        # Optional signature.
        result_types: list[Type] = []
        if self.toks.accept(":"):
            in_types = self.parse_type_list()
            if len(in_types) != len(operand_names):
                raise ParseError(
                    f"{opname}: signature lists {len(in_types)} operand types "
                    f"for {len(operand_names)} operands"
                )
            if self.toks.accept("->"):
                result_types = self.parse_type_list()
        if result_names and len(result_types) != len(result_names):
            raise ParseError(
                f"{opname}: {len(result_names)} results but "
                f"{len(result_types)} result types"
            )
        operands = []
        for name in operand_names:
            if name not in scope:
                raise ParseError(f"{opname}: use of undefined value %{name}")
            operands.append(scope[name])
        op = Operation(
            opname,
            operands=operands,
            result_types=result_types,
            attributes=attrs,
            result_names=result_names or None,
        )
        for r in op.results:
            scope[r.name] = r
        # Optional region.
        if self.toks.peek()[1] == "{":
            self.toks.next()
            op.regions.append(self.parse_region(dict(scope)))
        return op

    def parse_region(self, scope: dict[str, Value]) -> Region:
        region = Region([])
        block = Block()
        region.blocks.append(block)
        started = False
        while True:
            kind, tok = self.toks.peek()
            if tok == "}":
                self.toks.next()
                return region
            if kind == "caret":
                self.toks.next()
                if started:
                    block = Block()
                    region.blocks.append(block)
                started = True
                self.toks.expect("(")
                if not self.toks.accept(")"):
                    while True:
                        k, argname = self.toks.next()
                        if k != "percent":
                            raise ParseError(
                                f"expected %arg in block header, got {argname!r}"
                            )
                        self.toks.expect(":")
                        argtype = self.parse_type()
                        v = Value(argtype, argname[1:], owner=block)
                        block.arguments.append(v)
                        scope[v.name] = v
                        if self.toks.accept(")"):
                            break
                        self.toks.expect(",")
                self.toks.expect(":")
                continue
            started = True
            block.append(self.parse_op(scope))


def parse_module(text: str) -> Module:
    """Parse the textual IR form back into a :class:`Module`."""
    return _Parser(text).parse_module()
