"""An MLIR-like multi-dialect IR infrastructure (paper §5.2).

The MQSS compiler is "fully based on LLVM-IR and LLVM-MLIR, where all
gate-based quantum circuit transformations are implemented as either
QIR or MLIR passes", and the paper's pulse challenge is solved by
adopting a *pulse dialect* alongside the gate dialects, orchestrated by
a dialect-agnostic pass manager. This package is a from-scratch Python
reproduction of exactly the slice of MLIR that architecture needs:

* :mod:`repro.mlir.ir` — types, attributes, SSA values, operations,
  regions, modules, a builder, and structural verification;
* :mod:`repro.mlir.parser` — a textual round-trip format mirroring the
  paper's Listing 2;
* :mod:`repro.mlir.dialects` — the ``quantum`` gate dialect (the
  Quake/Catalyst stand-in) and the ``pulse`` dialect (the IBM pulse
  dialect stand-in), plus a dialect registry;
* :mod:`repro.mlir.passes` — a dialect-agnostic pass manager and the
  canonicalization / DCE / legalization passes;
* :mod:`repro.mlir.interp` — the pulse-dialect interpreter that turns a
  ``pulse.sequence`` into an executable
  :class:`~repro.core.schedule.PulseSchedule`.
"""

from repro.mlir.ir import (
    Block,
    Builder,
    Module,
    Operation,
    Region,
    Type,
    Value,
    verify_module,
)
from repro.mlir.context import MLIRContext
from repro.mlir.parser import parse_module

__all__ = [
    "Type",
    "Value",
    "Operation",
    "Block",
    "Region",
    "Module",
    "Builder",
    "verify_module",
    "MLIRContext",
    "parse_module",
]
