"""The ``pulse`` dialect — the IBM-pulse-dialect stand-in (paper §5.2).

Types: ``!pulse.port``, ``!pulse.frame``, ``!pulse.mixed_frame``,
``!pulse.waveform`` — the exact type vocabulary of the paper's
Listing 2.

Ops (mirroring Listing 2 plus the gate-analogs the paper enumerates:
"barrier, delay, shift_phase, set_phase, shift_frequency,
set_frequency, and play are defined to sequence and modulate pulses
instead of qubits; readout is implemented by performing a play on a
readout frame followed by a capture"):

``pulse.sequence``
    Function-like container. Attrs ``sym_name``, ``pulse.argPorts``
    (port name per block argument, ``""`` for scalars) and
    ``pulse.args`` (human-readable argument names). Block arguments are
    typed ``!pulse.mixed_frame`` or ``f64``.
``pulse.waveform`` -> !pulse.waveform
    Waveform constant: parametric ({envelope, duration, params}) or
    explicit ({samples = [[re, im], ...]}).
``pulse.play(mf, wf)``
``pulse.frame_change(mf)`` {frequency, phase} — or SSA f64 operands.
``pulse.set_frequency / shift_frequency / set_phase / shift_phase``
``pulse.delay(mf)`` {duration}
``pulse.barrier(mf...)``
``pulse.capture(mf) -> i1`` {slot, duration}
``pulse.standard_x / standard_sx (mf)`` — calibrated gate defaults
    usable inside pulse programs (Listing 2 step 1).
``pulse.return(bits...)``
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.waveform import ParametricWaveform, SampledWaveform, Waveform
from repro.errors import IRError
from repro.mlir.context import Dialect, OpSpec
from repro.mlir.ir import (
    F64,
    I1,
    Block,
    Builder,
    Module,
    Operation,
    Region,
    Type,
    Value,
)

#: Dialect type singletons.
PORT = Type("!pulse.port")
FRAME = Type("!pulse.frame")
MIXED_FRAME = Type("!pulse.mixed_frame")
WAVEFORM = Type("!pulse.waveform")


# ---- verifiers ---------------------------------------------------------------


def _verify_sequence(op: Operation) -> None:
    if not isinstance(op.attr("sym_name"), str) or not op.attr("sym_name"):
        raise IRError("pulse.sequence: missing sym_name attribute")
    entry = op.region().entry
    arg_ports = op.attr("pulse.argPorts")
    if arg_ports is not None:
        if not isinstance(arg_ports, list) or len(arg_ports) != len(entry.arguments):
            raise IRError(
                "pulse.sequence: pulse.argPorts must list one entry per "
                "block argument"
            )
        for arg, port_name in zip(entry.arguments, arg_ports):
            if arg.type == MIXED_FRAME and not port_name:
                raise IRError(
                    f"pulse.sequence: mixed-frame argument %{arg.name} needs "
                    "a port name in pulse.argPorts"
                )
    for arg in entry.arguments:
        if arg.type not in (MIXED_FRAME, F64):
            raise IRError(
                f"pulse.sequence: argument %{arg.name} has unsupported type "
                f"{arg.type}"
            )


def _verify_waveform(op: Operation) -> None:
    if op.result().type != WAVEFORM:
        raise IRError("pulse.waveform: result must be !pulse.waveform")
    has_env = op.attr("envelope") is not None
    has_samples = op.attr("samples") is not None
    if has_env == has_samples:
        raise IRError(
            "pulse.waveform: exactly one of 'envelope' (+duration, params) "
            "or 'samples' must be given"
        )
    if has_env:
        if not isinstance(op.attr("duration"), int) or op.attr("duration") <= 0:
            raise IRError("pulse.waveform: 'duration' must be a positive int")
        if not isinstance(op.attr("params"), dict):
            raise IRError("pulse.waveform: 'params' must be a dict")
    else:
        samples = op.attr("samples")
        if not isinstance(samples, list) or not samples:
            raise IRError("pulse.waveform: 'samples' must be a non-empty list")
        for s in samples:
            if not (isinstance(s, list) and len(s) == 2):
                raise IRError(
                    "pulse.waveform: samples must be [re, im] pairs"
                )


def _expect_types(op: Operation, *types: Type) -> None:
    if len(op.operands) != len(types):
        raise IRError(
            f"{op.name}: expected {len(types)} operands, got {len(op.operands)}"
        )
    for v, t in zip(op.operands, types):
        if v.type != t:
            raise IRError(
                f"{op.name}: operand %{v.name} has type {v.type}, expected {t}"
            )


def _verify_play(op: Operation) -> None:
    _expect_types(op, MIXED_FRAME, WAVEFORM)


def _verify_frame_update(op: Operation) -> None:
    """frame_change and set/shift ops: first operand is the mixed frame;
    numeric inputs come either as f64 SSA operands or as attributes."""
    if not op.operands or op.operands[0].type != MIXED_FRAME:
        raise IRError(f"{op.name}: first operand must be !pulse.mixed_frame")
    for extra in op.operands[1:]:
        if extra.type != F64:
            raise IRError(f"{op.name}: scalar operands must be f64")
    n_scalar_operands = len(op.operands) - 1
    needed = {
        "pulse.frame_change": ("frequency", "phase"),
        "pulse.set_frequency": ("frequency",),
        "pulse.shift_frequency": ("delta",),
        "pulse.set_phase": ("phase",),
        "pulse.shift_phase": ("delta",),
    }[op.name]
    n_attrs = sum(1 for k in needed if op.attr(k) is not None)
    if n_scalar_operands + n_attrs != len(needed):
        raise IRError(
            f"{op.name}: needs {needed} via operands or attributes "
            f"(got {n_scalar_operands} operands, {n_attrs} attributes)"
        )


def _verify_delay(op: Operation) -> None:
    _expect_types(op, MIXED_FRAME)
    if not isinstance(op.attr("duration"), int) or op.attr("duration") < 0:
        raise IRError("pulse.delay: 'duration' must be a non-negative int")


def _verify_barrier(op: Operation) -> None:
    if not op.operands:
        raise IRError("pulse.barrier: needs at least one mixed frame")
    for v in op.operands:
        if v.type != MIXED_FRAME:
            raise IRError("pulse.barrier: all operands must be mixed frames")


def _verify_capture(op: Operation) -> None:
    _expect_types(op, MIXED_FRAME)
    if op.result().type != I1:
        raise IRError("pulse.capture: result must be i1")
    if not isinstance(op.attr("slot"), int) or op.attr("slot") < 0:
        raise IRError("pulse.capture: 'slot' must be a non-negative int")


def _verify_standard_gate(op: Operation) -> None:
    _expect_types(op, MIXED_FRAME)


def pulse_dialect() -> Dialect:
    """Construct the pulse dialect with all op specs registered."""
    d = Dialect("pulse")
    for short in ("port", "frame", "mixed_frame", "waveform"):
        d.register_type(short)
    d.register_op(
        OpSpec("pulse.sequence", 0, 0, has_region=True, verifier=_verify_sequence)
    )
    d.register_op(OpSpec("pulse.waveform", 0, 1, verifier=_verify_waveform))
    d.register_op(OpSpec("pulse.play", 2, 0, verifier=_verify_play))
    d.register_op(OpSpec("pulse.frame_change", -1, 0, verifier=_verify_frame_update))
    d.register_op(OpSpec("pulse.set_frequency", -1, 0, verifier=_verify_frame_update))
    d.register_op(OpSpec("pulse.shift_frequency", -1, 0, verifier=_verify_frame_update))
    d.register_op(OpSpec("pulse.set_phase", -1, 0, verifier=_verify_frame_update))
    d.register_op(OpSpec("pulse.shift_phase", -1, 0, verifier=_verify_frame_update))
    d.register_op(OpSpec("pulse.delay", 1, 0, verifier=_verify_delay))
    d.register_op(OpSpec("pulse.barrier", -1, 0, verifier=_verify_barrier))
    d.register_op(OpSpec("pulse.capture", 1, 1, verifier=_verify_capture))
    d.register_op(OpSpec("pulse.standard_x", 1, 0, verifier=_verify_standard_gate))
    d.register_op(OpSpec("pulse.standard_sx", 1, 0, verifier=_verify_standard_gate))
    d.register_op(OpSpec("pulse.return", -1, 0))
    return d


# ---- waveform <-> attribute conversion -------------------------------------------


def waveform_to_attrs(waveform: Waveform) -> dict[str, Any]:
    """Encode a core waveform as pulse.waveform attributes.

    Parametric waveforms keep their symbolic form (envelope + params);
    sampled waveforms are stored as explicit [re, im] pairs.
    """
    if isinstance(waveform, ParametricWaveform):
        return {
            "envelope": waveform.envelope,
            "duration": waveform.duration,
            "params": waveform.parameters,
        }
    samples = waveform.samples()
    return {
        "samples": [[float(s.real), float(s.imag)] for s in samples],
    }


def attrs_to_waveform(attrs: dict[str, Any]) -> Waveform:
    """Decode pulse.waveform attributes back into a core waveform."""
    if attrs.get("envelope") is not None:
        return ParametricWaveform(
            attrs["envelope"], int(attrs["duration"]), dict(attrs["params"])
        )
    samples = np.array(
        [complex(re, im) for re, im in attrs["samples"]], dtype=np.complex128
    )
    return SampledWaveform(samples)


# ---- sequence builder ----------------------------------------------------------------


class SequenceBuilder:
    """Convenience builder for ``pulse.sequence`` ops.

    Mixed-frame arguments are declared with the port they bind to
    (filling ``pulse.argPorts``), scalar arguments with a name; the
    instruction methods then mirror the dialect ops one-to-one.
    """

    def __init__(self, name: str, module: Module | None = None):
        self.module = module if module is not None else Module()
        self._block = Block()
        self.sequence = Operation(
            "pulse.sequence",
            attributes={
                "sym_name": name,
                "pulse.argPorts": [],
                "pulse.args": [],
            },
            regions=[Region([self._block])],
        )
        self.module.append(self.sequence)
        self._builder = Builder(self._block)
        self._wf_count = 0

    # -- arguments -------------------------------------------------------------

    def add_mixed_frame_arg(self, name: str, port_name: str) -> Value:
        """Declare a mixed-frame argument bound to *port_name*."""
        v = Value(MIXED_FRAME, name, owner=self._block)
        self._block.arguments.append(v)
        self.sequence.attributes["pulse.argPorts"].append(port_name)
        self.sequence.attributes["pulse.args"].append(name)
        return v

    def add_scalar_arg(self, name: str) -> Value:
        """Declare an f64 scalar argument."""
        v = Value(F64, name, owner=self._block)
        self._block.arguments.append(v)
        self.sequence.attributes["pulse.argPorts"].append("")
        self.sequence.attributes["pulse.args"].append(name)
        return v

    # -- ops --------------------------------------------------------------------

    def waveform(self, waveform: Waveform, name: str | None = None) -> Value:
        """Materialize a waveform constant; returns its SSA value."""
        self._wf_count += 1
        op = self._builder.create(
            "pulse.waveform",
            result_types=[WAVEFORM],
            attributes=waveform_to_attrs(waveform),
            result_names=[name or f"wf{self._wf_count}"],
        )
        return op.result()

    def play(self, mixed_frame: Value, waveform: Value) -> Operation:
        """Play *waveform* on *mixed_frame*."""
        return self._builder.create("pulse.play", [mixed_frame, waveform])

    def frame_change(
        self, mixed_frame: Value, frequency: "Value | float", phase: "Value | float"
    ) -> Operation:
        """Combined frequency+phase update; scalars may be SSA or constants."""
        operands = [mixed_frame]
        attrs: dict[str, Any] = {}
        if isinstance(frequency, Value):
            operands.append(frequency)
        else:
            attrs["frequency"] = float(frequency)
        if isinstance(phase, Value):
            operands.append(phase)
        else:
            attrs["phase"] = float(phase)
        return self._builder.create("pulse.frame_change", operands, attributes=attrs)

    def set_frequency(
        self, mixed_frame: Value, frequency: "Value | float"
    ) -> Operation:
        if isinstance(frequency, Value):
            return self._builder.create(
                "pulse.set_frequency", [mixed_frame, frequency]
            )
        return self._builder.create(
            "pulse.set_frequency",
            [mixed_frame],
            attributes={"frequency": float(frequency)},
        )

    def shift_phase(self, mixed_frame: Value, delta: "Value | float") -> Operation:
        if isinstance(delta, Value):
            return self._builder.create("pulse.shift_phase", [mixed_frame, delta])
        return self._builder.create(
            "pulse.shift_phase", [mixed_frame], attributes={"delta": float(delta)}
        )

    def set_phase(self, mixed_frame: Value, phase: "Value | float") -> Operation:
        if isinstance(phase, Value):
            return self._builder.create("pulse.set_phase", [mixed_frame, phase])
        return self._builder.create(
            "pulse.set_phase", [mixed_frame], attributes={"phase": float(phase)}
        )

    def shift_frequency(self, mixed_frame: Value, delta: "Value | float") -> Operation:
        if isinstance(delta, Value):
            return self._builder.create("pulse.shift_frequency", [mixed_frame, delta])
        return self._builder.create(
            "pulse.shift_frequency", [mixed_frame], attributes={"delta": float(delta)}
        )

    def delay(self, mixed_frame: Value, duration: int) -> Operation:
        """Idle the mixed frame for *duration* samples."""
        return self._builder.create(
            "pulse.delay", [mixed_frame], attributes={"duration": int(duration)}
        )

    def barrier(self, *mixed_frames: Value) -> Operation:
        """Synchronize the listed mixed frames."""
        return self._builder.create("pulse.barrier", list(mixed_frames))

    def capture(self, mixed_frame: Value, slot: int, duration: int = 0) -> Value:
        """Acquire a bit from *mixed_frame* into classical *slot*."""
        op = self._builder.create(
            "pulse.capture",
            [mixed_frame],
            result_types=[I1],
            attributes={"slot": int(slot), "duration": int(duration)},
            result_names=[f"m{slot}"],
        )
        return op.result()

    def standard_x(self, mixed_frame: Value) -> Operation:
        """Calibrated X gate on the mixed frame's site (Listing 2 step 1)."""
        return self._builder.create("pulse.standard_x", [mixed_frame])

    def standard_sx(self, mixed_frame: Value) -> Operation:
        """Calibrated sqrt(X) gate on the mixed frame's site."""
        return self._builder.create("pulse.standard_sx", [mixed_frame])

    def ret(self, *bits: Value) -> Operation:
        """Terminate the sequence, returning the captured bits."""
        return self._builder.create("pulse.return", list(bits))


def sequence_ops(module: Module) -> list[Operation]:
    """All pulse.sequence ops in *module*."""
    return module.ops_of("pulse.sequence")


def find_sequence(module: Module, name: str) -> Operation:
    """The pulse.sequence with sym_name *name*; raises if absent."""
    for op in sequence_ops(module):
        if op.attr("sym_name") == name:
            return op
    raise IRError(f"no pulse.sequence named {name!r} in module")
