"""The gate-level ``quantum`` dialect — the Quake/Catalyst stand-in.

The paper's compiler lowers "gate-based dialects — e.g., Xanadu's
Catalyst or NVIDIA's Quake — into a pulse-oriented dialect". This
dialect is the gate-based source of that lowering: a deliberately small
circuit vocabulary (``x``, ``sx``, ``rz``, ``cz``, ``measure``,
``barrier``) whose qubits are static attributes, which matches how the
QPI builder (paper Listing 1) references qubits by index.

Ops
---
``quantum.circuit``
    Region-carrying container; attrs ``sym_name`` and ``num_qubits``.
``quantum.x/sx`` {qubit}
``quantum.rz`` {qubit, theta}
``quantum.cz`` {qubits = [i, j]}
``quantum.measure`` {qubit, slot}
``quantum.barrier`` {qubits = [...]}
``quantum.gate`` {name, qubits, params} — escape hatch for custom
    gates registered by their pulse waveform (paper footnote 2).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import IRError
from repro.mlir.context import Dialect, OpSpec
from repro.mlir.ir import Block, Builder, Module, Operation, Region


def _check_qubit_attr(op: Operation) -> None:
    q = op.attr("qubit")
    if not isinstance(q, int) or q < 0:
        raise IRError(f"{op.name}: 'qubit' attribute must be a non-negative int")


def _verify_circuit(op: Operation) -> None:
    if not isinstance(op.attr("sym_name"), str) or not op.attr("sym_name"):
        raise IRError("quantum.circuit: missing sym_name attribute")
    n = op.attr("num_qubits")
    if not isinstance(n, int) or n < 1:
        raise IRError("quantum.circuit: num_qubits must be a positive int")
    for inner in op.region().entry.operations:
        for key in ("qubit",):
            q = inner.attr(key)
            if isinstance(q, int) and q >= n:
                raise IRError(
                    f"{inner.name}: qubit {q} out of range for "
                    f"{n}-qubit circuit"
                )
        qs = inner.attr("qubits")
        if isinstance(qs, list) and any(
            isinstance(q, int) and q >= n for q in qs
        ):
            raise IRError(
                f"{inner.name}: qubits {qs} out of range for {n}-qubit circuit"
            )


def _verify_rz(op: Operation) -> None:
    _check_qubit_attr(op)
    if not isinstance(op.attr("theta"), (int, float)):
        raise IRError("quantum.rz: 'theta' attribute must be a number")


def _verify_cz(op: Operation) -> None:
    qs = op.attr("qubits")
    if (
        not isinstance(qs, list)
        or len(qs) != 2
        or qs[0] == qs[1]
        or any(not isinstance(q, int) or q < 0 for q in qs)
    ):
        raise IRError("quantum.cz: 'qubits' must be two distinct qubit indices")


def _verify_measure(op: Operation) -> None:
    _check_qubit_attr(op)
    slot = op.attr("slot")
    if not isinstance(slot, int) or slot < 0:
        raise IRError("quantum.measure: 'slot' attribute must be a non-negative int")


def _verify_gate(op: Operation) -> None:
    if not isinstance(op.attr("name"), str) or not op.attr("name"):
        raise IRError("quantum.gate: missing 'name' attribute")
    qs = op.attr("qubits")
    if not isinstance(qs, list) or not qs:
        raise IRError("quantum.gate: 'qubits' must be a non-empty list")


def quantum_dialect() -> Dialect:
    """Construct the quantum dialect with all op specs registered."""
    d = Dialect("quantum")
    d.register_op(
        OpSpec("quantum.circuit", 0, 0, has_region=True, verifier=_verify_circuit)
    )
    d.register_op(OpSpec("quantum.x", 0, 0, verifier=_check_qubit_attr))
    d.register_op(OpSpec("quantum.sx", 0, 0, verifier=_check_qubit_attr))
    d.register_op(OpSpec("quantum.rz", 0, 0, verifier=_verify_rz))
    d.register_op(OpSpec("quantum.cz", 0, 0, verifier=_verify_cz))
    d.register_op(OpSpec("quantum.measure", 0, 0, verifier=_verify_measure))
    d.register_op(OpSpec("quantum.barrier", 0, 0))
    d.register_op(OpSpec("quantum.gate", 0, 0, verifier=_verify_gate))
    return d


class CircuitBuilder:
    """Convenience builder for gate-level circuits.

    Produces a module containing one ``quantum.circuit``; the methods
    mirror the QPI adapter's gate calls so adapters can translate
    mechanically.
    """

    def __init__(self, name: str, num_qubits: int, module: Module | None = None):
        self.module = module if module is not None else Module()
        self.circuit = Operation(
            "quantum.circuit",
            attributes={"sym_name": name, "num_qubits": num_qubits},
            regions=[Region([Block()])],
        )
        self.module.append(self.circuit)
        self._builder = Builder(self.circuit.region().entry)
        self.num_qubits = num_qubits

    def _gate(self, opname: str, **attrs) -> "CircuitBuilder":
        self._builder.create(opname, attributes=attrs)
        return self

    def x(self, qubit: int) -> "CircuitBuilder":
        """Append an X gate."""
        return self._gate("quantum.x", qubit=qubit)

    def sx(self, qubit: int) -> "CircuitBuilder":
        """Append a sqrt(X) gate."""
        return self._gate("quantum.sx", qubit=qubit)

    def rz(self, qubit: int, theta: float) -> "CircuitBuilder":
        """Append a virtual-Z rotation."""
        return self._gate("quantum.rz", qubit=qubit, theta=float(theta))

    def cz(self, a: int, b: int) -> "CircuitBuilder":
        """Append a CZ gate."""
        return self._gate("quantum.cz", qubits=[a, b])

    def gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> "CircuitBuilder":
        """Append a custom (waveform-defined) gate by name."""
        return self._gate(
            "quantum.gate",
            name=name,
            qubits=list(qubits),
            params=[float(p) for p in params],
        )

    def barrier(self, *qubits: int) -> "CircuitBuilder":
        """Append a barrier over the given qubits (all when empty)."""
        qs = list(qubits) if qubits else list(range(self.num_qubits))
        return self._gate("quantum.barrier", qubits=qs)

    def measure(self, qubit: int, slot: int | None = None) -> "CircuitBuilder":
        """Append a measurement of *qubit* into *slot* (default: qubit)."""
        return self._gate(
            "quantum.measure", qubit=qubit, slot=qubit if slot is None else slot
        )
