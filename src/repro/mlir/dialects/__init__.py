"""IR dialects: the gate-level ``quantum`` dialect and the ``pulse``
dialect (paper §5.2)."""

from repro.mlir.dialects.quantum import quantum_dialect
from repro.mlir.dialects.pulse import pulse_dialect

__all__ = ["quantum_dialect", "pulse_dialect"]
