"""QIR module object model.

A faithful-but-small subset of an LLVM module: named opaque types,
global constants, one entry function whose body is a linear list of
intrinsic calls, declarations, and an attribute group. The textual
form (see :mod:`repro.qir.emitter`) matches the paper's Listing 3
conventions: pulse operations are ``call``s to declared-but-undefined
``__quantum__pulse__*`` symbols on opaque ``%Port``/``%Waveform``/
``%Frame`` pointers, resolved at link time by the device runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import ValidationError

#: The pulse intrinsic surface (the proposed Pulse Profile vocabulary).
PULSE_INTRINSICS = frozenset(
    {
        "__quantum__pulse__port__body",
        "__quantum__pulse__frame__body",
        "__quantum__pulse__waveform__body",
        "__quantum__pulse__waveform_parametric__body",
        "__quantum__pulse__waveform_play__body",
        "__quantum__pulse__frame_change__body",
        "__quantum__pulse__set_frequency__body",
        "__quantum__pulse__shift_frequency__body",
        "__quantum__pulse__set_phase__body",
        "__quantum__pulse__shift_phase__body",
        "__quantum__pulse__delay__body",
        "__quantum__pulse__barrier__body",
        "__quantum__pulse__capture__body",
    }
)

#: The gate-level QIS intrinsics the linker also resolves (the paper's
#: Listing 3 mixes `__quantum__qis__mz__body` with pulse calls).
QIS_INTRINSICS = frozenset(
    {
        "__quantum__qis__x__body",
        "__quantum__qis__sx__body",
        "__quantum__qis__rz__body",
        "__quantum__qis__cz__body",
        "__quantum__qis__mz__body",
    }
)


@dataclass(frozen=True)
class QIRArg:
    """One call argument: an LLVM type spelling + a value.

    ``kind`` distinguishes how ``value`` is interpreted:

    * ``"literal"`` — int or float literal (``i64 32``, ``double 0.5``)
    * ``"global"`` — reference to a global constant (``i8* @name``)
    * ``"local"`` — reference to an SSA result (``%Port* %p0``)
    * ``"qubit"`` / ``"result"`` — ``inttoptr`` encoded static index
    """

    type: str
    kind: str
    value: Union[int, float, str]

    def __post_init__(self) -> None:
        if self.kind not in ("literal", "global", "local", "qubit", "result"):
            raise ValidationError(f"bad QIR arg kind {self.kind!r}")

    def render(self) -> str:
        if self.kind == "literal":
            if isinstance(self.value, float):
                return f"{self.type} {self.value!r}"
            return f"{self.type} {self.value}"
        if self.kind == "global":
            return f"{self.type} @{self.value}"
        if self.kind == "local":
            return f"{self.type} %{self.value}"
        if self.kind == "qubit":
            return f"%Qubit* inttoptr (i64 {self.value} to %Qubit*)"
        return f"%Result* inttoptr (i64 {self.value} to %Result*)"


@dataclass
class QIRCall:
    """One ``call`` instruction in the entry function."""

    callee: str
    args: list[QIRArg] = field(default_factory=list)
    result: str | None = None  # SSA name without the %
    result_type: str = "void"

    def render(self) -> str:
        args = ", ".join(a.render() for a in self.args)
        call = f"call {self.result_type} @{self.callee}({args})"
        if self.result is not None:
            return f"%{self.result} = {call}"
        return f"{call}"


@dataclass
class QIRGlobal:
    """A global constant: a name string or a double array."""

    name: str
    kind: str  # "string" | "f64_array"
    data: Union[str, list[float]]

    def __post_init__(self) -> None:
        if self.kind not in ("string", "f64_array"):
            raise ValidationError(f"bad QIR global kind {self.kind!r}")

    def render(self) -> str:
        if self.kind == "string":
            assert isinstance(self.data, str)
            payload = self.data.replace("\\", "\\5C").replace('"', "\\22")
            n = len(self.data) + 1  # trailing NUL, LLVM-style
            return (
                f"@{self.name} = private constant [{n} x i8] "
                f'c"{payload}\\00"'
            )
        assert isinstance(self.data, list)
        body = ", ".join(f"double {v!r}" for v in self.data)
        return (
            f"@{self.name} = private constant "
            f"[{len(self.data)} x double] [{body}]"
        )


@dataclass
class QIRModule:
    """A QIR module: globals + one entry function + attributes."""

    module_id: str
    entry_name: str
    globals: list[QIRGlobal] = field(default_factory=list)
    body: list[QIRCall] = field(default_factory=list)
    attributes: dict[str, str] = field(default_factory=dict)
    declared: set[str] = field(default_factory=set)

    def global_named(self, name: str) -> QIRGlobal:
        for g in self.globals:
            if g.name == name:
                return g
        raise ValidationError(f"QIR module has no global @{name}")

    def callees(self) -> set[str]:
        """Every intrinsic symbol called in the body."""
        return {c.callee for c in self.body}

    def profile(self) -> str:
        """The declared profile name ('pulse', 'base', ...)."""
        return self.attributes.get("qir_profiles", "base")

    def uses_pulse_intrinsics(self) -> bool:
        return bool(self.callees() & PULSE_INTRINSICS)

    def render(self) -> str:
        """Emit the textual LLVM-like form."""
        lines: list[str] = [f"; ModuleID = '{self.module_id}'"]
        lines += [
            "%Qubit = type opaque",
            "%Result = type opaque",
            "%Port = type opaque",
            "%Frame = type opaque",
            "%Waveform = type opaque",
            "",
        ]
        for g in self.globals:
            lines.append(g.render())
        if self.globals:
            lines.append("")
        lines.append(f"define void @{self.entry_name}() #0 {{")
        lines.append("entry:")
        for call in self.body:
            lines.append("  " + call.render())
        lines.append("  ret void")
        lines.append("}")
        lines.append("")
        for sym in sorted(self.callees() | self.declared):
            lines.append(f"declare void @{sym}()")
        lines.append("")
        attrs = " ".join(
            f'"{k}"="{v}"' if v else f'"{k}"'
            for k, v in sorted(self.attributes.items())
        )
        lines.append(f"attributes #0 = {{ {attrs} }}")
        return "\n".join(lines) + "\n"
