"""QIR runtime linking: intrinsic calls -> an executable schedule.

"At runtime, the hardware-specific QDMI Device layer would link these
calls to the actual device APIs that implement waveform generation and
scheduling" (paper §5.4). This module is that link step for the
simulated devices: each ``__quantum__pulse__*`` call is resolved to a
core pulse instruction bound to the device's ports, and each
``__quantum__qis__*`` gate call is resolved through the device's
calibration set — which is how gate-level and pulse-level instructions
"seamlessly coexist ... in the same QIR LLVM module".

Unresolvable symbols or malformed handle usage raise
:class:`~repro.errors.LinkError`.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.frame import Frame
from repro.core.instructions import (
    Capture,
    Delay,
    FrameChange,
    Play,
    SetFrequency,
    SetPhase,
    ShiftFrequency,
    ShiftPhase,
)
from repro.core.schedule import PulseSchedule
from repro.core.waveform import ParametricWaveform, SampledWaveform
from repro.errors import LinkError
from repro.qir.module import PULSE_INTRINSICS, QIS_INTRINSICS, QIRCall, QIRModule
from repro.qir.parser import parse_qir
from repro.qir.profile import validate_profile

import numpy as np


def _string_global(module: QIRModule, name: str) -> str:
    g = module.global_named(name)
    if g.kind != "string":
        raise LinkError(f"global @{name} is not a string constant")
    return str(g.data)


def _array_global(module: QIRModule, name: str) -> np.ndarray:
    g = module.global_named(name)
    if g.kind != "f64_array":
        raise LinkError(f"global @{name} is not a double array")
    return np.asarray(g.data, dtype=np.float64)


class _Linker:
    def __init__(self, module: QIRModule, device: Any) -> None:
        self.module = module
        self.device = device
        self.env: dict[str, Any] = {}
        self.schedule = PulseSchedule(module.entry_name)

    def _resolve(self, call: QIRCall, index: int) -> Any:
        arg = call.args[index]
        if arg.kind == "local":
            try:
                return self.env[str(arg.value)]
            except KeyError:
                raise LinkError(
                    f"@{call.callee}: undefined handle %{arg.value}"
                ) from None
        if arg.kind == "global":
            return str(arg.value)
        return arg.value

    def _bind(self, call: QIRCall, value: Any) -> None:
        if call.result is not None:
            self.env[call.result] = value

    def link(self) -> PulseSchedule:
        report = validate_profile(self.module)
        if not report.valid:
            raise LinkError(
                "QIR profile validation failed: " + "; ".join(report.errors)
            )
        for call in self.module.body:
            if call.callee in PULSE_INTRINSICS:
                self._link_pulse(call)
            elif call.callee in QIS_INTRINSICS:
                self._link_qis(call)
            else:  # pragma: no cover - validation already rejects this
                raise LinkError(f"unresolved symbol @{call.callee}")
        return self.schedule

    # ---- pulse intrinsics ----------------------------------------------------------

    def _link_pulse(self, call: QIRCall) -> None:
        c = call.callee
        if c == "__quantum__pulse__port__body":
            port_name = _string_global(self.module, str(self._resolve(call, 0)))
            self._bind(call, self.device.port(port_name))
        elif c == "__quantum__pulse__frame__body":
            port = self._resolve(call, 0)
            fname = _string_global(self.module, str(self._resolve(call, 1)))
            freq = float(self._resolve(call, 2))
            phase = float(self._resolve(call, 3))
            self._bind(call, Frame(fname, freq, phase))
        elif c == "__quantum__pulse__waveform__body":
            n = int(self._resolve(call, 0))
            re_part = _array_global(self.module, str(self._resolve(call, 1)))
            im_part = _array_global(self.module, str(self._resolve(call, 2)))
            if len(re_part) != n or len(im_part) != n:
                raise LinkError(
                    f"waveform length mismatch: declared {n}, data "
                    f"{len(re_part)}/{len(im_part)}"
                )
            self._bind(call, SampledWaveform(re_part + 1j * im_part))
        elif c == "__quantum__pulse__waveform_parametric__body":
            envelope = _string_global(self.module, str(self._resolve(call, 0)))
            duration = int(self._resolve(call, 1))
            params = json.loads(
                _string_global(self.module, str(self._resolve(call, 2)))
            )
            self._bind(call, ParametricWaveform(envelope, duration, params))
        elif c == "__quantum__pulse__waveform_play__body":
            port, frame, wf = (self._resolve(call, i) for i in range(3))
            self.schedule.append(Play(port, frame, wf))
        elif c == "__quantum__pulse__frame_change__body":
            port, frame = self._resolve(call, 0), self._resolve(call, 1)
            self.schedule.append(
                FrameChange(
                    port,
                    frame,
                    float(self._resolve(call, 2)),
                    float(self._resolve(call, 3)),
                )
            )
        elif c == "__quantum__pulse__set_frequency__body":
            port, frame = self._resolve(call, 0), self._resolve(call, 1)
            self.schedule.append(
                SetFrequency(port, frame, float(self._resolve(call, 2)))
            )
        elif c == "__quantum__pulse__shift_frequency__body":
            port, frame = self._resolve(call, 0), self._resolve(call, 1)
            self.schedule.append(
                ShiftFrequency(port, frame, float(self._resolve(call, 2)))
            )
        elif c == "__quantum__pulse__set_phase__body":
            port, frame = self._resolve(call, 0), self._resolve(call, 1)
            self.schedule.append(SetPhase(port, frame, float(self._resolve(call, 2))))
        elif c == "__quantum__pulse__shift_phase__body":
            port, frame = self._resolve(call, 0), self._resolve(call, 1)
            self.schedule.append(ShiftPhase(port, frame, float(self._resolve(call, 2))))
        elif c == "__quantum__pulse__delay__body":
            port = self._resolve(call, 0)
            self.schedule.append(Delay(port, int(self._resolve(call, 1))))
        elif c == "__quantum__pulse__barrier__body":
            count = int(self._resolve(call, 0))
            ports = [self._resolve(call, 1 + i) for i in range(count)]
            self.schedule.barrier(*ports)
        elif c == "__quantum__pulse__capture__body":
            port, frame = self._resolve(call, 0), self._resolve(call, 1)
            self.schedule.append(
                Capture(
                    port,
                    frame,
                    int(self._resolve(call, 2)),
                    int(self._resolve(call, 3)),
                )
            )
            self._bind(call, None)
        else:  # pragma: no cover
            raise LinkError(f"unhandled pulse intrinsic @{c}")

    # ---- QIS (gate-level) intrinsics -------------------------------------------------

    def _link_qis(self, call: QIRCall) -> None:
        c = call.callee
        cal = self.device.calibrations

        def qubit(index: int) -> int:
            arg = call.args[index]
            if arg.kind != "qubit":
                raise LinkError(f"@{c}: argument {index} is not a %Qubit*")
            return int(arg.value)

        if c == "__quantum__qis__x__body":
            cal.get("x", (qubit(0),)).apply(self.schedule, [])
        elif c == "__quantum__qis__sx__body":
            cal.get("sx", (qubit(0),)).apply(self.schedule, [])
        elif c == "__quantum__qis__rz__body":
            theta = float(self._resolve(call, 0))
            cal.get("rz", (qubit(1),)).apply(self.schedule, [theta])
        elif c == "__quantum__qis__cz__body":
            a, b = sorted((qubit(0), qubit(1)))
            cal.get("cz", (a, b)).apply(self.schedule, [])
        elif c == "__quantum__qis__mz__body":
            q = qubit(0)
            result_arg = call.args[1]
            if result_arg.kind != "result":
                raise LinkError(
                    "@__quantum__qis__mz__body: second arg must be %Result*"
                )
            cal.get("measure", (q,)).apply(self.schedule, [int(result_arg.value)])
        else:  # pragma: no cover
            raise LinkError(f"unhandled QIS intrinsic @{c}")


def link_qir_to_schedule(payload: "QIRModule | str", device: Any) -> PulseSchedule:
    """Link a QIR payload (text or module) against *device*."""
    module = parse_qir(payload) if isinstance(payload, str) else payload
    return _Linker(module, device).link()
