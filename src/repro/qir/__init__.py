"""QIR with a Pulse Profile — the exchange format (paper §5.4).

The paper proposes "extending the QIR specification with a Pulse
Profile to natively carry pulse-level abstractions, and using that QIR
with pulse support as the default exchange format for pulses in MQSS".
This package reproduces the whole mechanism:

* :mod:`repro.qir.module` — the LLVM-module-like object model: opaque
  ``%Port``/``%Frame``/``%Waveform`` types, global constants (waveform
  sample tables, name strings), an entry function of intrinsic calls,
  and the attribute group carrying ``qir_profiles="pulse"``;
* :mod:`repro.qir.emitter` — pulse schedule -> QIR text (the paper's
  Listing 3 shape);
* :mod:`repro.qir.parser` — QIR text -> module model;
* :mod:`repro.qir.profile` — Base/Pulse profile validation;
* :mod:`repro.qir.linker` — resolves ``__quantum__pulse__*`` and
  ``__quantum__qis__*`` intrinsics against a concrete device ("at
  runtime, the hardware-specific QDMI Device layer would link these
  calls to the actual device APIs"), producing an executable schedule.
"""

from repro.qir.module import (
    QIRArg,
    QIRCall,
    QIRGlobal,
    QIRModule,
    PULSE_INTRINSICS,
    QIS_INTRINSICS,
)
from repro.qir.emitter import schedule_to_qir
from repro.qir.parser import parse_qir
from repro.qir.profile import ProfileReport, validate_profile
from repro.qir.linker import link_qir_to_schedule

__all__ = [
    "QIRModule",
    "QIRGlobal",
    "QIRCall",
    "QIRArg",
    "PULSE_INTRINSICS",
    "QIS_INTRINSICS",
    "schedule_to_qir",
    "parse_qir",
    "validate_profile",
    "ProfileReport",
    "link_qir_to_schedule",
]
