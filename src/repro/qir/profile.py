"""QIR profile validation (Base vs Pulse).

QIR "already defines the notion of Profiles to specialize this
LLVM-compliant IR for certain hardware or use cases" (paper §5.4). The
proposed Pulse Profile augments the Base Profile with the port/frame/
waveform abstractions; validation enforces the membership rules:

* a module whose attribute group says ``qir_profiles="pulse"`` may use
  both pulse and QIS intrinsics;
* a Base-Profile module must not call any ``__quantum__pulse__*``
  symbol;
* every called symbol must belong to a known vocabulary;
* SSA discipline inside the entry function (handles defined before
  use, no redefinition);
* the ``required_num_ports`` / ``required_num_results`` metadata must
  match the body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.qir.module import PULSE_INTRINSICS, QIS_INTRINSICS, QIRModule


@dataclass
class ProfileReport:
    """Outcome of profile validation."""

    profile: str
    valid: bool
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    num_pulse_calls: int = 0
    num_qis_calls: int = 0
    num_ports: int = 0
    num_results: int = 0


def validate_profile(module: QIRModule) -> ProfileReport:
    """Validate *module* against its declared profile."""
    profile = module.profile()
    report = ProfileReport(profile=profile, valid=True)

    known = PULSE_INTRINSICS | QIS_INTRINSICS
    defined: set[str] = set()
    ports: set[str] = set()
    results = 0

    for call in module.body:
        if call.callee in PULSE_INTRINSICS:
            report.num_pulse_calls += 1
        elif call.callee in QIS_INTRINSICS:
            report.num_qis_calls += 1
        else:
            report.errors.append(f"unknown intrinsic @{call.callee}")
        if call.callee not in known:
            continue
        # SSA discipline.
        for arg in call.args:
            if arg.kind == "local" and arg.value not in defined:
                report.errors.append(
                    f"@{call.callee}: use of undefined handle %{arg.value}"
                )
            if arg.kind == "global" and not _has_global(module, str(arg.value)):
                report.errors.append(
                    f"@{call.callee}: reference to missing global @{arg.value}"
                )
        if call.result is not None:
            if call.result in defined:
                report.errors.append(f"handle %{call.result} redefined")
            defined.add(call.result)
        if call.callee == "__quantum__pulse__port__body":
            ports.add(str(call.args[0].value) if call.args else "?")
        if call.callee == "__quantum__pulse__capture__body":
            results += 1
        if call.callee == "__quantum__qis__mz__body":
            results += 1

    report.num_ports = len(ports)
    report.num_results = results

    if profile == "base" and report.num_pulse_calls > 0:
        report.errors.append(
            "base profile module calls pulse intrinsics; declare "
            'qir_profiles="pulse"'
        )
    if profile == "pulse" and "entry_point" not in module.attributes:
        report.warnings.append("pulse profile module missing entry_point attribute")

    want_ports = module.attributes.get("required_num_ports")
    if want_ports is not None and int(want_ports) != report.num_ports:
        report.errors.append(
            f"required_num_ports={want_ports} but body constructs "
            f"{report.num_ports} ports"
        )
    want_results = module.attributes.get("required_num_results")
    if want_results is not None and int(want_results) != report.num_results:
        report.errors.append(
            f"required_num_results={want_results} but body produces "
            f"{report.num_results} results"
        )

    report.valid = not report.errors
    return report


def _has_global(module: QIRModule, name: str) -> bool:
    return any(g.name == name for g in module.globals)
