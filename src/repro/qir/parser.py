"""QIR text parser.

Parses the LLVM-like textual form back into a :class:`QIRModule`. The
format is machine-generated and line-oriented: one global, declaration,
or call per line, which keeps the parser a set of anchored regexes
instead of a full LLVM grammar. Round-trip (emit -> parse -> emit fixed
point) is covered by tests.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.qir.module import QIRArg, QIRCall, QIRGlobal, QIRModule

_MODULE_ID_RE = re.compile(r";\s*ModuleID\s*=\s*'([^']*)'")
_STRING_GLOBAL_RE = re.compile(
    r"@([\w.]+)\s*=\s*(?:private\s+)?constant\s*\[\d+\s*x\s*i8\]\s*c\"(.*)\"\s*$"
)
_ARRAY_GLOBAL_RE = re.compile(
    r"@([\w.]+)\s*=\s*(?:private\s+)?constant\s*\[\d+\s*x\s*double\]\s*\[(.*)\]\s*$"
)
_DEFINE_RE = re.compile(r"define\s+void\s+@([\w.]+)\s*\(\)\s*#0\s*\{")
_CALL_RE = re.compile(
    r"(?:%([\w.]+)\s*=\s*)?call\s+([\w%*]+)\s+@([\w.]+)\s*\((.*)\)\s*$"
)
_DECLARE_RE = re.compile(r"declare\s+[\w%*]+\s+@([\w.]+)")
_ATTR_LINE_RE = re.compile(r"attributes\s+#0\s*=\s*\{(.*)\}")
_ATTR_ITEM_RE = re.compile(r'"([^"]+)"(?:\s*=\s*"([^"]*)")?')
_QUBIT_PTR_RE = re.compile(
    r"%(Qubit|Result)\*\s+inttoptr\s*\(\s*i64\s+(\d+)\s+to\s+%(?:Qubit|Result)\*\s*\)"
)


def _unescape_c_string(payload: str) -> str:
    out = []
    i = 0
    while i < len(payload):
        ch = payload[i]
        if ch == "\\" and i + 2 < len(payload) + 1:
            code = payload[i + 1 : i + 3]
            out.append(chr(int(code, 16)))
            i += 3
        else:
            out.append(ch)
            i += 1
    text = "".join(out)
    return text[:-1] if text.endswith("\x00") else text


def _split_args(argstr: str) -> list[str]:
    """Split a call argument list on top-level commas (parens may nest
    inside ``inttoptr (...)``)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in argstr:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_arg(text: str) -> QIRArg:
    m = _QUBIT_PTR_RE.fullmatch(text)
    if m:
        kind = "qubit" if m.group(1) == "Qubit" else "result"
        return QIRArg(f"%{m.group(1)}*", kind, int(m.group(2)))
    pieces = text.split(None, 1)
    if len(pieces) != 2:
        raise ParseError(f"cannot parse QIR argument {text!r}")
    type_, value = pieces
    value = value.strip()
    if value.startswith("@"):
        return QIRArg(type_, "global", value[1:])
    if value.startswith("%"):
        return QIRArg(type_, "local", value[1:])
    try:
        if re.fullmatch(r"-?\d+", value):
            return QIRArg(type_, "literal", int(value))
        return QIRArg(type_, "literal", float(value))
    except ValueError:
        raise ParseError(f"cannot parse QIR literal {value!r}") from None


def parse_qir(text: str) -> QIRModule:
    """Parse QIR text into a :class:`QIRModule`."""
    module_id = "module"
    entry = None
    globals_: list[QIRGlobal] = []
    body: list[QIRCall] = []
    declared: set[str] = set()
    attributes: dict[str, str] = {}
    in_function = False

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        m = _MODULE_ID_RE.match(line)
        if m:
            module_id = m.group(1)
            continue
        if line.startswith("%") and "type opaque" in line:
            continue
        m = _STRING_GLOBAL_RE.match(line)
        if m:
            globals_.append(
                QIRGlobal(m.group(1), "string", _unescape_c_string(m.group(2)))
            )
            continue
        m = _ARRAY_GLOBAL_RE.match(line)
        if m:
            values = []
            for piece in _split_args(m.group(2)):
                tokens = piece.split()
                if len(tokens) != 2 or tokens[0] != "double":
                    raise ParseError(f"bad array element {piece!r}")
                values.append(float(tokens[1]))
            globals_.append(QIRGlobal(m.group(1), "f64_array", values))
            continue
        m = _DEFINE_RE.match(line)
        if m:
            entry = m.group(1)
            in_function = True
            continue
        if line == "entry:":
            continue
        if line == "ret void":
            continue
        if line == "}":
            in_function = False
            continue
        m = _DECLARE_RE.match(line)
        if m:
            declared.add(m.group(1))
            continue
        m = _ATTR_LINE_RE.match(line)
        if m:
            for item in _ATTR_ITEM_RE.finditer(m.group(1)):
                attributes[item.group(1)] = item.group(2) or ""
            continue
        m = _CALL_RE.match(line)
        if m and in_function:
            result, result_type, callee, argstr = m.groups()
            args = (
                [_parse_arg(a) for a in _split_args(argstr)] if argstr.strip() else []
            )
            body.append(QIRCall(callee, args, result=result, result_type=result_type))
            continue
        if in_function:
            raise ParseError(f"unrecognized line inside function: {line!r}")
        # Tolerate unknown top-level lines (comments, metadata).
        if not line.startswith(";"):
            raise ParseError(f"unrecognized top-level line: {line!r}")

    if entry is None:
        raise ParseError("QIR module has no entry function")
    return QIRModule(
        module_id=module_id,
        entry_name=entry,
        globals=globals_,
        body=body,
        attributes=attributes,
        declared=declared,
    )
