"""QIR emission: pulse schedule -> QIR text with the Pulse Profile.

The emitter produces exactly the shape of the paper's Listing 3:

* opaque ``%Port``/``%Frame``/``%Waveform`` types,
* ``__quantum__pulse__*`` intrinsic calls constructing waveforms and
  playing them on ports,
* the ``#0`` attribute group with ``qir_profiles="pulse"``,
  ``output_labeling_schema`` and ``required_num_ports``.

Like the schedule->MLIR lift, event times are pinned with explicit
delay intrinsics so the linker's ASAP replay reconstructs the exact
schedule; sampled waveforms become double-array globals (separate
re/im tables), parametric waveforms stay symbolic through a JSON
parameter string — keeping the payload small when the device can
evaluate envelopes natively.
"""

from __future__ import annotations

import json
import re

from repro.core.frame import Frame
from repro.core.instructions import (
    Barrier,
    Capture,
    Delay,
    FrameChange,
    Play,
    SetFrequency,
    SetPhase,
    ShiftFrequency,
    ShiftPhase,
)
from repro.core.port import Port
from repro.core.schedule import PulseSchedule
from repro.core.waveform import ParametricWaveform
from repro.errors import ValidationError
from repro.qir.module import QIRArg, QIRCall, QIRGlobal, QIRModule


def _sanitize(name: str) -> str:
    return re.sub(r"[^0-9A-Za-z_]", "_", name)


class _Emitter:
    def __init__(self, schedule: PulseSchedule, name: str) -> None:
        self.schedule = schedule
        self.module = QIRModule(module_id=name, entry_name=name)
        self._string_globals: dict[str, str] = {}
        self._ports: dict[str, str] = {}  # port name -> SSA name
        self._frames: dict[tuple[str, str], str] = {}  # (port, frame) -> SSA
        self._waveforms: dict[str, str] = {}  # fingerprint -> SSA
        self._ssa = 0

    def _fresh(self, prefix: str) -> str:
        self._ssa += 1
        return f"{prefix}{self._ssa}"

    def _string(self, text: str) -> str:
        """Intern a string constant; returns the global's name."""
        if text not in self._string_globals:
            gname = f"s_{_sanitize(text)}_{len(self._string_globals)}"
            self._string_globals[text] = gname
            self.module.globals.append(QIRGlobal(gname, "string", text))
        return self._string_globals[text]

    def _port_value(self, port: Port) -> str:
        if port.name not in self._ports:
            ssa = self._fresh("port")
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__port__body",
                    [QIRArg("i8*", "global", self._string(port.name))],
                    result=ssa,
                    result_type="%Port*",
                )
            )
            self._ports[port.name] = ssa
        return self._ports[port.name]

    def _frame_value(self, port: Port, frame: Frame) -> str:
        key = (port.name, frame.name)
        if key not in self._frames:
            pssa = self._port_value(port)
            ssa = self._fresh("frame")
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__frame__body",
                    [
                        QIRArg("%Port*", "local", pssa),
                        QIRArg("i8*", "global", self._string(frame.name)),
                        QIRArg("double", "literal", float(frame.frequency)),
                        QIRArg("double", "literal", float(frame.phase)),
                    ],
                    result=ssa,
                    result_type="%Frame*",
                )
            )
            self._frames[key] = ssa
        return self._frames[key]

    def _waveform_value(self, waveform) -> str:
        fp = waveform.fingerprint()
        if fp in self._waveforms:
            return self._waveforms[fp]
        ssa = self._fresh("wf")
        if isinstance(waveform, ParametricWaveform):
            params_json = json.dumps(waveform.parameters, sort_keys=True)
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__waveform_parametric__body",
                    [
                        QIRArg("i8*", "global", self._string(waveform.envelope)),
                        QIRArg("i64", "literal", int(waveform.duration)),
                        QIRArg("i8*", "global", self._string(params_json)),
                    ],
                    result=ssa,
                    result_type="%Waveform*",
                )
            )
        else:
            samples = waveform.samples()
            re_name = f"wfdata_re_{len(self.module.globals)}"
            self.module.globals.append(
                QIRGlobal(re_name, "f64_array", [float(v) for v in samples.real])
            )
            im_name = f"wfdata_im_{len(self.module.globals)}"
            self.module.globals.append(
                QIRGlobal(im_name, "f64_array", [float(v) for v in samples.imag])
            )
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__waveform__body",
                    [
                        QIRArg("i64", "literal", int(waveform.duration)),
                        QIRArg("double*", "global", re_name),
                        QIRArg("double*", "global", im_name),
                    ],
                    result=ssa,
                    result_type="%Waveform*",
                )
            )
        self._waveforms[fp] = ssa
        return ssa

    # ---- body -------------------------------------------------------------------

    def emit(self) -> QIRModule:
        port_free: dict[str, int] = {}
        result_count = 0
        for item in self.schedule.ordered():
            ins = item.instruction
            if isinstance(ins, (Barrier, Delay)):
                # Pure timing: the gap logic below regenerates the exact
                # delay calls needed to pin the next event's start time,
                # so emit(link(emit(s))) is a fixed point.
                continue
            pname = ins.port.name
            free = port_free.get(pname, 0)
            if free < item.t0:
                self.module.body.append(
                    QIRCall(
                        "__quantum__pulse__delay__body",
                        [
                            QIRArg("%Port*", "local", self._port_value(ins.port)),
                            QIRArg("i64", "literal", item.t0 - free),
                        ],
                    )
                )
            elif free > item.t0:
                raise ValidationError(
                    f"QIR emission: event at t={item.t0} on {pname!r} "
                    f"precedes port free time {free}"
                )
            self._emit_instruction(ins)
            if isinstance(ins, Capture):
                result_count += 1
            port_free[pname] = item.t0 + ins.duration

        self.module.attributes.update(
            {
                "entry_point": "",
                "qir_profiles": "pulse",
                "output_labeling_schema": "schedule_v1",
                "required_num_ports": str(len(self._ports)),
                "required_num_results": str(result_count),
            }
        )
        return self.module

    def _emit_instruction(self, ins) -> None:
        def pf(instruction) -> list[QIRArg]:
            return [
                QIRArg("%Port*", "local", self._port_value(instruction.port)),
                QIRArg(
                    "%Frame*",
                    "local",
                    self._frame_value(instruction.port, instruction.frame),
                ),
            ]

        if isinstance(ins, Play):
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__waveform_play__body",
                    pf(ins)
                    + [
                        QIRArg(
                            "%Waveform*", "local", self._waveform_value(ins.waveform)
                        )
                    ],
                )
            )
        elif isinstance(ins, FrameChange):
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__frame_change__body",
                    pf(ins)
                    + [
                        QIRArg("double", "literal", float(ins.frequency)),
                        QIRArg("double", "literal", float(ins.phase)),
                    ],
                )
            )
        elif isinstance(ins, SetFrequency):
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__set_frequency__body",
                    pf(ins) + [QIRArg("double", "literal", float(ins.frequency))],
                )
            )
        elif isinstance(ins, ShiftFrequency):
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__shift_frequency__body",
                    pf(ins) + [QIRArg("double", "literal", float(ins.delta))],
                )
            )
        elif isinstance(ins, SetPhase):
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__set_phase__body",
                    pf(ins) + [QIRArg("double", "literal", float(ins.phase))],
                )
            )
        elif isinstance(ins, ShiftPhase):
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__shift_phase__body",
                    pf(ins) + [QIRArg("double", "literal", float(ins.delta))],
                )
            )
        elif isinstance(ins, Capture):
            self.module.body.append(
                QIRCall(
                    "__quantum__pulse__capture__body",
                    pf(ins)
                    + [
                        QIRArg("i64", "literal", int(ins.memory_slot)),
                        QIRArg("i64", "literal", int(ins.duration_samples)),
                    ],
                    result=f"m{ins.memory_slot}",
                    result_type="i1",
                )
            )
        else:
            raise ValidationError(f"QIR emission: unsupported instruction {ins!r}")


def schedule_to_qir(schedule: PulseSchedule, name: str | None = None) -> str:
    """Emit *schedule* as QIR text with the Pulse Profile."""
    kernel = _sanitize(name or schedule.name or "kernel")
    return _Emitter(schedule, kernel).emit().render()
