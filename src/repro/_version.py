"""Package version, kept importable without triggering heavy imports."""

__version__ = "0.1.0"
