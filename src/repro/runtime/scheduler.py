"""The second-level scheduler and calibration-aware planning.

MQSS's QRM&CI "encompasses MQSS's second-level scheduler" (Fig. 2); the
pulse extension's calibration use case (§2.1) asks that "QC service
providers, like HPC centers ... dynamically schedule calibrations based
on anticipated demand", enabling "resource-aware calibration planning".

:class:`SecondLevelScheduler` orders queued jobs by (priority, arrival)
and drains them through the serving layer: :meth:`drain` builds a
:class:`~repro.serving.service.PulseService` over the client, so
independent devices execute concurrently while each device's queue
keeps priority+FIFO order. Request coalescing and failover are
disabled in this mode — the scheduler promises one device execution
per queued job, in schedule order, which the calibration-aware
subclass depends on.

:class:`CalibrationAwareScheduler` additionally tracks a drift budget
per device — wall-clock since last calibration times the device's drift
rate — and interleaves a calibration callback whenever the predicted
frequency error crosses a threshold, amortizing it before batches
rather than mid-stream. The hook runs on the device's worker thread,
serialized per device by the worker pool.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.client.client import ClientResult, JobRequest, MQSSClient
from repro.runtime.telemetry import Telemetry


@dataclass(order=True)
class ScheduledJob:
    """A queued request with scheduling metadata."""

    sort_key: tuple = field(init=False, repr=False)
    request: JobRequest = field(compare=False)
    arrival: int = field(compare=False, default=0)
    result: ClientResult | None = field(compare=False, default=None)
    #: Stamped when the job enters the queue; the wait clock starts here.
    enqueued_at: float = field(compare=False, default=0.0)
    #: Time from enqueue to dispatch-start (pure queueing delay; it does
    #: not include the job's own execution).
    wait_s: float = field(compare=False, default=0.0)

    def __post_init__(self) -> None:
        self.sort_key = (-self.request.priority, self.arrival)


@dataclass
class SchedulerReport:
    """Outcome of draining the queue."""

    completed: int = 0
    failed: int = 0
    calibrations: int = 0
    total_wall_s: float = 0.0
    per_device_jobs: dict[str, int] = field(default_factory=dict)
    mean_wait_s: float = 0.0


class SecondLevelScheduler:
    """Priority + FIFO scheduling of client requests over devices."""

    def __init__(self, client: MQSSClient) -> None:
        self.client = client
        self.telemetry = Telemetry()
        self.telemetry.register("scheduler")
        self._queue: list[ScheduledJob] = []
        self._arrivals = 0

    def enqueue(self, request: JobRequest) -> ScheduledJob:
        """Queue a request; returns its scheduling handle."""
        job = ScheduledJob(
            request=request,
            arrival=self._arrivals,
            enqueued_at=time.perf_counter(),
        )
        self._arrivals += 1
        self._queue.append(job)
        self.telemetry.incr("enqueued")
        return job

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _before_dispatch(self, job: ScheduledJob, report: SchedulerReport) -> None:
        """Hook for subclasses (calibration interleaving).

        Called on the worker thread of the job's device, immediately
        before the job executes; calls are serialized per device (and
        globally serialized by the drain-wide hook lock)."""

    def _make_service(self, capacity: int):
        """The PulseService drain() executes through (one per drain)."""
        from repro.serving import (
            CapabilityRouter,
            PulseService,
            RequestBatcher,
        )

        return PulseService(
            self.client,
            router=CapabilityRouter(self.client.driver, allow_failover=False),
            batcher=RequestBatcher(enabled=False),
            max_pending=max(1, capacity),
            per_device_pending=None,
            # One worker per device: the _before_dispatch contract
            # (hook + execution serialized per device, schedule order
            # preserved) requires it.
            workers_per_device=1,
            start=False,
        )

    def drain(self) -> SchedulerReport:
        """Run every queued job to completion, in schedule order."""
        report = SchedulerReport()
        t_start = time.perf_counter()
        queue = sorted(self._queue)
        self._queue.clear()

        service = self._make_service(len(queue))
        jobs_by_ticket: dict[Any, ScheduledJob] = {}
        hook_lock = threading.Lock()

        def hook(entry) -> None:
            job = jobs_by_ticket[entry.ticket]
            with hook_lock:
                self._before_dispatch(job, report)

        service.before_execute = hook

        # Queue everything before the workers start, so each device
        # pool sees the full (priority, arrival) order up front.
        # Admission goes through the service's internal core (the same
        # path Executable.run_async uses), not the deprecated shim.
        pairs = []
        for job in queue:
            ticket = service._admit_request(job.request)
            jobs_by_ticket[ticket] = job
            pairs.append((job, ticket))
        service.start()
        try:
            for job, ticket in pairs:
                error = ticket.exception()
                if error is None:
                    job.result = ticket.result()
                    report.completed += 1
                    dev = job.result.device
                    report.per_device_jobs[dev] = (
                        report.per_device_jobs.get(dev, 0) + 1
                    )
                    self.telemetry.incr("completed")
                else:
                    report.failed += 1
                    self.telemetry.incr("failures")
                if ticket.dispatched_at is not None:
                    job.wait_s = max(0.0, ticket.dispatched_at - job.enqueued_at)
        finally:
            service.stop()

        report.total_wall_s = time.perf_counter() - t_start
        self.telemetry.add_time("drain", report.total_wall_s)
        waits = [j.wait_s for j in queue]
        report.mean_wait_s = sum(waits) / len(waits) if waits else 0.0
        return report


class CalibrationAwareScheduler(SecondLevelScheduler):
    """Interleaves calibrations when a device's drift budget is spent.

    A thin shim over the pipeline subsystem since PR 9: the
    drift-budget arithmetic lives in
    :class:`repro.pipeline.triggers.DriftBudgetTrigger` (exposed here
    as :attr:`trigger`; its per-device clock *is* the legacy
    ``_drift_clock`` dict), and each firing executes the calibration
    callback as a one-task pipeline DAG through
    :class:`~repro.pipeline.runner.PipelineRunner` — so interleaved
    recalibrations appear in the same ``repro_pipeline_*`` metrics and
    trace spans as any other scheduled calibration workload.

    Parameters
    ----------
    client:
        The MQSS client used for execution.
    calibrate:
        Callback ``calibrate(device_name) -> None`` that runs the
        calibration routine (typically
        :func:`repro.calibration.ramsey.track_frequency` + frame
        write-back).
    error_budget_hz:
        Predicted frequency error at which calibration is triggered.
    job_seconds:
        Simulated wall-clock seconds of device time per user job (the
        drift clock advanced between jobs).
    """

    def __init__(
        self,
        client: MQSSClient,
        calibrate: Callable[[str], None],
        *,
        error_budget_hz: float = 50e3,
        job_seconds: float = 10.0,
    ) -> None:
        super().__init__(client)
        from repro.pipeline.triggers import DriftBudgetTrigger

        self.calibrate = calibrate
        self.error_budget_hz = error_budget_hz
        self.job_seconds = job_seconds
        self.trigger = DriftBudgetTrigger(error_budget_hz)
        # Legacy alias: the trigger's clock is the drift clock (shared
        # dict, not a copy — existing introspection keeps working).
        self._drift_clock = self.trigger.clock

    def _run_calibration(self, name: str) -> None:
        """Execute the calibration callback as a pipeline DAG run."""
        from repro.client.remote import RemoteDeviceProxy
        from repro.errors import PipelineError
        from repro.pipeline.dag import DAG
        from repro.pipeline.runner import PipelineRunner

        device = self.client.driver.get_device(name)
        if isinstance(device, RemoteDeviceProxy):
            device = device.inner
        dag = DAG(f"recalibrate-{name}")
        dag.task("calibrate", "callback")
        runner = PipelineRunner(
            device, extras={"callback": lambda: self.calibrate(name)}
        )
        run = runner.run(dag)
        if not run.ok:
            raise PipelineError(
                f"interleaved recalibration of {name!r} failed: {run.error}"
            )

    def _before_dispatch(self, job: ScheduledJob, report: SchedulerReport) -> None:
        name = job.request.device
        device = self.client.driver.get_device(name)
        from repro.client.remote import RemoteDeviceProxy

        if isinstance(device, RemoteDeviceProxy):
            device = device.inner
        if not hasattr(device, "advance_time"):
            return
        # Device time passes (drift accumulates) between jobs.
        device.advance_time(self.job_seconds)
        if self.trigger.note_elapsed(name, device, self.job_seconds):
            with self.telemetry.timer("calibration"):
                self._run_calibration(name)
            report.calibrations += 1
            self.telemetry.incr("calibrations")
            self.trigger.reset(name)
