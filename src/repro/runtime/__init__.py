"""Runtime resource management (paper Fig. 2: "MQSS's second-level
scheduler" inside the Quantum Resource Manager & Compiler
Infrastructure).

* :mod:`repro.runtime.scheduler` — a priority/FIFO second-level
  scheduler over multiple QDMI devices (drained through the
  :mod:`repro.serving` worker pools, so independent devices execute
  concurrently), plus the calibration-aware variant that implements
  §2.1's "resource-aware calibration planning": it watches each
  device's drift budget and interleaves calibration runs with user
  jobs.
* :mod:`repro.runtime.telemetry` — thread-safe counters and wall-clock
  timers used across the runtime benchmarks and the serving metrics.
"""

from repro.runtime.scheduler import (
    CalibrationAwareScheduler,
    ScheduledJob,
    SchedulerReport,
    SecondLevelScheduler,
)
from repro.runtime.telemetry import Telemetry

__all__ = [
    "SecondLevelScheduler",
    "CalibrationAwareScheduler",
    "ScheduledJob",
    "SchedulerReport",
    "Telemetry",
]
