"""Counters and timers for runtime observability.

QDMI's stated use cases include "telemetry-driven error mitigation"
(paper §5.3); this small module is the telemetry sink the scheduler
and benchmarks write into.

:class:`Telemetry` is thread-safe: the serving layer
(:mod:`repro.serving`) writes into one instance from every device
worker thread, so all counter/timer mutation happens under a lock.
Richer aggregation (latency histograms, text exposition) lives in
:mod:`repro.serving.metrics`, layered on top of this class.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class Telemetry:
    """Named counters + accumulated timers (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.counters: dict[str, float] = {}
        self.timers: dict[str, float] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount*."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of counter *name* (0 when unset)."""
        with self._lock:
            return self.counters.get(name, 0.0)

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* of wall-clock time under *name*."""
        with self._lock:
            self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        """Accumulate wall-clock time under *name*."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def snapshot(self) -> dict[str, float]:
        """Counters and timers merged into one dict (timers suffixed)."""
        with self._lock:
            out = dict(self.counters)
            out.update({f"{k}_s": v for k, v in self.timers.items()})
        return out
