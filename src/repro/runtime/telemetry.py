"""Counters and timers for runtime observability.

QDMI's stated use cases include "telemetry-driven error mitigation"
(paper §5.3); this small module is the telemetry sink the scheduler
and benchmarks write into.

:class:`Telemetry` is thread-safe: the serving layer
(:mod:`repro.serving`) writes into one instance from every device
worker thread, so all counter/timer mutation happens under a lock.
Richer aggregation (latency histograms, text exposition) lives in
:mod:`repro.serving.metrics`; process-wide exposition lives in
:mod:`repro.obs` — call :meth:`Telemetry.register` to publish an
instance on the global :data:`repro.obs.REGISTRY`.

.. note::
   :meth:`Telemetry.snapshot` now namespaces counters and timers
   under distinct keys. The historical flat merge (where a counter
   literally named ``foo_s`` silently collided with timer ``foo``'s
   suffixed entry) survives as the deprecated
   :meth:`Telemetry.flat_snapshot`.
"""

from __future__ import annotations

import re
import threading
import time
import warnings
from contextlib import contextmanager

_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


class Telemetry:
    """Named counters + accumulated timers (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.counters: dict[str, float] = {}
        self.timers: dict[str, float] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount*."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of counter *name* (0 when unset)."""
        with self._lock:
            return self.counters.get(name, 0.0)

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* of wall-clock time under *name*."""
        with self._lock:
            self.timers[name] = self.timers.get(name, 0.0) + seconds

    def get_time(self, name: str) -> float:
        """Accumulated seconds under timer *name* (0 when unset)."""
        with self._lock:
            return self.timers.get(name, 0.0)

    @contextmanager
    def timer(self, name: str):
        """Accumulate wall-clock time under *name*."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{"counters": {...}, "timers": {...}}`` (timers in s).

        Counters and timers live under distinct keys, so a counter
        named ``foo_s`` can no longer collide with timer ``foo``.
        """
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": dict(self.timers),
            }

    def flat_snapshot(self) -> dict[str, float]:
        """Deprecated: the historical flat counter/timer merge.

        Timer names gain an ``_s`` suffix and overwrite any counter
        of the same suffixed name — the collision :meth:`snapshot`
        exists to avoid. Kept one release for migration.
        """
        warnings.warn(
            "Telemetry.flat_snapshot() is deprecated; use "
            "snapshot()['counters'] / snapshot()['timers'] instead",
            DeprecationWarning,
            stacklevel=2,
        )
        with self._lock:
            out = dict(self.counters)
            out.update({f"{k}_s": v for k, v in self.timers.items()})
        return out

    def register(self, name: str | None = None) -> str:
        """Publish this instance on the global obs registry.

        Emits ``repro_telemetry_counter_total{instance=...,name=...}``
        and ``repro_telemetry_timer_seconds_total`` series via a
        weak-reference collector (the series vanish when the
        instance is garbage-collected). *name* is used as a prefix —
        each registration gets a unique ``name-N`` instance label so
        two same-named registrants never emit duplicate series.
        Returns the instance label.
        """
        import weakref

        from repro.obs.metrics import REGISTRY

        name = REGISTRY.autoname(name or "telemetry")
        ref = weakref.ref(self)

        def collect():
            obj = ref()
            if obj is None:
                return None
            snap = obj.snapshot()
            samples = []
            for key, value in snap["counters"].items():
                samples.append(
                    (
                        "repro_telemetry_counter_total",
                        "counter",
                        {
                            "instance": name,
                            "name": _SANITIZE_RE.sub("_", key),
                        },
                        value,
                    )
                )
            for key, value in snap["timers"].items():
                samples.append(
                    (
                        "repro_telemetry_timer_seconds_total",
                        "counter",
                        {
                            "instance": name,
                            "name": _SANITIZE_RE.sub("_", key),
                        },
                        value,
                    )
                )
            return samples

        collect._obs_alive = lambda: ref() is not None
        REGISTRY.register_collector(collect)
        return name
