"""Counters and timers for runtime observability.

QDMI's stated use cases include "telemetry-driven error mitigation"
(paper §5.3); this small module is the telemetry sink the scheduler
and benchmarks write into.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class Telemetry:
    """Named counters + accumulated timers."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.timers: dict[str, float] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount*."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of counter *name* (0 when unset)."""
        return self.counters.get(name, 0.0)

    @contextmanager
    def timer(self, name: str):
        """Accumulate wall-clock time under *name*."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timers[name] = self.timers.get(name, 0.0) + (
                time.perf_counter() - t0
            )

    def snapshot(self) -> dict[str, float]:
        """Counters and timers merged into one dict (timers suffixed)."""
        out = dict(self.counters)
        out.update({f"{k}_s": v for k, v in self.timers.items()})
        return out
