"""Pulse instructions: the atomic operations of a pulse schedule.

These mirror the op vocabulary the paper adopts from IBM's MLIR pulse
dialect (§5.2): ``play``, ``frame_change``, ``set_phase``/``shift_phase``,
``set_frequency``/``shift_frequency``, ``delay``, ``barrier`` and
``capture``. Every instruction names the :class:`~repro.core.port.Port`
(and usually :class:`~repro.core.frame.Frame`) it acts on, plus a
duration in samples; zero-duration instructions (frame updates,
barriers) model virtual operations that consume no wall-clock time on
the control electronics.

Instructions are immutable values; the mutable object is the
:class:`~repro.core.schedule.PulseSchedule` that sequences them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.frame import Frame
from repro.core.port import Port
from repro.core.waveform import Waveform
from repro.errors import ValidationError


@dataclass(frozen=True)
class Instruction:
    """Base class. ``duration`` is in samples; ``ports`` lists every
    channel the instruction touches (used for per-channel scheduling)."""

    def __post_init__(self) -> None:  # pragma: no cover - overridden
        pass

    @property
    def duration(self) -> int:
        """Wall-clock length in samples (0 for virtual instructions)."""
        return 0

    @property
    def ports(self) -> tuple[Port, ...]:
        """Channels this instruction occupies."""
        return ()

    @property
    def is_virtual(self) -> bool:
        """True when the instruction consumes no time."""
        return self.duration == 0


@dataclass(frozen=True)
class Play(Instruction):
    """Emit *waveform* on *port*, modulated by *frame*.

    The paper's ``qPlayWaveform(port, waveform)`` / ``pulse.play`` /
    ``__quantum__pulse__waveform_play__body``.
    """

    port: Port
    frame: Frame
    waveform: Waveform

    def __post_init__(self) -> None:
        if not isinstance(self.waveform, Waveform):
            raise ValidationError(f"Play needs a Waveform, got {self.waveform!r}")
        if self.port.is_output:
            raise ValidationError(
                f"cannot play on output port {self.port.name!r}; use Capture"
            )

    @property
    def duration(self) -> int:
        return self.waveform.duration

    @property
    def ports(self) -> tuple[Port, ...]:
        return (self.port,)


def _check_finite(value: float, what: str) -> float:
    v = float(value)
    if not math.isfinite(v):
        raise ValidationError(f"{what} must be finite, got {value!r}")
    return v


@dataclass(frozen=True)
class SetFrequency(Instruction):
    """Set the carrier frequency of *frame* on *port* (virtual)."""

    port: Port
    frame: Frame
    frequency: float

    def __post_init__(self) -> None:
        f = _check_finite(self.frequency, "frequency")
        if f < 0:
            raise ValidationError(f"frequency must be >= 0, got {f}")

    @property
    def ports(self) -> tuple[Port, ...]:
        return (self.port,)


@dataclass(frozen=True)
class ShiftFrequency(Instruction):
    """Shift the carrier frequency of *frame* on *port* by *delta* Hz."""

    port: Port
    frame: Frame
    delta: float

    def __post_init__(self) -> None:
        _check_finite(self.delta, "frequency shift")

    @property
    def ports(self) -> tuple[Port, ...]:
        return (self.port,)


@dataclass(frozen=True)
class SetPhase(Instruction):
    """Set the static phase of *frame* on *port* (virtual Z)."""

    port: Port
    frame: Frame
    phase: float

    def __post_init__(self) -> None:
        _check_finite(self.phase, "phase")

    @property
    def ports(self) -> tuple[Port, ...]:
        return (self.port,)


@dataclass(frozen=True)
class ShiftPhase(Instruction):
    """Shift the static phase of *frame* on *port* by *delta* rad."""

    port: Port
    frame: Frame
    delta: float

    def __post_init__(self) -> None:
        _check_finite(self.delta, "phase shift")

    @property
    def ports(self) -> tuple[Port, ...]:
        return (self.port,)


@dataclass(frozen=True)
class FrameChange(Instruction):
    """Combined frequency+phase update — the paper's
    ``qFrameChange(port, frequency, phase)`` primitive.

    Semantically equivalent to a :class:`SetFrequency` followed by a
    :class:`SetPhase`; kept as one instruction because the QPI, the MLIR
    dialect and the QIR intrinsic all expose it fused, and the
    canonicalization pass may split or re-fuse it.
    """

    port: Port
    frame: Frame
    frequency: float
    phase: float

    def __post_init__(self) -> None:
        f = _check_finite(self.frequency, "frequency")
        if f < 0:
            raise ValidationError(f"frequency must be >= 0, got {f}")
        _check_finite(self.phase, "phase")

    @property
    def ports(self) -> tuple[Port, ...]:
        return (self.port,)


@dataclass(frozen=True)
class Delay(Instruction):
    """Idle *port* for ``duration_samples`` samples."""

    port: Port
    duration_samples: int

    def __post_init__(self) -> None:
        if not isinstance(self.duration_samples, int) or self.duration_samples < 0:
            raise ValidationError(
                f"delay duration must be a non-negative int, "
                f"got {self.duration_samples!r}"
            )

    @property
    def duration(self) -> int:
        return self.duration_samples

    @property
    def ports(self) -> tuple[Port, ...]:
        return (self.port,)


@dataclass(frozen=True)
class Barrier(Instruction):
    """Synchronize a set of ports: no instruction after the barrier on
    any listed port may start before every listed port reaches it."""

    barrier_ports: tuple[Port, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.barrier_ports) < 1:
            raise ValidationError("barrier needs at least one port")
        if len(set(self.barrier_ports)) != len(self.barrier_ports):
            raise ValidationError("barrier ports must be distinct")

    @property
    def ports(self) -> tuple[Port, ...]:
        return self.barrier_ports


@dataclass(frozen=True)
class Capture(Instruction):
    """Acquire a readout result from an output *port* into classical
    *memory_slot*, integrating for ``duration_samples`` samples.

    The paper's ``pulse.capture`` / measurement step. Readout on real
    hardware is a stimulus ``Play`` on the readout port followed by a
    ``Capture`` on the acquire port; the gate->pulse lowering emits both.
    """

    port: Port
    frame: Frame
    memory_slot: int
    duration_samples: int = 0

    def __post_init__(self) -> None:
        if not self.port.is_output:
            raise ValidationError(
                f"capture requires an output port, got {self.port.name!r}"
            )
        if not isinstance(self.memory_slot, int) or self.memory_slot < 0:
            raise ValidationError(
                f"memory slot must be a non-negative int, got {self.memory_slot!r}"
            )
        if not isinstance(self.duration_samples, int) or self.duration_samples < 0:
            raise ValidationError(
                f"capture duration must be a non-negative int, "
                f"got {self.duration_samples!r}"
            )

    @property
    def duration(self) -> int:
        return self.duration_samples

    @property
    def ports(self) -> tuple[Port, ...]:
        return (self.port,)
