"""Pulse-stretch schedule dilation — the noise-scaling half of ZNE.

Zero-noise extrapolation needs the *same* unitary executed at scaled
noise levels. On a pulse stack the canonical knob is time dilation
(Kandala et al., "Error mitigation extends the computational reach of
a noisy quantum processor"): stretch every pulse by a factor ``c >= 1``
and shrink its amplitude so the pulse *area* — and with it the
implemented rotation — is exactly preserved, while the circuit spends
``c`` times longer exposed to T1/T2 decay. Extrapolating the measured
expectation values back to ``c -> 0`` estimates the zero-noise limit.

:func:`stretch_schedule` dilates a compiled
:class:`~repro.core.schedule.PulseSchedule`:

* ``Play`` — the waveform is resampled to the dilated length and
  renormalized so its complex sample sum (the rotation-generating
  area, for on-resonance drives) is bit-for-bit preserved; amplitudes
  therefore scale as ``~1/c``.
* ``Delay`` — duration scales with ``c``.
* ``Capture`` — start time scales, the integration window does *not*:
  readout is instrumentation, not circuit, and dilating it would
  change what is measured rather than how noisily.
* virtual instructions (frame updates, barriers) — carry over with
  scaled start times; a virtual Z costs no time at any stretch.

Start times map through ``floor(c * t)``, which preserves per-port
ordering and can never create overlaps for ``c >= 1``
(``floor(c*a) - floor(c*b) >= a - b`` for integers ``a >= b``), so the
rebuilt schedule is valid by construction; any residual conflict (or a
pulse dilated past the target's ``max_pulse_duration``) raises a clear
:class:`~repro.errors.ValidationError` instead of silently returning
an un-stretched schedule.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.instructions import Capture, Delay, Play
from repro.core.schedule import PulseSchedule
from repro.core.waveform import SampledWaveform, Waveform
from repro.errors import ScheduleError, ValidationError


def coerce_stretch_factor(factor) -> float:
    """Validate a ZNE stretch factor: finite, ``>= 1``."""
    try:
        c = float(factor)
    except (TypeError, ValueError):
        raise ValidationError(
            f"stretch factor must be a number, got {factor!r}"
        ) from None
    if not math.isfinite(c) or c < 1.0:
        raise ValidationError(
            f"stretch factor must be finite and >= 1, got {factor!r}"
        )
    return c


def stretch_waveform(waveform: Waveform, duration: int) -> Waveform:
    """Resample *waveform* to *duration* samples, preserving its area.

    Linear interpolation on sample midpoints, then a global rescale so
    the complex sample sum matches the original exactly — for an
    on-resonance drive that sum is the rotation angle, so the dilated
    pulse implements the same gate at ``~1/c`` amplitude. Zero-area
    envelopes (pure derivative components) scale by ``n/duration``
    instead, keeping their amplitude on the same ``1/c`` trajectory.
    """
    if duration < 1:
        raise ValidationError(
            f"stretched duration must be >= 1 sample, got {duration}"
        )
    samples = np.asarray(waveform.samples(), dtype=np.complex128)
    n = samples.size
    if duration == n:
        return waveform
    old_x = (np.arange(n, dtype=np.float64) + 0.5) / n
    new_x = (np.arange(duration, dtype=np.float64) + 0.5) / duration
    out = np.interp(new_x, old_x, samples.real) + 1j * np.interp(
        new_x, old_x, samples.imag
    )
    area_old = samples.sum()
    area_new = out.sum()
    scale_floor = 1e-9 * (np.abs(samples).max() + 1.0)
    if abs(area_old) > scale_floor and abs(area_new) > scale_floor:
        out *= area_old / area_new
    else:
        out *= n / duration
    return SampledWaveform(out)


def stretch_schedule(
    schedule: PulseSchedule,
    factor,
    *,
    constraints=None,
) -> PulseSchedule:
    """Dilate *schedule* by *factor* (``>= 1``); see the module docs.

    *constraints* (a :class:`~repro.core.constraints.PulseConstraints`)
    is optional; when given, a pulse dilated beyond its
    ``max_pulse_duration`` raises :class:`~repro.errors.ValidationError`
    — the stretch-factor sweep should fail loudly, not execute a
    truncated circuit.
    """
    c = coerce_stretch_factor(factor)
    if c == 1.0:
        return schedule
    max_duration = None if constraints is None else constraints.max_pulse_duration
    out = PulseSchedule(f"{schedule.name}@x{c:g}")
    for item in schedule.ordered():
        ins = item.instruction
        t0 = int(math.floor(item.t0 * c))
        t1 = int(math.floor(item.t1 * c))
        if isinstance(ins, Play):
            length = max(1, t1 - t0)
            if max_duration is not None and length > max_duration:
                raise ValidationError(
                    f"stretch factor {c:g} dilates a "
                    f"{ins.waveform.duration}-sample pulse to {length} "
                    f"samples, beyond max_pulse_duration={max_duration}"
                )
            ins = Play(ins.port, ins.frame, stretch_waveform(ins.waveform, length))
        elif isinstance(ins, Delay):
            ins = Delay(ins.port, max(0, t1 - t0))
        elif isinstance(ins, Capture):
            pass  # readout window untouched; only its start time scales
        try:
            out.insert(t0, ins)
        except ScheduleError as exc:
            raise ValidationError(
                f"cannot stretch schedule {schedule.name!r} by {c:g}: {exc}"
            ) from exc
    return out
