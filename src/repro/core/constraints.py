"""Device pulse constraints, as published over QDMI (paper §5.3).

The backend interface must let the stack "query quantum accelerators
regarding their supported pulse implementations" — the allowed range of
values for pulse parameters, timing granularity, amplitude bounds, and
which parametric envelopes the control electronics understand natively.
:class:`PulseConstraints` is the record devices return from a QDMI
query, and which the compiler's legalization pass (paper challenge C3)
checks and enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instructions import Capture, Delay, FrameChange, Play, SetFrequency
from repro.core.schedule import PulseSchedule
from repro.core.timing import validate_granularity
from repro.core.waveform import ParametricWaveform, Waveform
from repro.errors import ConstraintError


@dataclass(frozen=True)
class PulseConstraints:
    """Hardware limits for pulse programs on one device.

    Attributes
    ----------
    dt:
        Sample period in seconds (e.g. ``1e-9`` for a 1 GS/s AWG).
    granularity:
        Start times and durations must be multiples of this many samples.
    min_pulse_duration / max_pulse_duration:
        Bounds on a single waveform's length in samples.
    max_amplitude:
        Peak |amplitude| allowed on any sample (normalized units).
    max_schedule_duration:
        Upper bound on total schedule length in samples (0 = unlimited).
    supported_envelopes:
        Parametric envelope names the hardware understands natively;
        ``None`` means "any" (device accepts arbitrary sampled data).
    min_frequency / max_frequency:
        Allowed carrier frequency range in Hz for frame updates.
    num_memory_slots:
        Classical result slots available for captures.
    supports_raw_samples:
        Whether explicitly sampled waveforms are accepted at all (some
        arbitrary-waveform-generator-less platforms only take
        parametric pulses).
    """

    dt: float = 1e-9
    granularity: int = 1
    min_pulse_duration: int = 1
    max_pulse_duration: int = 1_000_000
    max_amplitude: float = 1.0
    max_schedule_duration: int = 0
    supported_envelopes: frozenset[str] | None = None
    min_frequency: float = 0.0
    max_frequency: float = 20e9
    num_memory_slots: int = 64
    supports_raw_samples: bool = True
    extras: tuple[tuple[str, float], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ConstraintError(f"dt must be > 0, got {self.dt}")
        if self.granularity < 1:
            raise ConstraintError(f"granularity must be >= 1, got {self.granularity}")
        if self.min_pulse_duration < 1:
            raise ConstraintError("min_pulse_duration must be >= 1")
        if self.max_pulse_duration < self.min_pulse_duration:
            raise ConstraintError(
                "max_pulse_duration must be >= min_pulse_duration"
            )
        if self.max_amplitude <= 0:
            raise ConstraintError("max_amplitude must be > 0")
        if self.min_frequency < 0 or self.max_frequency < self.min_frequency:
            raise ConstraintError("invalid frequency range")

    # ---- single-object checks --------------------------------------------------

    def validate_waveform(self, waveform: Waveform) -> None:
        """Raise :class:`ConstraintError` if *waveform* is not playable."""
        d = waveform.duration
        if d < self.min_pulse_duration:
            raise ConstraintError(
                f"waveform duration {d} below minimum {self.min_pulse_duration}"
            )
        if d > self.max_pulse_duration:
            raise ConstraintError(
                f"waveform duration {d} above maximum {self.max_pulse_duration}"
            )
        try:
            validate_granularity(d, self.granularity, "waveform duration")
        except Exception as exc:
            raise ConstraintError(str(exc)) from None
        peak = waveform.max_amplitude()
        if peak > self.max_amplitude * (1 + 1e-9):
            raise ConstraintError(
                f"waveform peak amplitude {peak:.6g} exceeds limit {self.max_amplitude}"
            )
        if isinstance(waveform, ParametricWaveform):
            if (
                self.supported_envelopes is not None
                and waveform.envelope not in self.supported_envelopes
                and not self.supports_raw_samples
            ):
                raise ConstraintError(
                    f"envelope {waveform.envelope!r} unsupported and device "
                    "rejects raw samples"
                )
        elif not self.supports_raw_samples:
            raise ConstraintError("device does not accept raw sampled waveforms")

    def validate_frequency(self, frequency: float) -> None:
        """Raise unless *frequency* lies in the device's carrier range."""
        if not (self.min_frequency <= frequency <= self.max_frequency):
            raise ConstraintError(
                f"frequency {frequency:.6g} Hz outside "
                f"[{self.min_frequency:.6g}, {self.max_frequency:.6g}]"
            )

    def requires_sampling(self, waveform: Waveform) -> bool:
        """True when the compiler must lower *waveform* to raw samples
        because the hardware doesn't know its parametric form."""
        if not isinstance(waveform, ParametricWaveform):
            return False
        if self.supported_envelopes is None:
            return False
        return waveform.envelope not in self.supported_envelopes

    # ---- whole-schedule check ----------------------------------------------------

    def validate_schedule(self, schedule: PulseSchedule) -> None:
        """Validate every instruction and timing in *schedule*.

        Raises :class:`ConstraintError` with the first violation found.
        """
        too_long = (
            self.max_schedule_duration
            and schedule.duration > self.max_schedule_duration
        )
        if too_long:
            raise ConstraintError(
                f"schedule duration {schedule.duration} exceeds device limit "
                f"{self.max_schedule_duration}"
            )
        used_slots: set[int] = set()
        for item in schedule.ordered():
            ins = item.instruction
            try:
                validate_granularity(item.t0, self.granularity, "start time")
            except Exception as exc:
                raise ConstraintError(str(exc)) from None
            if isinstance(ins, Play):
                self.validate_waveform(ins.waveform)
            elif isinstance(ins, Delay):
                try:
                    validate_granularity(
                        ins.duration_samples, self.granularity, "delay duration"
                    )
                except Exception as exc:
                    raise ConstraintError(str(exc)) from None
            elif isinstance(ins, (SetFrequency, FrameChange)):
                self.validate_frequency(ins.frequency)
            elif isinstance(ins, Capture):
                if ins.memory_slot >= self.num_memory_slots:
                    raise ConstraintError(
                        f"memory slot {ins.memory_slot} out of range "
                        f"(device has {self.num_memory_slots})"
                    )
                if ins.memory_slot in used_slots:
                    raise ConstraintError(
                        f"memory slot {ins.memory_slot} captured twice"
                    )
                used_slots.add(ins.memory_slot)
