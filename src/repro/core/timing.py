"""Timing and granularity arithmetic.

Control hardware accepts pulse start times and durations only on a
fixed grid: an integer multiple of the device *granularity* (in
samples). QDMI exposes the granularity and sample period ``dt`` as
device properties (paper §5.3, Fig. 2 "timing/granularity and
constraints"); the compiler's legalization pass uses these helpers to
snap schedules onto the grid.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError


def _check_granularity(granularity: int) -> None:
    if not isinstance(granularity, int) or granularity <= 0:
        raise ValidationError(
            f"granularity must be a positive int, got {granularity!r}"
        )


def align_up(value: int, granularity: int) -> int:
    """Smallest multiple of *granularity* that is >= *value*."""
    _check_granularity(granularity)
    if value < 0:
        raise ValidationError(f"cannot align negative value {value}")
    return ((value + granularity - 1) // granularity) * granularity


def align_down(value: int, granularity: int) -> int:
    """Largest multiple of *granularity* that is <= *value*."""
    _check_granularity(granularity)
    if value < 0:
        raise ValidationError(f"cannot align negative value {value}")
    return (value // granularity) * granularity


def validate_granularity(value: int, granularity: int, what: str = "value") -> None:
    """Raise :class:`ValidationError` unless *value* sits on the grid."""
    _check_granularity(granularity)
    if value % granularity != 0:
        raise ValidationError(
            f"{what} {value} is not a multiple of granularity {granularity}"
        )


def seconds_to_samples(seconds: float, dt: float, *, round_up: bool = True) -> int:
    """Convert physical seconds to an integer number of samples.

    Rounds up by default so requested durations are never shortened.
    """
    if dt <= 0 or not math.isfinite(dt):
        raise ValidationError(f"dt must be positive and finite, got {dt!r}")
    if seconds < 0 or not math.isfinite(seconds):
        raise ValidationError(f"seconds must be >= 0 and finite, got {seconds!r}")
    exact = seconds / dt
    return int(math.ceil(exact - 1e-12)) if round_up else int(math.floor(exact + 1e-12))


def samples_to_seconds(samples: int, dt: float) -> float:
    """Convert a sample count to physical seconds."""
    if dt <= 0 or not math.isfinite(dt):
        raise ValidationError(f"dt must be positive and finite, got {dt!r}")
    if samples < 0:
        raise ValidationError(f"samples must be >= 0, got {samples!r}")
    return samples * dt
