"""Frames: stateful timing + carrier abstractions (paper §4).

A frame combines a reference clock, a carrier frequency and a phase. It
"tracks the elapsed time and provides the timing, frequency, and phase
context for playing waveforms, enabling precise carrier modulation and
virtual phase rotations".

Two objects model this split between *declaration* and *execution*:

* :class:`Frame` — the immutable declaration (name + initial carrier
  frequency/phase). This is what programs, IR modules and QDMI queries
  reference.
* :class:`FrameState` — the mutable runtime state (current frequency,
  accumulated phase, elapsed samples) used by interpreters/simulators
  while executing a schedule.

A :class:`MixedFrame` pairs a frame with the port it is played on,
mirroring the ``!pulse.mixed_frame`` type of the MLIR pulse dialect in
the paper's Listing 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.port import Port
from repro.errors import ValidationError

_TWO_PI = 2.0 * math.pi


def _wrap_phase(phase: float) -> float:
    """Wrap a phase into ``[-pi, pi)`` so accumulated virtual rotations
    stay numerically well-conditioned over long schedules."""
    return (phase + math.pi) % _TWO_PI - math.pi


@dataclass(frozen=True, order=True)
class Frame:
    """An immutable frame declaration.

    Parameters
    ----------
    name:
        Unique frame identifier, e.g. ``"q0-drive-frame"``.
    frequency:
        Initial carrier frequency in Hz. Must be finite and
        non-negative (the rotating-frame frequency of the carrier).
    phase:
        Initial phase in radians.
    """

    name: str
    frequency: float = 0.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("frame name must be a non-empty string")
        if not math.isfinite(self.frequency) or self.frequency < 0.0:
            raise ValidationError(
                f"frame frequency must be finite and >= 0, got {self.frequency!r}"
            )
        if not math.isfinite(self.phase):
            raise ValidationError(f"frame phase must be finite, got {self.phase!r}")

    def initial_state(self) -> "FrameState":
        """Create the runtime state this declaration starts from."""
        return FrameState(frequency=self.frequency, phase=self.phase)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True, order=True)
class MixedFrame:
    """A (port, frame) pair: a frame as played on a specific channel.

    This mirrors the paper's description of the MLIR pulse dialect where
    ``play`` operates on *mixed frames* — "structures mixing port
    channel and frame state".
    """

    port: Port
    frame: Frame

    @property
    def name(self) -> str:
        """Canonical name, used by the IR printers."""
        return f"{self.frame.name}@{self.port.name}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass
class FrameState:
    """Mutable runtime state of a frame during schedule execution.

    Tracks the current carrier frequency (Hz), the accumulated phase
    (radians, wrapped), and the elapsed time in samples. The *phase at
    time t* combines the static accumulated phase with the carrier
    advance ``2*pi*f*t`` — virtual Z rotations are therefore free, as on
    real control electronics.
    """

    frequency: float = 0.0
    phase: float = 0.0
    elapsed_samples: int = 0
    #: Phase accumulated by carrier evolution at past frequency values;
    #: updated whenever the frequency changes so phase stays continuous.
    _carrier_phase: float = field(default=0.0, repr=False)

    def advance(self, samples: int, dt: float) -> None:
        """Advance the frame clock by *samples* steps of size *dt* s."""
        if samples < 0:
            raise ValidationError(f"cannot advance frame by {samples} samples")
        self.elapsed_samples += samples
        self._carrier_phase = _wrap_phase(
            self._carrier_phase + _TWO_PI * self.frequency * samples * dt
        )

    def set_frequency(self, frequency: float) -> None:
        """Set the carrier frequency, preserving phase continuity."""
        if not math.isfinite(frequency) or frequency < 0.0:
            raise ValidationError(f"invalid frame frequency {frequency!r}")
        self.frequency = frequency

    def shift_frequency(self, delta: float) -> None:
        """Shift the carrier frequency by *delta* Hz."""
        self.set_frequency(self.frequency + delta)

    def set_phase(self, phase: float) -> None:
        """Set the static phase offset (virtual Z) in radians."""
        if not math.isfinite(phase):
            raise ValidationError(f"invalid frame phase {phase!r}")
        self.phase = _wrap_phase(phase)

    def shift_phase(self, delta: float) -> None:
        """Shift the static phase offset by *delta* radians."""
        if not math.isfinite(delta):
            raise ValidationError(f"invalid frame phase shift {delta!r}")
        self.phase = _wrap_phase(self.phase + delta)

    def phase_at(self, sample: int, dt: float) -> float:
        """Total carrier phase at absolute time ``sample * dt``.

        Combines the static (virtual) phase, the phase accumulated at
        previous frequencies, and the advance at the current frequency
        since the last clock update.
        """
        pending = sample - self.elapsed_samples
        return _wrap_phase(
            self.phase
            + self._carrier_phase
            + _TWO_PI * self.frequency * pending * dt
        )

    def copy(self) -> "FrameState":
        """Return an independent copy of this state."""
        out = FrameState(
            frequency=self.frequency,
            phase=self.phase,
            elapsed_samples=self.elapsed_samples,
        )
        out._carrier_phase = self._carrier_phase
        return out
