"""Bitstring-distribution statistics shared by every result type.

Every layer of the stack hands measurement outcomes back as a mapping
of bitstrings to probabilities (simulator ``ExecutionResult``, client
``ClientResult``, QPI ``QuantumResult``, mitigation
``MitigatedResult``). The observable arithmetic on those mappings
lives here so slot validation is enforced once, at every boundary.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ValidationError


def distribution_expectation_z(
    probabilities: Mapping[str, float],
    slot: int,
    *,
    n_slots: int | None = None,
    empty_message: str | None = None,
) -> float:
    """``<Z>`` of the bit at *slot* of a bitstring distribution.

    Validates *slot* against the bitstring width (or *n_slots* when
    the caller knows the measured layout) and rejects an empty
    distribution instead of silently returning 0.0.
    """
    if not probabilities:
        raise ValidationError(
            empty_message
            or "expectation_z is undefined: the result holds an "
            "empty distribution (no measurements captured)"
        )
    if n_slots is None:
        n_slots = len(next(iter(probabilities)))
    if not 0 <= slot < n_slots:
        raise ValidationError(
            f"slot {slot} out of range: result has {n_slots} measured slot(s)"
        )
    total = 0.0
    for key, p in probabilities.items():
        total += p * (1.0 if key[slot] == "0" else -1.0)
    return total
