"""Bitstring-distribution statistics shared by every result type.

Every layer of the stack hands measurement outcomes back as a mapping
of bitstrings to probabilities (simulator ``ExecutionResult``, client
``ClientResult``, QPI ``QuantumResult``, mitigation
``MitigatedResult``). The observable arithmetic on those mappings
lives here so slot validation is enforced once, at every boundary.
The general diagonal-observable engine built on these kernels is
:class:`repro.primitives.Observable`; the result types' historical
``expectation_z`` accessors are deprecation shims over it.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ValidationError


def distribution_width(
    probabilities: Mapping[str, float],
    *,
    n_slots: int | None = None,
    empty_message: str | None = None,
) -> int:
    """Validated bitstring width of a non-empty outcome distribution.

    Rejects an empty mapping and — unlike reading ``len(first_key)``
    and hoping — rejects mixed-width keys, which would otherwise make
    per-slot arithmetic read garbage positions (or crash with a bare
    ``IndexError`` deep in a loop). When the caller knows the measured
    layout, *n_slots* is enforced against every key.
    """
    if not probabilities:
        raise ValidationError(
            empty_message
            or "expectation is undefined: the result holds an "
            "empty distribution (no measurements captured)"
        )
    width = n_slots
    for key in probabilities:
        if width is None:
            width = len(key)
        elif len(key) != width:
            raise ValidationError(
                f"inconsistent bitstring widths in distribution: "
                f"key {key!r} has {len(key)} slot(s), expected {width}"
            )
    assert width is not None
    return width


def distribution_expectation_z(
    probabilities: Mapping[str, float],
    slot: int,
    *,
    n_slots: int | None = None,
    empty_message: str | None = None,
) -> float:
    """``<Z>`` of the bit at *slot* of a bitstring distribution.

    Validates *slot* against the bitstring width (or *n_slots* when
    the caller knows the measured layout), rejects an empty
    distribution instead of silently returning 0.0, and rejects
    mixed-width keys instead of letting ``key[slot]`` read a garbage
    position or raise a bare ``IndexError``.
    """
    width = distribution_width(
        probabilities, n_slots=n_slots, empty_message=empty_message
    )
    if not 0 <= slot < width:
        raise ValidationError(
            f"slot {slot} out of range: result has {width} measured slot(s)"
        )
    total = 0.0
    for key, p in probabilities.items():
        total += p * (1.0 if key[slot] == "0" else -1.0)
    return total
