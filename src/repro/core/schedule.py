"""Pulse schedules: time-ordered containers of pulse instructions.

A :class:`PulseSchedule` is the common currency of the stack — the QPI
builder produces one, gate->pulse lowering produces one, the QIR linker
reconstructs one, devices execute one. Semantics:

* Time is measured in integer samples from schedule start.
* Each port is a serial resource: two timed instructions on the same
  port may not overlap.
* :meth:`append` schedules as-soon-as-possible *per port* (the ASAP
  policy used by the paper's Listing 1 builder API); :meth:`insert`
  places an instruction at an explicit time for compiler passes that
  re-schedule.
* Barriers synchronize the listed ports.

Schedules can be canonicalized and fingerprinted, which is how the
Listing 1 = Listing 2 = Listing 3 equivalence experiment (E1 in
DESIGN.md) asserts that three different front-end representations
denote the same physical program.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.core.frame import Frame
from repro.core.instructions import (
    Barrier,
    Capture,
    Delay,
    FrameChange,
    Instruction,
    Play,
    SetFrequency,
    SetPhase,
    ShiftFrequency,
    ShiftPhase,
)
from repro.core.port import Port
from repro.errors import ScheduleError


@dataclass(frozen=True, order=True)
class ScheduledInstruction:
    """An instruction placed at an absolute start time (samples)."""

    t0: int
    seq: int  # insertion order; breaks ties deterministically
    instruction: Instruction = None  # type: ignore[assignment]

    @property
    def t1(self) -> int:
        """End time (samples)."""
        return self.t0 + self.instruction.duration


class PulseSchedule:
    """A mutable, per-port-serialized sequence of pulse instructions."""

    def __init__(self, name: str = "schedule") -> None:
        self.name = name
        self._items: list[ScheduledInstruction] = []
        self._port_free: dict[Port, int] = {}
        self._seq = 0

    # ---- construction -------------------------------------------------------

    def append(self, instruction: Instruction) -> ScheduledInstruction:
        """Schedule *instruction* as soon as every port it touches is free.

        Virtual instructions (frame changes) are placed at the port's
        current free time and do not advance it. Barriers advance all
        listed ports to their common maximum.
        """
        ports = instruction.ports
        if not ports:
            raise ScheduleError(f"instruction {instruction!r} touches no ports")
        t0 = max(self._port_free.get(p, 0) for p in ports)
        return self._place(t0, instruction)

    def insert(self, t0: int, instruction: Instruction) -> ScheduledInstruction:
        """Place *instruction* at absolute time *t0* (samples).

        Overlap with an already-scheduled timed instruction on the same
        port is rejected; virtual instructions may share a time point.
        """
        if t0 < 0:
            raise ScheduleError(f"start time must be >= 0, got {t0}")
        if instruction.duration > 0:
            t1 = t0 + instruction.duration
            for item in self._items:
                if item.instruction.duration == 0:
                    continue
                if not set(item.instruction.ports) & set(instruction.ports):
                    continue
                if t0 < item.t1 and item.t0 < t1:
                    raise ScheduleError(
                        f"instruction at [{t0}, {t1}) overlaps existing "
                        f"[{item.t0}, {item.t1}) on a shared port"
                    )
        return self._place(t0, instruction)

    def _place(self, t0: int, instruction: Instruction) -> ScheduledInstruction:
        item = ScheduledInstruction(t0, self._seq, instruction)
        self._seq += 1
        self._items.append(item)
        end = t0 + instruction.duration
        for p in instruction.ports:
            self._port_free[p] = max(self._port_free.get(p, 0), end)
        return item

    def barrier(self, *ports: Port) -> ScheduledInstruction:
        """Append a barrier over *ports* (all known ports if empty)."""
        targets = tuple(ports) if ports else tuple(sorted(self._port_free))
        if not targets:
            raise ScheduleError("barrier on an empty schedule with no ports given")
        return self.append(Barrier(targets))

    # ---- composition --------------------------------------------------------

    def shifted(self, delta: int) -> "PulseSchedule":
        """A copy with every start time shifted by *delta* >= 0 samples."""
        if delta < 0:
            raise ScheduleError(f"shift must be >= 0, got {delta}")
        out = PulseSchedule(self.name)
        for item in self._items:
            out._place(item.t0 + delta, item.instruction)
        return out

    def then(self, other: "PulseSchedule") -> "PulseSchedule":
        """Sequential composition: *other* starts after this ends."""
        out = self.copy()
        offset = self.duration
        for item in other.ordered():
            out._place(item.t0 + offset, item.instruction)
        return out

    def union(self, other: "PulseSchedule") -> "PulseSchedule":
        """Parallel composition: overlay *other* at time 0.

        Raises :class:`ScheduleError` on port conflicts.
        """
        out = self.copy()
        for item in other.ordered():
            out.insert(item.t0, item.instruction)
        return out

    def copy(self) -> "PulseSchedule":
        """Deep-enough copy (instructions are immutable and shared)."""
        out = PulseSchedule(self.name)
        for item in self._items:
            out._place(item.t0, item.instruction)
        return out

    def clone_with_items(
        self, items: "list[ScheduledInstruction]"
    ) -> "PulseSchedule":
        """A structural copy carrying *items* in place of this
        schedule's own, preserving placement bookkeeping.

        The item list must be position-compatible (same ports, same
        times) — e.g. this schedule's items with some instructions
        swapped via :func:`dataclasses.replace`.  Used by the execution
        API's parameter-binding templates; kept next to the class so a
        new instance attribute cannot be silently missed by an external
        field-by-field copy.
        """
        out = PulseSchedule.__new__(PulseSchedule)
        out.name = self.name
        out._items = list(items)
        out._port_free = dict(self._port_free)
        out._seq = self._seq
        return out

    # ---- inspection ----------------------------------------------------------

    def ordered(self) -> list[ScheduledInstruction]:
        """Instructions sorted by (start time, insertion order)."""
        return sorted(self._items, key=lambda it: (it.t0, it.seq))

    def __iter__(self) -> Iterator[ScheduledInstruction]:
        return iter(self.ordered())

    def __len__(self) -> int:
        return len(self._items)

    @property
    def duration(self) -> int:
        """Total schedule length in samples."""
        return max((it.t1 for it in self._items), default=0)

    def ports(self) -> list[Port]:
        """Every port referenced, sorted by name."""
        seen: set[Port] = set()
        for item in self._items:
            seen.update(item.instruction.ports)
        return sorted(seen, key=lambda p: p.name)

    def frames(self) -> list[Frame]:
        """Every frame referenced, sorted by name."""
        seen: set[Frame] = set()
        for item in self._items:
            frame = getattr(item.instruction, "frame", None)
            if frame is not None:
                seen.add(frame)
        return sorted(seen, key=lambda f: f.name)

    def port_occupancy(self, port: Port) -> int:
        """Total busy samples on *port* (sum of timed durations)."""
        return sum(
            it.instruction.duration
            for it in self._items
            if port in it.instruction.ports
        )

    def instructions_of(self, kind: type) -> list[ScheduledInstruction]:
        """All scheduled instructions of the given class."""
        return [it for it in self.ordered() if isinstance(it.instruction, kind)]

    def filter(
        self, predicate: Callable[[ScheduledInstruction], bool]
    ) -> "PulseSchedule":
        """New schedule keeping only items where *predicate* holds,
        preserving absolute times."""
        out = PulseSchedule(self.name)
        for item in self.ordered():
            if predicate(item):
                out._place(item.t0, item.instruction)
        return out

    # ---- canonicalization / equality ------------------------------------------

    def _instruction_key(self, ins: Instruction) -> tuple:
        """A stable, hashable description of one instruction."""
        if isinstance(ins, Play):
            return ("play", ins.port.name, ins.frame.name, ins.waveform.fingerprint())
        if isinstance(ins, Delay):
            return ("delay", ins.port.name, ins.duration_samples)
        if isinstance(ins, Barrier):
            return ("barrier",) + tuple(sorted(p.name for p in ins.barrier_ports))
        if isinstance(ins, Capture):
            return (
                "capture",
                ins.port.name,
                ins.frame.name,
                ins.memory_slot,
                ins.duration_samples,
            )
        if isinstance(ins, FrameChange):
            return (
                "frame_change",
                ins.port.name,
                ins.frame.name,
                round(ins.frequency, 9),
                round(ins.phase, 12),
            )
        if isinstance(ins, SetFrequency):
            return (
                "set_frequency",
                ins.port.name,
                ins.frame.name,
                round(ins.frequency, 9),
            )
        if isinstance(ins, ShiftFrequency):
            return (
                "shift_frequency",
                ins.port.name,
                ins.frame.name,
                round(ins.delta, 9),
            )
        if isinstance(ins, SetPhase):
            return ("set_phase", ins.port.name, ins.frame.name, round(ins.phase, 12))
        if isinstance(ins, ShiftPhase):
            return ("shift_phase", ins.port.name, ins.frame.name, round(ins.delta, 12))
        raise ScheduleError(f"cannot canonicalize instruction {ins!r}")

    def canonical_events(self) -> list[tuple[int, tuple]]:
        """The schedule as sorted ``(t0, instruction-key)`` events.

        Barriers are synchronization directives and delays are pure
        timing padding; once every event carries its absolute start
        time, neither adds information, so both are dropped from the
        canonical form. Two schedules with different barrier/delay
        structure but identical physical events at identical times are
        the same program.
        """
        events = [
            (it.t0, self._instruction_key(it.instruction))
            for it in self.ordered()
            if not isinstance(it.instruction, (Barrier, Delay))
        ]
        events.sort()
        return events

    def fingerprint(self) -> str:
        """Content hash of the canonical event list."""
        h = hashlib.sha256()
        for t0, key in self.canonical_events():
            h.update(repr((t0, key)).encode())
        return h.hexdigest()[:16]

    def equivalent_to(self, other: "PulseSchedule") -> bool:
        """True when both schedules denote the same physical program."""
        return self.canonical_events() == other.canonical_events()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PulseSchedule({self.name!r}, n={len(self._items)}, "
            f"duration={self.duration}, ports={len(self.ports())})"
        )


def merge_schedules(
    schedules: Iterable[PulseSchedule], name: str = "merged"
) -> PulseSchedule:
    """Overlay multiple schedules at time zero (parallel composition)."""
    out = PulseSchedule(name)
    for sched in schedules:
        out = out.union(sched)
    out.name = name
    return out
