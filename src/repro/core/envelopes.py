"""Parametric waveform envelope library.

The paper (§4) allows waveform amplitudes to "be provided either
explicitly or by parametrized functions which, when assigned with
specific parameter values, evaluate to a concrete array of samples".
This module is that function library: a registry of named, vectorized
envelope generators. Devices advertise which envelope names they
support natively (via :class:`~repro.core.constraints.PulseConstraints`)
so that the compiler can keep pulses parametric when the hardware
understands them and only fall back to explicit sampling otherwise.

All generators are vectorized over the sample index (no per-sample
Python loops — see the HPC guide notes in DESIGN.md) and return complex
``float64`` arrays of length *duration* samples.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Mapping

import numpy as np

from repro.errors import ValidationError

#: Signature of an envelope generator: (duration_samples, params) -> samples.
EnvelopeFn = Callable[[int, Mapping[str, float]], np.ndarray]


def _time_axis(duration: int) -> np.ndarray:
    """Sample midpoints ``0.5, 1.5, ...`` — midpoint sampling keeps
    short pulses symmetric and avoids a zero first sample."""
    return np.arange(duration, dtype=np.float64) + 0.5


def _require(params: Mapping[str, float], *names: str) -> list[float]:
    missing = [n for n in names if n not in params]
    if missing:
        raise ValidationError(f"envelope missing parameters: {missing}")
    return [float(params[n]) for n in names]


def _check_duration(duration: int) -> None:
    if not isinstance(duration, (int, np.integer)) or duration <= 0:
        raise ValidationError(
            f"envelope duration must be a positive int, got {duration!r}"
        )


def constant(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """Flat envelope: ``amp`` everywhere."""
    _check_duration(duration)
    (amp,) = _require(params, "amp")
    return np.full(duration, amp, dtype=np.complex128)


def square(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """Alias of :func:`constant`; kept for vendor-vocabulary parity."""
    return constant(duration, params)


def gaussian(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """Gaussian envelope ``amp * exp(-(t - mu)^2 / (2 sigma^2))``,
    centered in the window, baseline-subtracted so it starts/ends at 0."""
    _check_duration(duration)
    amp, sigma = _require(params, "amp", "sigma")
    if sigma <= 0:
        raise ValidationError(f"gaussian sigma must be > 0, got {sigma}")
    t = _time_axis(duration)
    mu = duration / 2.0
    body = np.exp(-0.5 * ((t - mu) / sigma) ** 2)
    # Subtract the edge value and renormalize so the peak stays `amp`
    # and the tails hit exactly zero (standard "lifted gaussian").
    edge = math.exp(-0.5 * (mu / sigma) ** 2)
    body = (body - edge) / (1.0 - edge)
    return (amp * body).astype(np.complex128)


def drag(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """DRAG pulse: gaussian with a scaled derivative on the quadrature,
    ``G(t) + 1j * beta * dG/dt``, suppressing leakage to the |2> level."""
    _check_duration(duration)
    amp, sigma, beta = _require(params, "amp", "sigma", "beta")
    if sigma <= 0:
        raise ValidationError(f"drag sigma must be > 0, got {sigma}")
    t = _time_axis(duration)
    mu = duration / 2.0
    gauss = np.exp(-0.5 * ((t - mu) / sigma) ** 2)
    edge = math.exp(-0.5 * (mu / sigma) ** 2)
    lifted = (gauss - edge) / (1.0 - edge)
    dgauss = -(t - mu) / (sigma**2) * gauss / (1.0 - edge)
    return (amp * (lifted + 1j * beta * dgauss)).astype(np.complex128)


def gaussian_square(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """Flat-top pulse with gaussian rising/falling edges.

    Parameters: ``amp``, ``sigma``, ``width`` (flat-top length in
    samples). The ramps occupy ``(duration - width) / 2`` samples each.
    """
    _check_duration(duration)
    amp, sigma, width = _require(params, "amp", "sigma", "width")
    if sigma <= 0:
        raise ValidationError(f"gaussian_square sigma must be > 0, got {sigma}")
    if not 0 <= width <= duration:
        raise ValidationError(
            f"gaussian_square width must be in [0, duration], got {width}"
        )
    t = _time_axis(duration)
    ramp = (duration - width) / 2.0
    rise_mu = ramp
    fall_mu = duration - ramp
    env = np.ones(duration, dtype=np.float64)
    rising = t < rise_mu
    falling = t > fall_mu
    env[rising] = np.exp(-0.5 * ((t[rising] - rise_mu) / sigma) ** 2)
    env[falling] = np.exp(-0.5 * ((t[falling] - fall_mu) / sigma) ** 2)
    return (amp * env).astype(np.complex128)


def cosine(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """Raised-cosine (Hann) envelope: smooth, zero at both ends."""
    _check_duration(duration)
    (amp,) = _require(params, "amp")
    t = _time_axis(duration)
    return (amp * 0.5 * (1.0 - np.cos(2.0 * math.pi * t / duration))).astype(
        np.complex128
    )


def sine(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """Half-period sine envelope: zero at both ends, peak in the middle."""
    _check_duration(duration)
    (amp,) = _require(params, "amp")
    t = _time_axis(duration)
    return (amp * np.sin(math.pi * t / duration)).astype(np.complex128)


def sech(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """Hyperbolic-secant envelope (adiabatic-passage workhorse)."""
    _check_duration(duration)
    amp, sigma = _require(params, "amp", "sigma")
    if sigma <= 0:
        raise ValidationError(f"sech sigma must be > 0, got {sigma}")
    t = _time_axis(duration)
    mu = duration / 2.0
    return (amp / np.cosh((t - mu) / sigma)).astype(np.complex128)


def triangle(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """Symmetric triangular ramp up/down."""
    _check_duration(duration)
    (amp,) = _require(params, "amp")
    t = _time_axis(duration)
    mu = duration / 2.0
    return (amp * (1.0 - np.abs(t - mu) / mu)).astype(np.complex128)


def blackman(duration: int, params: Mapping[str, float]) -> np.ndarray:
    """Blackman window envelope: very low spectral leakage."""
    _check_duration(duration)
    (amp,) = _require(params, "amp")
    t = _time_axis(duration)
    x = 2.0 * math.pi * t / duration
    env = 0.42 - 0.5 * np.cos(x) + 0.08 * np.cos(2.0 * x)
    return (amp * env).astype(np.complex128)


class EnvelopeRegistry:
    """Mutable mapping of envelope name -> generator function.

    A registry instance (rather than a bare module dict) lets devices
    and tests build restricted vocabularies; the module-level
    :data:`DEFAULT_REGISTRY` holds the standard library above.
    """

    def __init__(self, initial: Mapping[str, EnvelopeFn] | None = None) -> None:
        self._fns: Dict[str, EnvelopeFn] = dict(initial or {})

    def register(self, name: str, fn: EnvelopeFn, *, overwrite: bool = False) -> None:
        """Register *fn* under *name*; refuses silent redefinition."""
        if not name or not name.isidentifier():
            raise ValidationError(f"invalid envelope name {name!r}")
        if name in self._fns and not overwrite:
            raise ValidationError(f"envelope {name!r} already registered")
        self._fns[name] = fn

    def evaluate(
        self, name: str, duration: int, params: Mapping[str, float]
    ) -> np.ndarray:
        """Evaluate envelope *name* to concrete complex samples."""
        try:
            fn = self._fns[name]
        except KeyError:
            raise ValidationError(
                f"unknown envelope {name!r}; available: {sorted(self._fns)}"
            ) from None
        out = fn(duration, params)
        if out.shape != (duration,):
            raise ValidationError(
                f"envelope {name!r} returned shape {out.shape}, expected ({duration},)"
            )
        return out

    def names(self) -> Iterable[str]:
        """Registered envelope names, sorted."""
        return sorted(self._fns)

    def __contains__(self, name: str) -> bool:
        return name in self._fns

    def copy(self) -> "EnvelopeRegistry":
        """Independent copy (used by devices restricting the vocabulary)."""
        return EnvelopeRegistry(self._fns)


#: The standard envelope vocabulary shared by the whole stack.
DEFAULT_REGISTRY = EnvelopeRegistry(
    {
        "constant": constant,
        "square": square,
        "gaussian": gaussian,
        "drag": drag,
        "gaussian_square": gaussian_square,
        "cosine": cosine,
        "sine": sine,
        "sech": sech,
        "triangle": triangle,
        "blackman": blackman,
    }
)


def register_envelope(name: str, fn: EnvelopeFn, *, overwrite: bool = False) -> None:
    """Register an envelope in the default registry."""
    DEFAULT_REGISTRY.register(name, fn, overwrite=overwrite)


def evaluate_envelope(
    name: str, duration: int, params: Mapping[str, float]
) -> np.ndarray:
    """Evaluate an envelope from the default registry."""
    return DEFAULT_REGISTRY.evaluate(name, duration, params)


def available_envelopes() -> list[str]:
    """Names available in the default registry."""
    return list(DEFAULT_REGISTRY.names())
