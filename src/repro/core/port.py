"""Ports: software handles for hardware I/O channels (paper §4).

A port "exposes vendor-defined actuation knobs for targeting
user-accessible hardware components, such as drive or acquisition
channels, while abstracting away device-specific complexity". Ports are
*identity* objects: two ports are the same channel iff their names are
equal. They are deliberately cheap, hashable and immutable so that they
can be used as dictionary keys throughout the scheduler, simulator and
compiler without copying.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ValidationError


class PortKind(enum.Enum):
    """The physical role of a port, across all three platforms.

    Superconducting devices use DRIVE/COUPLER/FLUX/READOUT/ACQUIRE,
    trapped-ion devices use RF (global and individual addressing beams)
    plus ACQUIRE (photon counting), and neutral-atom devices use LASER
    (Rydberg/trap beams) plus ACQUIRE (fluorescence imaging). The kind
    is advisory metadata used by constraint queries and lowering; the
    scheduling semantics are identical for every kind.
    """

    DRIVE = "drive"
    COUPLER = "coupler"
    FLUX = "flux"
    READOUT = "readout"
    ACQUIRE = "acquire"
    RF = "rf"
    LASER = "laser"
    TRAP = "trap"


class PortDirection(enum.Enum):
    """Signal direction relative to the quantum device."""

    INPUT = "input"  # control signals flowing into the device
    OUTPUT = "output"  # measurement signals flowing out


#: Port kinds that carry signals out of the device.
_OUTPUT_KINDS = frozenset({PortKind.ACQUIRE})


@dataclass(frozen=True, order=True)
class Port:
    """A hardware input/output channel.

    Parameters
    ----------
    name:
        Globally unique channel identifier, e.g. ``"q0-drive-port"``.
        Uniqueness is the device's responsibility; equality and hashing
        use the full dataclass tuple so distinct devices may reuse names
        without aliasing as long as kinds/targets also match.
    kind:
        The :class:`PortKind` describing the channel's physical role.
    targets:
        Site (qubit) indices the channel acts on. Drive/readout ports
        target one site; coupler ports target two.
    direction:
        Input (actuation) or output (acquisition). Derived from *kind*
        when omitted.
    """

    name: str
    kind: PortKind = PortKind.DRIVE
    targets: tuple[int, ...] = field(default=())
    direction: PortDirection = field(default=PortDirection.INPUT)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("port name must be a non-empty string")
        if not isinstance(self.kind, PortKind):
            raise ValidationError(f"port kind must be a PortKind, got {self.kind!r}")
        if any((not isinstance(t, int)) or t < 0 for t in self.targets):
            raise ValidationError(
                f"port targets must be non-negative ints, got {self.targets!r}"
            )
        expected = (
            PortDirection.OUTPUT if self.kind in _OUTPUT_KINDS else PortDirection.INPUT
        )
        if self.direction is not expected:
            # Allow explicit override only when it matches the kind;
            # silently fixing it would hide configuration bugs.
            raise ValidationError(
                f"port {self.name!r} of kind {self.kind.value} must have "
                f"direction {expected.value}, got {self.direction.value}"
            )

    @classmethod
    def drive(cls, site: int, name: str | None = None) -> "Port":
        """Convenience constructor for a single-qubit drive channel."""
        return cls(name or f"q{site}-drive-port", PortKind.DRIVE, (site,))

    @classmethod
    def coupler(cls, site_a: int, site_b: int, name: str | None = None) -> "Port":
        """Convenience constructor for a two-qubit coupler channel."""
        lo, hi = sorted((site_a, site_b))
        return cls(name or f"q{lo}q{hi}-coupler-port", PortKind.COUPLER, (lo, hi))

    @classmethod
    def readout(cls, site: int, name: str | None = None) -> "Port":
        """Convenience constructor for a readout stimulus channel."""
        return cls(name or f"q{site}-readout-port", PortKind.READOUT, (site,))

    @classmethod
    def acquire(cls, site: int, name: str | None = None) -> "Port":
        """Convenience constructor for an acquisition channel."""
        return cls(
            name or f"q{site}-acquire-port",
            PortKind.ACQUIRE,
            (site,),
            PortDirection.OUTPUT,
        )

    @property
    def is_output(self) -> bool:
        """Whether this port carries signals out of the device."""
        return self.direction is PortDirection.OUTPUT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
