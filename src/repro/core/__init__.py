"""Core pulse abstractions (paper §4).

The paper reduces pulse-level programming to exactly three abstractions:

* :class:`Port` — a software representation of a hardware input/output
  channel used to manipulate or read out qubits.
* :class:`Frame` — a stateful timing and carrier-signal abstraction
  combining a reference clock, carrier frequency and phase.
* :class:`Waveform` — a time-ordered array of samples defining the
  amplitude envelope of a control signal, either explicit or parametric.

On top of those, this package provides :class:`PulseSchedule`, the
time-ordered container of pulse instructions that every other layer of
the stack (QPI builder, MLIR pulse dialect, QIR pulse profile, QDMI job
payloads, the simulator) produces or consumes, plus the
:class:`PulseConstraints` record used by devices to publish hardware
limits and by the compiler to legalize programs against them.
"""

from repro.core.constraints import PulseConstraints
from repro.core.envelopes import (
    EnvelopeRegistry,
    available_envelopes,
    evaluate_envelope,
    register_envelope,
)
from repro.core.frame import Frame, FrameState, MixedFrame
from repro.core.instructions import (
    Barrier,
    Capture,
    Delay,
    FrameChange,
    Instruction,
    Play,
    SetFrequency,
    SetPhase,
    ShiftFrequency,
    ShiftPhase,
)
from repro.core.port import Port, PortDirection, PortKind
from repro.core.schedule import PulseSchedule, ScheduledInstruction
from repro.core.timing import (
    align_down,
    align_up,
    samples_to_seconds,
    seconds_to_samples,
    validate_granularity,
)
from repro.core.waveform import (
    ParametricWaveform,
    SampledWaveform,
    Waveform,
    constant_waveform,
    gaussian_square_waveform,
    gaussian_waveform,
    drag_waveform,
)

__all__ = [
    "Port",
    "PortKind",
    "PortDirection",
    "Frame",
    "FrameState",
    "MixedFrame",
    "Waveform",
    "SampledWaveform",
    "ParametricWaveform",
    "gaussian_waveform",
    "drag_waveform",
    "gaussian_square_waveform",
    "constant_waveform",
    "EnvelopeRegistry",
    "register_envelope",
    "evaluate_envelope",
    "available_envelopes",
    "Instruction",
    "Play",
    "Delay",
    "Barrier",
    "Capture",
    "SetFrequency",
    "ShiftFrequency",
    "SetPhase",
    "ShiftPhase",
    "FrameChange",
    "PulseSchedule",
    "ScheduledInstruction",
    "PulseConstraints",
    "align_up",
    "align_down",
    "seconds_to_samples",
    "samples_to_seconds",
    "validate_granularity",
]
