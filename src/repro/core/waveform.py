"""Waveforms: pulse amplitude envelopes (paper §4).

A waveform is "a time-ordered array of samples, defining the amplitude
envelope of a control signal. The amplitudes can be provided either
explicitly or by parametrized functions which, when assigned with
specific parameter values, evaluate to a concrete array of samples."

Two concrete forms implement the shared :class:`Waveform` interface:

* :class:`SampledWaveform` — explicit complex samples.
* :class:`ParametricWaveform` — an envelope name + parameters,
  evaluated lazily (and cached) through an
  :class:`~repro.core.envelopes.EnvelopeRegistry`.

Durations are integer *samples*; the physical sample period ``dt`` is a
device property, so the same waveform object is portable across devices
with different sample rates — exactly the portability property the
exchange format (paper §5.4) needs.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

import numpy as np

from repro.core import envelopes as _env
from repro.errors import ValidationError


class Waveform:
    """Abstract base: anything that evaluates to complex samples.

    Subclasses must implement :meth:`samples` and :attr:`duration`.
    Equality is defined on evaluated samples via :meth:`fingerprint`,
    so a parametric pulse and its explicitly-sampled image compare equal
    — the property that makes Listing-1/2/3 equivalence checkable.
    """

    @property
    def duration(self) -> int:
        """Length in samples."""
        raise NotImplementedError

    def samples(self) -> np.ndarray:
        """Evaluate to a read-only complex128 array of length *duration*."""
        raise NotImplementedError

    # ---- derived utilities -------------------------------------------------

    def max_amplitude(self) -> float:
        """Peak |amplitude| over the waveform."""
        s = self.samples()
        return float(np.abs(s).max()) if s.size else 0.0

    def energy(self) -> float:
        """Sum of |amplitude|^2 (discrete pulse energy, in sample units)."""
        s = self.samples()
        return float(np.real(np.vdot(s, s)))

    def fingerprint(self) -> str:
        """Stable content hash of the evaluated samples.

        Used for structural equality, compile caching and exchange-
        format integrity checks. Rounds to 12 decimal digits so that
        round-trips through textual formats stay stable.
        """
        s = np.round(self.samples(), 12) + 0.0  # +0.0 normalizes -0.0
        h = hashlib.sha256()
        h.update(str(self.duration).encode())
        h.update(s.tobytes())
        return h.hexdigest()[:16]

    def scaled(self, factor: complex) -> "SampledWaveform":
        """A new waveform with every sample multiplied by *factor*."""
        return SampledWaveform(self.samples() * complex(factor))

    def reversed(self) -> "SampledWaveform":
        """Time-reversed copy."""
        return SampledWaveform(self.samples()[::-1].copy())

    def conjugated(self) -> "SampledWaveform":
        """Complex-conjugated copy (inverts the quadrature)."""
        return SampledWaveform(np.conj(self.samples()))

    def padded(self, left: int = 0, right: int = 0) -> "SampledWaveform":
        """Copy with zero samples prepended/appended."""
        if left < 0 or right < 0:
            raise ValidationError("padding must be non-negative")
        s = self.samples()
        return SampledWaveform(
            np.concatenate(
                [
                    np.zeros(left, dtype=np.complex128),
                    s,
                    np.zeros(right, dtype=np.complex128),
                ]
            )
        )

    def concatenated(self, other: "Waveform") -> "SampledWaveform":
        """This waveform followed immediately by *other*."""
        return SampledWaveform(np.concatenate([self.samples(), other.samples()]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Waveform):
            return NotImplemented
        return (
            self.duration == other.duration
            and self.fingerprint() == other.fingerprint()
        )

    def __hash__(self) -> int:
        return hash((self.duration, self.fingerprint()))


class SampledWaveform(Waveform):
    """A waveform given by explicit complex samples.

    The sample array is copied once, made read-only, and shared by all
    views — waveform objects are immutable values.
    """

    __slots__ = ("_samples",)

    def __init__(self, samples: "np.ndarray | list[complex]") -> None:
        arr = np.ascontiguousarray(samples, dtype=np.complex128)
        if arr.ndim != 1:
            raise ValidationError(
                f"waveform samples must be 1-D, got shape {arr.shape}"
            )
        if arr.size == 0:
            raise ValidationError("waveform must contain at least one sample")
        if not np.all(np.isfinite(arr.view(np.float64))):
            raise ValidationError("waveform samples must be finite")
        arr = arr.copy()
        arr.setflags(write=False)
        self._samples = arr

    @property
    def duration(self) -> int:
        return int(self._samples.size)

    def samples(self) -> np.ndarray:
        return self._samples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SampledWaveform(duration={self.duration}, "
            f"peak={self.max_amplitude():.4g})"
        )


class ParametricWaveform(Waveform):
    """A waveform described by an envelope name + parameters.

    Evaluation happens through an :class:`EnvelopeRegistry` (the default
    one unless a restricted registry is supplied) and is cached — the
    first call to :meth:`samples` pays the vector evaluation, subsequent
    calls are free. The symbolic (name, params) description is retained
    so IR printers and the exchange format can keep pulses parametric.
    """

    __slots__ = ("_name", "_duration", "_params", "_registry", "_cache")

    def __init__(
        self,
        name: str,
        duration: int,
        params: Mapping[str, float],
        registry: "_env.EnvelopeRegistry | None" = None,
    ) -> None:
        if not isinstance(duration, (int, np.integer)) or duration <= 0:
            raise ValidationError(
                f"waveform duration must be a positive int, got {duration!r}"
            )
        self._registry = registry if registry is not None else _env.DEFAULT_REGISTRY
        if name not in self._registry:
            raise ValidationError(
                f"unknown envelope {name!r}; available: {list(self._registry.names())}"
            )
        self._name = name
        self._duration = int(duration)
        self._params = {k: float(v) for k, v in sorted(params.items())}
        self._cache: np.ndarray | None = None
        # Validate eagerly: a parametric waveform that cannot evaluate is
        # a programming error we want at construction, not at submit time.
        self.samples()

    @property
    def envelope(self) -> str:
        """Envelope name in the registry."""
        return self._name

    @property
    def parameters(self) -> dict[str, float]:
        """Copy of the envelope parameters."""
        return dict(self._params)

    @property
    def duration(self) -> int:
        return self._duration

    def samples(self) -> np.ndarray:
        if self._cache is None:
            arr = self._registry.evaluate(self._name, self._duration, self._params)
            arr = np.ascontiguousarray(arr, dtype=np.complex128)
            if not np.all(np.isfinite(arr.view(np.float64))):
                raise ValidationError(
                    f"envelope {self._name!r} produced non-finite samples"
                )
            arr.setflags(write=False)
            self._cache = arr
        return self._cache

    def with_parameters(self, **updates: float) -> "ParametricWaveform":
        """New waveform with some parameters replaced (used heavily by
        calibration loops that sweep one knob)."""
        params = dict(self._params)
        params.update({k: float(v) for k, v in updates.items()})
        return ParametricWaveform(self._name, self._duration, params, self._registry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ps = ", ".join(f"{k}={v:g}" for k, v in self._params.items())
        return f"ParametricWaveform({self._name!r}, duration={self._duration}, {ps})"


# ---- convenience constructors ----------------------------------------------


def constant_waveform(duration: int, amp: complex) -> ParametricWaveform:
    """Flat pulse of the given amplitude (real amplitude only; use
    ``.scaled`` for complex rotation)."""
    return ParametricWaveform("constant", duration, {"amp": float(np.real(amp))})


def gaussian_waveform(duration: int, amp: float, sigma: float) -> ParametricWaveform:
    """Lifted-gaussian pulse."""
    return ParametricWaveform("gaussian", duration, {"amp": amp, "sigma": sigma})


def drag_waveform(
    duration: int, amp: float, sigma: float, beta: float
) -> ParametricWaveform:
    """DRAG pulse (gaussian + derivative quadrature)."""
    return ParametricWaveform(
        "drag", duration, {"amp": amp, "sigma": sigma, "beta": beta}
    )


def gaussian_square_waveform(
    duration: int, amp: float, sigma: float, width: float
) -> ParametricWaveform:
    """Flat-top pulse with gaussian edges."""
    return ParametricWaveform(
        "gaussian_square", duration, {"amp": amp, "sigma": sigma, "width": width}
    )
