"""Exception hierarchy for the whole stack.

A single rooted hierarchy lets callers catch ``ReproError`` to trap any
stack-internal failure, while each layer raises a precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ValidationError(ReproError):
    """An object violates a structural invariant (bad waveform, port...)."""


class ConstraintError(ValidationError):
    """A pulse program violates a device constraint (granularity,
    amplitude bound, duration bound, unknown port/frame...)."""


class ScheduleError(ReproError):
    """Illegal schedule construction (negative time, overlap on a port
    where overlap is forbidden, barrier misuse...)."""


class IRError(ReproError):
    """Malformed IR: verification failure, bad operand types, unknown op."""


class ParseError(IRError):
    """Textual IR (MLIR-like or QIR-like) could not be parsed."""


class PassError(IRError):
    """A compiler pass failed or was applied to an unsupported payload."""


class LoweringError(PassError):
    """Gate->pulse (or dialect->dialect) lowering failed, typically due
    to a missing calibration entry."""


class QDMIError(ReproError):
    """Backend-interface failure (QDMI layer)."""


class SessionError(QDMIError):
    """Operation attempted on a closed or unauthorized session."""


class JobError(QDMIError):
    """Illegal job transition or submission failure."""


class UnsupportedQueryError(QDMIError):
    """Device does not implement the requested property query."""


class LinkError(ReproError):
    """QIR runtime linking failed: unresolved intrinsic symbol."""


class CompilationError(ReproError):
    """End-to-end JIT compilation pipeline failure."""


class ExecutionError(ReproError):
    """Runtime execution failure on a device or simulator."""


class ServiceError(ReproError):
    """Failure inside the serving layer (:mod:`repro.serving`)."""


class BackpressureError(ServiceError):
    """Admission control refused a request: the service queue is full."""


class RoutingError(ServiceError):
    """No capable device is available to execute a request."""


class CancelledError(ServiceError):
    """A ticket was cancelled before (or while) its job executed.

    Raised from ``Ticket.result()`` for cancelled tickets, and raised
    *inside* a running execution when the cooperative cancel flag is
    observed at a chunk boundary (see
    :meth:`repro.sim.executor.ScheduleExecutor.execute_batch`)."""


class CalibrationError(ReproError):
    """A calibration routine failed to converge or was misconfigured."""


class OptimizationError(ReproError):
    """Optimal-control optimization failure (GRAPE, parametric...)."""


class PipelineError(ReproError):
    """Failure inside the calibration pipeline (:mod:`repro.pipeline`):
    malformed DAG, unknown task kind, exhausted retries, or a durable
    run/task state inconsistency."""
