"""QPI — the C-style Quantum Programming Interface (paper §5.1).

The paper extends MQSS's native QPI — "a lightweight C-based library
designed for HPCQC integration" — with three pulse primitives:

* ``qWaveform(waveform, amps)`` — create a waveform from amplitudes,
* ``qPlayWaveform(port, waveform)`` — emit it on a hardware port,
* ``qFrameChange(port, frequency, phase)`` — set carrier freq/phase,

alongside the existing gate calls (``qX``, ``qMeasure``...). "The new
three QPI primitives operate at native speed due to its C
implementation"; the HPC-relevant property is that *kernel construction
inside the classical optimization loop is nearly free*. This package
reproduces that call surface and that property in Python:
:mod:`repro.qpi.qpi` is a handle-based, allocation-light builder that
only appends small tuples per call, while :mod:`repro.qpi.pythonic` is
the deliberately conventional object API (per-call objects, deep
validation, string formatting) that stands in for "a scripting-language
API" in the overhead experiment (E5).
"""

from repro.qpi.qpi import (
    QCircuit,
    QuantumResult,
    qBarrier,
    qCircuitBegin,
    qCircuitEnd,
    qCircuitFree,
    qCZ,
    qDelay,
    qExecute,
    qFrameChange,
    qInitClassicalRegisters,
    qMeasure,
    qPlayWaveform,
    qRead,
    qRZ,
    qSX,
    qWaveform,
    qX,
)
from repro.qpi.compile import qpi_to_schedule
from repro.qpi.pythonic import PythonicCircuit

__all__ = [
    "QCircuit",
    "QuantumResult",
    "qCircuitBegin",
    "qCircuitEnd",
    "qCircuitFree",
    "qInitClassicalRegisters",
    "qX",
    "qSX",
    "qRZ",
    "qCZ",
    "qMeasure",
    "qWaveform",
    "qPlayWaveform",
    "qFrameChange",
    "qDelay",
    "qBarrier",
    "qExecute",
    "qRead",
    "qpi_to_schedule",
    "PythonicCircuit",
]
