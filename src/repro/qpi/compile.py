"""QPI op buffer -> pulse schedule (the qExecute JIT step).

All the cost deferred by the QPI hot-path calls lands here, once per
execution: waveform arrays are materialized and validated, port names
resolved against the device, gates expanded through the calibration
set. Plays and frame changes land on the port's *default frame*, which
is what the paper's ``qFrameChange(port, freq, phase)`` signature
implies (the frame is addressed through its port).
"""

from __future__ import annotations

from typing import Any

from repro.core.instructions import Delay, FrameChange, Play
from repro.core.schedule import PulseSchedule
from repro.core.waveform import SampledWaveform
from repro.errors import ValidationError
from repro.qpi.qpi import (
    OP_BARRIER,
    OP_CZ,
    OP_DELAY,
    OP_FRAME_CHANGE,
    OP_MEASURE,
    OP_PLAY,
    OP_RZ,
    OP_SX,
    OP_X,
    QCircuit,
)


def qpi_to_schedule(
    circuit: QCircuit, device: Any, name: str = "qpi-kernel"
) -> PulseSchedule:
    """Convert a QPI circuit into a device-bound pulse schedule."""
    schedule = PulseSchedule(name)
    cal = device.calibrations
    # Waveform handles materialize once, deduplicated by handle.
    materialized = [SampledWaveform(w) for w in circuit.waveforms]
    frames: dict[str, Any] = {}

    def frame_of(port):
        f = frames.get(port.name)
        if f is None:
            f = device.default_frame(port)
            frames[port.name] = f
        return f

    for op in circuit.ops:
        code = op[0]
        if code == OP_X:
            cal.get("x", (op[1],)).apply(schedule, [])
        elif code == OP_SX:
            cal.get("sx", (op[1],)).apply(schedule, [])
        elif code == OP_RZ:
            cal.get("rz", (op[1],)).apply(schedule, [op[2]])
        elif code == OP_CZ:
            lo, hi = sorted((op[1], op[2]))
            cal.get("cz", (lo, hi)).apply(schedule, [])
        elif code == OP_MEASURE:
            if circuit.num_cregs and op[2] >= circuit.num_cregs:
                raise ValidationError(
                    f"qMeasure into register {op[2]} but only "
                    f"{circuit.num_cregs} declared"
                )
            cal.get("measure", (op[1],)).apply(schedule, [op[2]])
        elif code == OP_PLAY:
            port = device.port(op[1])
            schedule.append(Play(port, frame_of(port), materialized[op[2]]))
        elif code == OP_FRAME_CHANGE:
            port = device.port(op[1])
            schedule.append(FrameChange(port, frame_of(port), op[2], op[3]))
        elif code == OP_DELAY:
            schedule.append(Delay(device.port(op[1]), op[2]))
        elif code == OP_BARRIER:
            schedule.barrier(*(device.port(p) for p in op[1]))
        else:  # pragma: no cover - opcodes are module-internal
            raise ValidationError(f"unknown QPI opcode {code}")
    return schedule
