"""The conventional Python object API — the overhead baseline.

The paper's motivation for a compiled QPI is that "C implementations
[have] far less overhead compared to a scripting language like Python"
(§5.1), and that pulse interfaces exposed "via Python APIs ... limit
suitability for low-latency, tightly integrated HPC workflows" (§7).

This module is the stand-in for that conventional style: a perfectly
reasonable-looking object API that does, per call, what dynamic
frameworks typically do — construct an instruction object, deep-copy
and validate parameters, normalize sample arrays, and maintain
name-indexed metadata. Each of those steps is defensible in isolation;
the E5 benchmark shows their sum dominating a VQE outer loop, which is
exactly the gap the QPI design removes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ValidationError


@dataclass
class PInstruction:
    """A fully-materialized instruction object (per-call allocation)."""

    name: str
    qubits: tuple[int, ...] = ()
    params: dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def validate(self) -> None:
        if not self.name:
            raise ValidationError("instruction must have a name")
        for q in self.qubits:
            if not isinstance(q, int) or q < 0:
                raise ValidationError(f"bad qubit index {q!r}")
        for key, value in self.params.items():
            if isinstance(value, float) and not np.isfinite(value):
                raise ValidationError(f"non-finite parameter {key}={value}")


class PythonicCircuit:
    """A dynamic, validating, object-rich circuit builder."""

    def __init__(self, num_qubits: int, num_clbits: int = 0) -> None:
        if num_qubits < 1:
            raise ValidationError("need at least one qubit")
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.instructions: list[PInstruction] = []
        self.metadata: dict[str, Any] = {"name": "circuit", "tags": []}
        self._waveforms: dict[str, np.ndarray] = {}

    # ---- internal per-call machinery (the overhead being measured) ---------------

    def _append(
        self, name: str, qubits: tuple[int, ...], **params: Any
    ) -> PInstruction:
        for q in qubits:
            if q >= self.num_qubits:
                raise ValidationError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )
        ins = PInstruction(
            name=name,
            qubits=qubits,
            params=copy.deepcopy(params),
            label=f"{name}@{','.join(map(str, qubits))}#{len(self.instructions)}",
        )
        ins.validate()
        self.instructions.append(ins)
        return ins

    # ---- gate API ------------------------------------------------------------------

    def x(self, qubit: int) -> "PythonicCircuit":
        self._append("x", (qubit,))
        return self

    def sx(self, qubit: int) -> "PythonicCircuit":
        self._append("sx", (qubit,))
        return self

    def rz(self, qubit: int, theta: float) -> "PythonicCircuit":
        self._append("rz", (qubit,), theta=float(theta))
        return self

    def cz(self, a: int, b: int) -> "PythonicCircuit":
        if a == b:
            raise ValidationError("cz needs two distinct qubits")
        self._append("cz", (a, b))
        return self

    def measure(self, qubit: int, clbit: int) -> "PythonicCircuit":
        if self.num_clbits and clbit >= self.num_clbits:
            raise ValidationError(f"clbit {clbit} out of range")
        self._append("measure", (qubit,), clbit=clbit)
        return self

    # ---- pulse API -------------------------------------------------------------------

    def waveform(self, name: str, samples) -> str:
        """Register a named waveform; samples normalized + validated."""
        arr = np.asarray(samples, dtype=np.complex128).copy()
        if arr.ndim != 1 or arr.size == 0:
            raise ValidationError("waveform must be a non-empty 1-D array")
        if not np.all(np.isfinite(arr.view(np.float64))):
            raise ValidationError("waveform samples must be finite")
        if float(np.abs(arr).max()) > 1.0 + 1e-9:
            raise ValidationError("waveform amplitude exceeds 1.0")
        self._waveforms[name] = arr
        return name

    def play(self, port: str, waveform: str) -> "PythonicCircuit":
        if waveform not in self._waveforms:
            raise ValidationError(f"unknown waveform {waveform!r}")
        self._append(
            "play",
            (),
            port=str(port),
            waveform=waveform,
            duration=int(self._waveforms[waveform].size),
        )
        return self

    def frame_change(
        self, port: str, frequency: float, phase: float
    ) -> "PythonicCircuit":
        self._append(
            "frame_change",
            (),
            port=str(port),
            frequency=float(frequency),
            phase=float(phase),
        )
        return self

    def delay(self, port: str, samples: int) -> "PythonicCircuit":
        self._append("delay", (), port=str(port), duration=int(samples))
        return self

    # ---- conversion ------------------------------------------------------------------

    def to_qpi_ops(self) -> list[tuple]:
        """Translate into the QPI op-buffer format (for execution)."""
        from repro.qpi import qpi as q

        waveform_index = {name: i for i, name in enumerate(self._waveforms)}
        out: list[tuple] = []
        for ins in self.instructions:
            if ins.name == "x":
                out.append((q.OP_X, ins.qubits[0]))
            elif ins.name == "sx":
                out.append((q.OP_SX, ins.qubits[0]))
            elif ins.name == "rz":
                out.append((q.OP_RZ, ins.qubits[0], ins.params["theta"]))
            elif ins.name == "cz":
                out.append((q.OP_CZ, ins.qubits[0], ins.qubits[1]))
            elif ins.name == "measure":
                out.append((q.OP_MEASURE, ins.qubits[0], ins.params["clbit"]))
            elif ins.name == "play":
                out.append(
                    (
                        q.OP_PLAY,
                        ins.params["port"],
                        waveform_index[ins.params["waveform"]],
                    )
                )
            elif ins.name == "frame_change":
                out.append(
                    (
                        q.OP_FRAME_CHANGE,
                        ins.params["port"],
                        ins.params["frequency"],
                        ins.params["phase"],
                    )
                )
            elif ins.name == "delay":
                out.append((q.OP_DELAY, ins.params["port"], ins.params["duration"]))
            else:  # pragma: no cover
                raise ValidationError(f"cannot convert {ins.name!r}")
        return out

    def to_qcircuit(self):
        """Full conversion to a QPI circuit handle."""
        from repro.qpi.qpi import QCircuit

        circuit = QCircuit()
        circuit.ops = self.to_qpi_ops()
        circuit.waveforms = list(self._waveforms.values())
        circuit.num_cregs = self.num_clbits
        return circuit
