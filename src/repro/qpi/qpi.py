"""The QPI call surface (paper Listing 1).

Design constraints, mirroring the C library the paper describes:

* **Handle-based** — circuits, waveforms and results are opaque
  handles; no rich objects cross the API boundary.
* **Allocation-light** — every call appends one small tuple to a
  pre-grown list; no validation objects, no per-call dictionaries, no
  string formatting. Validation and object construction happen once, at
  ``qExecute`` (the JIT boundary), not in the hot loop. This is what
  makes the VQE outer loop in Listing 1 cheap (experiment E5).
* **Thread-friendly** — the "current circuit" is explicit (passed to
  ``qCircuitBegin``), not ambient global state; the module-level
  functions write into whichever circuit is currently open, like the C
  API's implicit current-kernel register, and exactly one circuit may
  be open at a time per thread.

The op buffer uses integer opcodes (module-level constants) — the
tuple layout per opcode is documented next to each constant.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import ValidationError

# Opcodes (tuple layouts in comments).
OP_X = 0  # (OP_X, qubit)
OP_SX = 1  # (OP_SX, qubit)
OP_RZ = 2  # (OP_RZ, qubit, theta)
OP_CZ = 3  # (OP_CZ, a, b)
OP_MEASURE = 4  # (OP_MEASURE, qubit, creg)
OP_PLAY = 5  # (OP_PLAY, port_name, waveform_handle)
OP_FRAME_CHANGE = 6  # (OP_FRAME_CHANGE, port_name, frequency, phase)
OP_DELAY = 7  # (OP_DELAY, port_name, samples)
OP_BARRIER = 8  # (OP_BARRIER, port_names_tuple)


class QCircuit:
    """Opaque circuit handle: op buffer + waveform table."""

    __slots__ = ("ops", "waveforms", "num_cregs", "open", "result")

    def __init__(self) -> None:
        self.ops: list[tuple] = []
        self.waveforms: list[np.ndarray] = []
        self.num_cregs = 0
        self.open = False
        self.result: "QuantumResult | None" = None


class QuantumResult:
    """Opaque result handle filled by ``qExecute``."""

    __slots__ = ("counts", "probabilities", "shots", "expectation")

    def __init__(self, counts, probabilities, shots) -> None:
        self.counts = counts
        self.probabilities = probabilities
        self.shots = shots

    def expectation_z(self, slot: int = 0) -> float:
        """``<Z>`` of the bit at *slot* from exact probabilities.

        Raises :class:`~repro.errors.ValidationError` on an empty
        distribution or an out-of-range slot.

        .. deprecated::
            Thin view over the Observable engine; use
            ``repro.primitives.Observable.z(slot).expectation(...)``
            (or an :class:`~repro.primitives.Estimator` PUB) directly.
        """
        import warnings

        warnings.warn(
            "QuantumResult.expectation_z is deprecated; evaluate "
            "repro.primitives.Observable.z(slot) (or run an Estimator "
            "PUB) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.primitives.observables import expectation_z

        return expectation_z(self.probabilities, slot)


_tls = threading.local()


def _current() -> QCircuit:
    circuit = getattr(_tls, "circuit", None)
    if circuit is None:
        raise ValidationError("no circuit is open; call qCircuitBegin first")
    return circuit


# ---- lifecycle -------------------------------------------------------------------


def qCircuitBegin(circuit: QCircuit) -> None:
    """Open *circuit* for construction on this thread."""
    if getattr(_tls, "circuit", None) is not None:
        raise ValidationError("a circuit is already open on this thread")
    circuit.ops.clear()
    circuit.waveforms.clear()
    circuit.num_cregs = 0
    circuit.open = True
    _tls.circuit = circuit


def qCircuitEnd() -> None:
    """Close the current circuit."""
    circuit = _current()
    circuit.open = False
    _tls.circuit = None


def qCircuitFree(circuit: QCircuit) -> None:
    """Release the circuit's buffers (handle stays reusable)."""
    circuit.ops.clear()
    circuit.waveforms.clear()
    circuit.result = None


def qInitClassicalRegisters(n: int) -> None:
    """Declare *n* classical result registers."""
    _current().num_cregs = int(n)


# ---- gate-level calls ----------------------------------------------------------------


def qX(qubit: int) -> None:
    """X gate."""
    _current().ops.append((OP_X, qubit))


def qSX(qubit: int) -> None:
    """sqrt(X) gate."""
    _current().ops.append((OP_SX, qubit))


def qRZ(qubit: int, theta: float) -> None:
    """Virtual-Z rotation."""
    _current().ops.append((OP_RZ, qubit, theta))


def qCZ(a: int, b: int) -> None:
    """CZ gate."""
    _current().ops.append((OP_CZ, a, b))


def qMeasure(qubit: int, creg: int) -> None:
    """Measure *qubit* into classical register *creg*."""
    _current().ops.append((OP_MEASURE, qubit, creg))


# ---- pulse-level calls (the paper's three new primitives) ----------------------------


def qWaveform(amps) -> int:
    """Create a waveform from amplitude samples; returns its handle.

    The samples are *referenced*, not copied or validated here — the
    cost moves to qExecute, keeping the optimizer loop cheap.
    """
    circuit = _current()
    circuit.waveforms.append(amps)
    return len(circuit.waveforms) - 1


def qPlayWaveform(port: str, waveform: int) -> None:
    """Play waveform handle *waveform* on the named hardware port."""
    _current().ops.append((OP_PLAY, port, waveform))


def qFrameChange(port: str, frequency: float, phase: float) -> None:
    """Set the carrier frequency and phase of *port*'s default frame."""
    _current().ops.append((OP_FRAME_CHANGE, port, frequency, phase))


def qDelay(port: str, samples: int) -> None:
    """Idle *port* for *samples* samples."""
    _current().ops.append((OP_DELAY, port, samples))


def qBarrier(*ports: str) -> None:
    """Synchronize the named ports."""
    _current().ops.append((OP_BARRIER, ports))


# ---- execution -----------------------------------------------------------------------


def qExecute(device, circuit: QCircuit, nshots: int, *, seed: int | None = None) -> int:
    """Compile and run *circuit* on *device*; returns 0 on success.

    This is the JIT boundary: the op buffer is converted to a pulse
    schedule through the device's calibrations, compiled through the
    unified execution core (constraint legalization included), and
    dispatched on the session-free local fast path.

    .. deprecated::
        Superseded by the two-phase API: ``repro.compile(circuit,
        device).run(shots=...)`` — see :mod:`repro.api`.  The C-style
        return-code contract is kept: conversion errors raise
        :class:`~repro.errors.ValidationError` exactly as before, while
        compilation and execution failures return ``1`` and leave no
        result on the handle.
    """
    import warnings

    warnings.warn(
        "qExecute is deprecated; use repro.compile(circuit, device)"
        ".run(shots=...) (two-phase API)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.executable import Executable
    from repro.api.program import Program
    from repro.api.target import Target
    from repro.errors import ReproError

    if circuit.open:
        raise ValidationError("circuit still open; call qCircuitEnd before qExecute")
    # Payload conversion errors (bad register indices, unknown ports)
    # raise, matching the old qpi_to_schedule behaviour.
    executable = Executable.prepare(
        Program.from_qpi(circuit), Target.from_device(device)
    )
    try:
        result = executable.run(shots=nshots, seed=seed)
    except ReproError:
        circuit.result = None
        return 1
    circuit.result = QuantumResult(
        result.counts, result.probabilities, result.shots
    )
    return 0


def qRead(circuit: QCircuit) -> QuantumResult:
    """Retrieve the result deposited by the last successful qExecute."""
    if circuit.result is None:
        raise ValidationError("no result available; did qExecute succeed?")
    return circuit.result
