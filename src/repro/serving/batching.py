"""Request coalescing: identical programs share one device execution.

Under multi-tenant load many requests carry the *same* program — every
tenant's calibration check, the same benchmark circuit, a variational
loop re-evaluating one ansatz point. Executing each copy separately
repeats the expensive part (state evolution) for an identical answer.
The batcher groups queue entries whose (device, payload fingerprint)
match, executes the program once with the summed shot count, and
splits the sampled shots back per request with a multivariate
hypergeometric draw — statistically identical to each request having
drawn its own shots from the single execution's distribution.
"""

from __future__ import annotations

import threading

import numpy as np


class RequestBatcher:
    """Coalescing policy + shot-splitting for identical-program requests.

    Parameters
    ----------
    enabled:
        When false, every request executes individually (the scheduler
        compatibility mode).
    max_batch:
        Largest number of requests coalesced into one execution.
    seed:
        Seed for the shot-splitting RNG (deterministic splits).
    """

    def __init__(
        self, *, enabled: bool = True, max_batch: int = 32, seed: int = 0
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.enabled = enabled
        self.max_batch = max_batch
        self._rng = np.random.default_rng(seed)
        self._rng_lock = threading.Lock()

    @staticmethod
    def coalesce_key(
        device_name: str,
        fingerprint: str,
        seed: int | None = None,
        variant: str = "",
    ) -> str:
        """Grouping key: same device + same payload content + same seed.

        The seed is part of the key because a coalesced group executes
        once with the group's (shared) seed — merging requests that
        asked for different seeds would silently change their
        documented deterministic counts. *variant* distinguishes
        requests whose payload is identical but whose execution model
        is not (per-request decoherence overrides in a noise sweep):
        two points of a T1/T2 grid must never share one execution.
        """
        return f"{device_name}/{fingerprint}/s{seed}/{variant}"

    def split_counts(
        self, counts: dict[str, int], shots_per_request: list[int]
    ) -> list[dict[str, int]]:
        """Partition sampled *counts* into per-request count dicts.

        ``sum(shots_per_request)`` must not exceed the total shots in
        *counts*; each request receives exactly its shot count, drawn
        without replacement from the combined sample.
        """
        total_requested = sum(shots_per_request)
        pool_total = sum(counts.values())
        if total_requested > pool_total:
            raise ValueError(
                f"cannot split {pool_total} sampled shots into "
                f"{total_requested} requested shots"
            )
        keys = sorted(counts)
        pool = np.array([counts[k] for k in keys], dtype=np.int64)
        out: list[dict[str, int]] = []
        for shots in shots_per_request:
            if shots == 0 or not keys:
                out.append({})
                continue
            with self._rng_lock:
                draw = self._rng.multivariate_hypergeometric(pool, shots)
            pool = pool - draw
            out.append({k: int(n) for k, n in zip(keys, draw) if n})
        return out
