"""``connect()``: one client surface over every serving transport.

The unified entry point::

    client = repro.serving.connect(service_or_addr)

accepts an in-process :class:`~repro.serving.service.PulseService`, a
:class:`~repro.serving.cluster.ClusterService`, or an ``http://`` /
``https://`` address of a running front-end
(:mod:`repro.serving.http`), and returns a :class:`ServiceClient`
whose surface is identical across all three::

    ticket = client.submit(request)       # -> Ticket (protocol)
    client.submit_many(requests)
    client.submit_sweep(sweep)
    client.status(ticket_or_id)           # -> TicketState
    client.result(ticket_or_id, timeout)  # -> ClientResult
    client.cancel(ticket_or_id)           # -> bool
    client.devices(), client.metrics_text()

Results are bit-identical across transports: the HTTP path serializes
through :mod:`repro.serving.wire`, whose scalar fields are plain JSON
(exact float round-trip), so the same seeded request returns the same
counts and probabilities whether it executed in-process or behind the
front-end.

API mapping (all remain supported; ``connect`` is the
transport-agnostic spelling):

===============================  ======================================
existing surface                  unified client
===============================  ======================================
``service.submit(req)``           ``client.submit(req)``
``service.submit_many(reqs)``     ``client.submit_many(reqs)``
``service.submit_sweep(sweep)``   ``client.submit_sweep(sweep)``
``ticket.result(timeout)``        same (tickets implement the protocol)
``Executable.run_async()``        unchanged — works against any
                                  connected client via
                                  ``Target.from_service(client, dev)``
===============================  ======================================
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from repro.client.client import ClientResult, JobRequest
from repro.errors import ServiceError
from repro.serving.tickets import Ticket, TicketState


class ServiceClient:
    """Shared surface of every connected serving transport.

    Concrete transports implement ``submit``/``submit_many``/
    ``submit_sweep``/``devices``/``metrics_text``; the by-id helpers
    (``status``/``result``/``cancel``) resolve ids through a
    transport-specific :meth:`ticket` lookup, so both ticket objects
    and bare id strings are accepted everywhere.
    """

    def submit(self, request: JobRequest) -> Ticket:
        raise NotImplementedError

    def submit_many(self, requests: Iterable[JobRequest]) -> list[Ticket]:
        return [self.submit(r) for r in requests]

    def submit_sweep(self, sweep: Any):
        raise NotImplementedError

    def ticket(self, ticket_id: str) -> Ticket:
        """Resolve a ticket id back to a live handle."""
        raise NotImplementedError

    def devices(self) -> list[str]:
        raise NotImplementedError

    def metrics_text(self) -> str:
        """The obs registry exposition covering this service."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (no-op by default)."""

    # ---- by-id conveniences ----------------------------------------------------------

    def _coerce(self, ticket_or_id) -> Ticket:
        if isinstance(ticket_or_id, str):
            return self.ticket(ticket_or_id)
        return ticket_or_id

    def status(self, ticket_or_id) -> TicketState:
        return self._coerce(ticket_or_id).status()

    def result(self, ticket_or_id, timeout: float | None = None) -> ClientResult:
        return self._coerce(ticket_or_id).result(timeout)

    def cancel(self, ticket_or_id) -> bool:
        return self._coerce(ticket_or_id).cancel()

    # Shared admission core alias: Executable.run_async submits through
    # ``target.service._admit_request``, so any connected client can
    # stand in for a service on a Target.
    def _admit_request(
        self,
        request: JobRequest,
        *,
        block: bool = True,
        timeout: float | None = None,
    ) -> Ticket:
        return self.submit(request)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessClient(ServiceClient):
    """Unified client over a service object living in this process.

    Works for both :class:`~repro.serving.service.PulseService`
    (thread pool) and :class:`~repro.serving.cluster.ClusterService`
    (process pool + durable store); tickets the service hands out are
    kept in a registry so :meth:`ticket` resolves ids — cluster ids
    additionally resolve straight from the durable store, surviving
    registry loss across restarts.
    """

    def __init__(self, service: Any) -> None:
        self.service = service
        self._tickets: dict[str, Ticket] = {}
        self._lock = threading.Lock()

    # expose the underlying client when the service has one, so
    # Target.from_service(connect(service), dev) keeps local compile.
    @property
    def client(self):
        return getattr(self.service, "client", None)

    def _remember(self, ticket: Ticket) -> Ticket:
        with self._lock:
            self._tickets[ticket.id] = ticket
        return ticket

    def submit(self, request: JobRequest) -> Ticket:
        return self._remember(self.service.submit(request))

    def submit_many(self, requests: Iterable[JobRequest]) -> list[Ticket]:
        tickets = self.service.submit_many(list(requests))
        for t in tickets:
            self._remember(t)
        return tickets

    def submit_sweep(self, sweep: Any):
        aggregate = self.service.submit_sweep(sweep)
        for t in aggregate.tickets:
            self._remember(t)
        self._remember(aggregate)
        return aggregate

    def ticket(self, ticket_id: str) -> Ticket:
        with self._lock:
            ticket = self._tickets.get(ticket_id)
        if ticket is not None:
            return ticket
        lookup = getattr(self.service, "ticket", None)
        if lookup is not None:  # durable store lookup (cluster)
            return lookup(ticket_id)
        raise ServiceError(f"unknown ticket {ticket_id!r}")

    def devices(self) -> list[str]:
        client = self.client
        if client is not None:
            return sorted(client.driver.device_names())
        # Cluster services own no client; ask a worker-equivalent one.
        factory = getattr(self.service, "client_factory", None)
        if factory is not None:
            probe = factory()
            try:
                return sorted(probe.driver.device_names())
            finally:
                close = getattr(probe, "close", None)
                if close is not None:
                    close()
        return []

    def metrics_text(self) -> str:
        from repro.obs.metrics import exposition

        return exposition()

    def flush(self, timeout: float | None = None) -> bool:
        return self.service.flush(timeout)


def connect(target: Any) -> ServiceClient:
    """One client over any serving transport.

    *target* may be a :class:`PulseService`, a
    :class:`ClusterService`, an already-connected
    :class:`ServiceClient` (returned unchanged), or an ``http(s)://``
    address string of a running :mod:`repro.serving.http` front-end.
    """
    if isinstance(target, ServiceClient):
        return target
    if isinstance(target, str):
        if target.startswith(("http://", "https://")):
            from repro.serving.http import HttpServiceClient

            return HttpServiceClient(target)
        raise ServiceError(
            f"cannot connect to {target!r}: expected an http(s):// "
            "address or a service object"
        )
    if hasattr(target, "submit") and hasattr(target, "submit_sweep"):
        return InProcessClient(target)
    raise ServiceError(
        f"cannot connect to {type(target).__name__}: not a serving "
        "transport"
    )
