"""The durable job store: SQLite-backed ticket state for the cluster.

Every cluster submission becomes one row whose ``state`` column walks
the unified ticket lifecycle (``pending -> dispatched -> running ->
done/failed/cancelled``).  SQLite in WAL mode gives the properties the
serving layer needs without a new dependency:

* **durability** — tickets survive service restarts; a restarted
  service drains exactly the unfinished backlog and *replays* finished
  results without re-execution;
* **multi-process safety** — workers in separate processes lease jobs
  with one atomic ``BEGIN IMMEDIATE`` transaction each, so a job is
  never executed twice concurrently;
* **crash recovery** — leases carry a heartbeat deadline; a worker
  that dies mid-job (SIGKILL, OOM) simply stops heartbeating and the
  reaper re-leases its jobs.  Re-execution is safe because compilation
  is content-addressed (the row records the compile-cache fingerprint)
  and execution is seeded, so a re-run reproduces the same result.

The store is also the cluster's result and metrics channel: workers
record a per-job shared-memory spec (:mod:`repro.serving.shm`) plus a
JSON result header, and publish per-worker counter snapshots into
``worker_metrics`` for the parent's registry collector.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Iterable

from repro.errors import ServiceError
from repro.serving.tickets import TicketState

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    seq            INTEGER PRIMARY KEY AUTOINCREMENT,
    id             TEXT NOT NULL UNIQUE,
    kind           TEXT NOT NULL DEFAULT 'job',
    state          TEXT NOT NULL DEFAULT 'pending',
    device         TEXT NOT NULL DEFAULT '',
    priority       INTEGER NOT NULL DEFAULT 0,
    fingerprint    TEXT NOT NULL DEFAULT '',
    request        BLOB,
    result         BLOB,
    result_meta    TEXT,
    shm            TEXT,
    error          TEXT,
    size           INTEGER NOT NULL DEFAULT 1,
    cancel         INTEGER NOT NULL DEFAULT 0,
    cancel_votes   TEXT,
    attempts       INTEGER NOT NULL DEFAULT 0,
    max_attempts   INTEGER NOT NULL DEFAULT 3,
    lease_owner    TEXT,
    lease_deadline REAL,
    created_at     REAL NOT NULL,
    updated_at     REAL NOT NULL,
    completed_at   REAL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, priority, seq);
CREATE TABLE IF NOT EXISTS worker_metrics (
    worker     TEXT PRIMARY KEY,
    payload    TEXT NOT NULL,
    updated_at REAL NOT NULL
);
"""

#: Row states a job can still make progress from.
UNFINISHED = ("pending", "dispatched", "running")


class JobStore:
    """One SQLite file of durable job state, usable from many processes.

    Connections are per-thread (SQLite connections are not thread-safe
    by default) and every process opens its own — cross-process
    coordination happens entirely through the database file.
    """

    def __init__(self, path: str, *, busy_timeout_s: float = 30.0) -> None:
        if not path or path == ":memory:":
            raise ServiceError(
                "JobStore needs a file path (shared across processes); "
                "':memory:' stores are invisible to workers"
            )
        self.path = os.path.abspath(path)
        self.busy_timeout_s = busy_timeout_s
        self._local = threading.local()
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    # ---- connection plumbing ---------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                self.path, timeout=self.busy_timeout_s, isolation_level=None
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}")
            self._local.conn = conn
        return conn

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _txn(self) -> sqlite3.Connection:
        """One IMMEDIATE transaction; caller commits/rolls back."""
        conn = self._connect()
        conn.execute("BEGIN IMMEDIATE")
        return conn

    # ---- admission -------------------------------------------------------------------

    def put(
        self,
        job_id: str,
        request_blob: bytes,
        *,
        kind: str = "job",
        device: str = "",
        priority: int = 0,
        fingerprint: str = "",
        size: int = 1,
        max_attempts: int = 3,
    ) -> None:
        now = time.time()
        self._connect().execute(
            "INSERT INTO jobs (id, kind, state, device, priority, "
            "fingerprint, request, size, max_attempts, created_at, "
            "updated_at) VALUES (?, ?, 'pending', ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                job_id,
                kind,
                device,
                priority,
                fingerprint,
                request_blob,
                size,
                max_attempts,
                now,
                now,
            ),
        )

    # ---- worker side -----------------------------------------------------------------

    def lease(self, worker: str, lease_s: float) -> dict | None:
        """Atomically claim the next pending job for *worker*.

        Priority first, FIFO within priority — the same ordering the
        in-process device queues use.  Returns the claimed row (as a
        plain dict) or None when the backlog is empty.
        """
        now = time.time()
        conn = self._txn()
        try:
            row = conn.execute(
                "SELECT * FROM jobs WHERE state = 'pending' AND cancel = 0 "
                "ORDER BY priority DESC, seq LIMIT 1"
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            conn.execute(
                "UPDATE jobs SET state = 'dispatched', lease_owner = ?, "
                "lease_deadline = ?, attempts = attempts + 1, "
                "updated_at = ? WHERE seq = ?",
                (worker, now + lease_s, now, row["seq"]),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        out = dict(row)
        out["state"] = "dispatched"
        out["attempts"] = row["attempts"] + 1
        out["lease_owner"] = worker
        return out

    def mark_running(self, job_id: str, worker: str, lease_s: float) -> bool:
        """dispatched -> running; False when the lease was lost."""
        now = time.time()
        cur = self._connect().execute(
            "UPDATE jobs SET state = 'running', lease_deadline = ?, "
            "updated_at = ? WHERE id = ? AND lease_owner = ? "
            "AND state = 'dispatched'",
            (now + lease_s, now, job_id, worker),
        )
        return cur.rowcount == 1

    def heartbeat(self, worker: str, lease_s: float) -> int:
        """Extend the deadline of every lease *worker* still holds."""
        now = time.time()
        cur = self._connect().execute(
            "UPDATE jobs SET lease_deadline = ? WHERE lease_owner = ? "
            "AND state IN ('dispatched', 'running')",
            (now + lease_s, worker),
        )
        return cur.rowcount

    def complete(
        self,
        job_id: str,
        worker: str,
        *,
        result_meta: str,
        shm_spec: dict | None,
    ) -> bool:
        """Record a finished execution (result header + shm spec).

        Guarded on the lease: a zombie worker whose job was re-leased
        after a missed heartbeat cannot clobber the re-execution.
        """
        now = time.time()
        cur = self._connect().execute(
            "UPDATE jobs SET state = 'done', result_meta = ?, shm = ?, "
            "error = NULL, updated_at = ?, completed_at = ? "
            "WHERE id = ? AND lease_owner = ? "
            "AND state IN ('dispatched', 'running')",
            (
                result_meta,
                json.dumps(shm_spec) if shm_spec is not None else None,
                now,
                now,
                job_id,
                worker,
            ),
        )
        return cur.rowcount == 1

    def fail(self, job_id: str, worker: str, error_json: str) -> bool:
        now = time.time()
        cur = self._connect().execute(
            "UPDATE jobs SET state = 'failed', error = ?, updated_at = ?, "
            "completed_at = ? WHERE id = ? AND lease_owner = ? "
            "AND state IN ('dispatched', 'running')",
            (error_json, now, now, job_id, worker),
        )
        return cur.rowcount == 1

    def mark_cancelled(self, job_id: str, worker: str | None = None) -> bool:
        now = time.time()
        if worker is None:
            cur = self._connect().execute(
                "UPDATE jobs SET state = 'cancelled', updated_at = ?, "
                "completed_at = ? WHERE id = ? AND state = 'pending'",
                (now, now, job_id),
            )
        else:
            cur = self._connect().execute(
                "UPDATE jobs SET state = 'cancelled', updated_at = ?, "
                "completed_at = ? WHERE id = ? AND lease_owner = ? "
                "AND state IN ('dispatched', 'running')",
                (now, now, job_id, worker),
            )
        return cur.rowcount == 1

    # ---- cancellation ----------------------------------------------------------------

    def request_cancel(self, job_id: str, index: int | None = None) -> TicketState:
        """Request cancellation; pending jobs drop immediately.

        With *index* given, records one member's vote on a chunk row
        (size > 1): the chunk executes as a unit, so the cancel flag
        only arms once *every* member has voted — the same all-members
        rule the in-process coalescer applies.  ``index=None`` (or a
        size-1 row) cancels outright.

        Returns the row state *after* the request (CANCELLED when the
        job was still queued, otherwise its current state — running
        jobs observe the flag cooperatively).
        """
        now = time.time()
        conn = self._txn()
        missing = False
        try:
            row = conn.execute(
                "SELECT state, size, cancel, cancel_votes FROM jobs "
                "WHERE id = ?",
                (job_id,),
            ).fetchone()
            if row is None:
                missing = True
                out_state = None
            elif TicketState(row["state"]).terminal:
                out_state = TicketState(row["state"])
            else:
                full = index is None or int(row["size"]) <= 1
                votes: set[int] = set(json.loads(row["cancel_votes"] or "[]"))
                if not full:
                    votes.add(int(index))
                    full = len(votes) >= int(row["size"])
                conn.execute(
                    "UPDATE jobs SET cancel = ?, cancel_votes = ?, "
                    "updated_at = ? WHERE id = ?",
                    (
                        1 if (full or row["cancel"]) else 0,
                        json.dumps(sorted(votes)),
                        now,
                        job_id,
                    ),
                )
                if full:
                    conn.execute(
                        "UPDATE jobs SET state = 'cancelled', "
                        "updated_at = ?, completed_at = ? "
                        "WHERE id = ? AND state = 'pending'",
                        (now, now, job_id),
                    )
                out = conn.execute(
                    "SELECT state FROM jobs WHERE id = ?", (job_id,)
                ).fetchone()
                out_state = TicketState(out["state"])
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        if missing:
            raise ServiceError(f"unknown job {job_id!r}")
        return out_state

    def cancel_requested(self, job_id: str) -> bool:
        row = self._connect().execute(
            "SELECT cancel FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return bool(row and row["cancel"])

    # ---- parent side -----------------------------------------------------------------

    def get(self, job_id: str) -> dict:
        row = self._connect().execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return dict(row)

    def state(self, job_id: str) -> TicketState:
        row = self._connect().execute(
            "SELECT state FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return TicketState(row["state"])

    def unfinished(self) -> int:
        row = self._connect().execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE state IN (?, ?, ?)",
            UNFINISHED,
        ).fetchone()
        return int(row["n"])

    def counts_by_state(self) -> dict[str, int]:
        rows = self._connect().execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ).fetchall()
        return {row["state"]: int(row["n"]) for row in rows}

    def reap_expired(self) -> list[str]:
        """Re-lease jobs whose worker stopped heartbeating.

        Expired leases go back to ``pending`` (idempotent re-execution)
        unless the row is out of attempts, in which case it fails with
        a descriptive error.  Returns the ids that were re-leased.
        """
        now = time.time()
        conn = self._txn()
        try:
            rows = conn.execute(
                "SELECT seq, id, attempts, max_attempts, lease_owner "
                "FROM jobs WHERE state IN ('dispatched', 'running') "
                "AND lease_deadline < ?",
                (now,),
            ).fetchall()
            releases: list[str] = []
            for row in rows:
                if row["attempts"] >= row["max_attempts"]:
                    conn.execute(
                        "UPDATE jobs SET state = 'failed', error = ?, "
                        "updated_at = ?, completed_at = ? WHERE seq = ?",
                        (
                            json.dumps(
                                {
                                    "type": "ExecutionError",
                                    "message": (
                                        f"job lease expired after "
                                        f"{row['attempts']} attempts "
                                        f"(last worker "
                                        f"{row['lease_owner']!r} died?)"
                                    ),
                                }
                            ),
                            now,
                            now,
                            row["seq"],
                        ),
                    )
                else:
                    conn.execute(
                        "UPDATE jobs SET state = 'pending', "
                        "lease_owner = NULL, lease_deadline = NULL, "
                        "updated_at = ? WHERE seq = ?",
                        (now, row["seq"]),
                    )
                    releases.append(row["id"])
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return releases

    def attach_result(
        self, job_id: str, blob: bytes, *, expected_shm: str | None
    ) -> bool:
        """Persist the assembled result blob, claiming the shm unlink.

        The ``WHERE shm IS ?`` guard makes assembly race-free between
        the service monitor and a polling ticket: exactly one caller
        wins (and must unlink the segment); the loser re-reads the
        blob the winner stored.
        """
        cur = self._connect().execute(
            "UPDATE jobs SET result = ?, shm = NULL, updated_at = ? "
            "WHERE id = ? AND state = 'done' AND shm IS ?",
            (blob, time.time(), job_id, expected_shm),
        )
        return cur.rowcount == 1

    def pending_assembly(self) -> list[dict]:
        """Finished rows whose arrays still sit in shared memory."""
        rows = self._connect().execute(
            "SELECT * FROM jobs WHERE state = 'done' AND shm IS NOT NULL"
        ).fetchall()
        return [dict(row) for row in rows]

    def recover(self) -> dict[str, int]:
        """Startup sweep after a (possibly unclean) shutdown.

        * expired leases are re-leased (or failed) via
          :meth:`reap_expired`;
        * ``done`` rows still pointing at shared memory lose the
          segment with the process that held it — those re-execute, so
          they go back to ``pending`` (their specs are returned for
          best-effort unlinking by the caller).
        """
        from repro.serving import shm as _shm

        released = len(self.reap_expired())
        reexecuted = 0
        for row in self.pending_assembly():
            spec = json.loads(row["shm"])
            try:
                _shm.load_arrays(spec)
                segment_alive = True
            except FileNotFoundError:
                segment_alive = False
            if segment_alive:
                continue  # segment still alive; normal assembly will run
            now = time.time()
            self._connect().execute(
                "UPDATE jobs SET state = 'pending', shm = NULL, "
                "result_meta = NULL, lease_owner = NULL, "
                "lease_deadline = NULL, completed_at = NULL, "
                "updated_at = ? WHERE seq = ? AND shm IS NOT NULL",
                (now, row["seq"]),
            )
            reexecuted += 1
        return {"released": released, "reexecuted": reexecuted}

    # ---- metrics channel -------------------------------------------------------------

    def publish_worker_metrics(self, worker: str, payload: dict) -> None:
        self._connect().execute(
            "INSERT INTO worker_metrics (worker, payload, updated_at) "
            "VALUES (?, ?, ?) ON CONFLICT(worker) DO UPDATE SET "
            "payload = excluded.payload, updated_at = excluded.updated_at",
            (worker, json.dumps(payload), time.time()),
        )

    def worker_metrics(self) -> dict[str, dict]:
        rows = self._connect().execute(
            "SELECT worker, payload FROM worker_metrics"
        ).fetchall()
        return {row["worker"]: json.loads(row["payload"]) for row in rows}

    # ---- introspection ---------------------------------------------------------------

    def jobs(self, states: Iterable[str] | None = None) -> list[dict]:
        if states is None:
            rows = self._connect().execute("SELECT * FROM jobs ORDER BY seq").fetchall()
        else:
            states = tuple(states)
            marks = ",".join("?" for _ in states)
            rows = self._connect().execute(
                f"SELECT * FROM jobs WHERE state IN ({marks}) ORDER BY seq",
                states,
            ).fetchall()
        return [dict(row) for row in rows]

    def __len__(self) -> int:
        row = self._connect().execute("SELECT COUNT(*) AS n FROM jobs").fetchone()
        return int(row["n"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobStore({self.path!r}, {self.counts_by_state()})"
