"""The asynchronous multi-device execution service.

:class:`PulseService` is the serving front door the paper's
architecture implies but the synchronous stack lacked: many frontends
submit :class:`~repro.client.client.JobRequest`\\ s, get future-like
:class:`JobTicket`\\ s back immediately, and the service drains the
per-device queues concurrently with compile caching, identical-program
coalescing, and capability failover.

Pipeline per request::

    submit ──▶ admission control (bounded in-flight total)
           ──▶ routing (capability candidates, load spill)
           ──▶ device queue (priority + FIFO)
    worker ──▶ coalesce mates ──▶ compile cache ──▶ execute (serialized
               per device) ──▶ shot split ──▶ resolve tickets
    failure ──▶ failover to the next equivalent device, else fail ticket

Failure semantics: *flow control* problems (service or device queue
full and not asked to block) raise
:class:`~repro.errors.BackpressureError` at ``submit``; *request*
problems (unknown device/adapter, execution failure after failover is
exhausted) are carried by the ticket and re-raised from
``ticket.result()``.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Callable, Iterable

from repro.client.client import ClientResult, JobRequest, MQSSClient
from repro.errors import BackpressureError, CancelledError, ServiceError
from repro.obs.tracing import span
from repro.serving.batching import RequestBatcher
from repro.serving.cache import CompileCache
from repro.serving.metrics import ServingMetrics
from repro.serving.routing import CapabilityRouter
from repro.serving.tickets import TicketState, new_ticket_id
from repro.serving.workers import DevicePool, ServiceEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.sweeps import SweepRequest

__all__ = ["JobTicket", "PulseService", "TicketState"]


class JobTicket:
    """Future-like handle for one request accepted by the service.

    Implements the :class:`repro.serving.tickets.Ticket` protocol: the
    same ``id``/``status``/``result``/``cancel``/``to_dict`` surface
    the cluster and HTTP tickets expose, so callers stay
    transport-agnostic.  All terminal transitions go through one
    idempotent :meth:`_finalize` — exactly one of resolve / fail /
    cancel wins, late arrivals are dropped.
    """

    def __init__(
        self, request: JobRequest | None, *, ticket_id: str | None = None
    ) -> None:
        self.id = ticket_id if ticket_id is not None else new_ticket_id()
        self.request = request
        self.state = TicketState.PENDING
        self.device: str | None = None  # device that actually executed
        self.attempts = 0  # failover hops taken
        self.group_size = 0  # requests sharing the execution (1 = alone)
        self.enqueued_at = time.perf_counter()
        self.dispatched_at: float | None = None
        self.completed_at: float | None = None
        self._event = threading.Event()
        self._result: ClientResult | None = None
        self._error: Exception | None = None
        self._state_lock = threading.Lock()
        self._cancel_requested = False
        #: Set by the admitting service; lets ``cancel()`` drop still-
        #: queued entries immediately instead of waiting for dispatch.
        self._cancel_hook: Callable[["JobTicket"], None] | None = None

    # ---- caller API ----------------------------------------------------------------

    def status(self) -> TicketState:
        """The current lifecycle state (non-blocking)."""
        return self.state

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> ClientResult:
        """The execution result; blocks, re-raises the failure if any."""
        if not self._event.wait(timeout):
            raise ServiceError(
                f"ticket {self.id} not done within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def exception(self, timeout: float | None = None) -> Exception | None:
        """The failure, or None on success; blocks like :meth:`result`."""
        if not self._event.wait(timeout):
            raise ServiceError(
                f"ticket {self.id} not done within {timeout}s"
            )
        return self._error

    def cancel(self) -> bool:
        """Request cancellation; False once the ticket is terminal.

        A still-queued job drops from its device queue and resolves
        ``CANCELLED`` immediately; a running job sets a cooperative
        flag checked at execution chunk boundaries.  ``True`` means
        the request was *accepted*, not that interruption is
        guaranteed — a job past its last chunk boundary completes.
        """
        with self._state_lock:
            if self.state.terminal:
                return False
            self._cancel_requested = True
        hook = self._cancel_hook
        if hook is not None:
            hook(self)
        return True

    @property
    def cancel_requested(self) -> bool:
        """Whether :meth:`cancel` has been called (cooperative flag)."""
        return self._cancel_requested

    @property
    def wait_s(self) -> float | None:
        """Queue wait: admission to dispatch-start (None while queued)."""
        if self.dispatched_at is None:
            return None
        return self.dispatched_at - self.enqueued_at

    # ---- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe snapshot (wire format of :mod:`repro.serving.wire`)."""
        from repro.serving import wire

        data: dict = {
            "kind": "job",
            "id": self.id,
            "state": self.state.value,
            "device": self.device
            or (self.request.device if self.request is not None else None),
            "attempts": self.attempts,
            "group_size": self.group_size,
        }
        if self.request is not None:
            data["request"] = wire.encode_request(self.request)
        if self._result is not None:
            data["result"] = wire.encode_result(self._result)
        if self._error is not None:
            data["error"] = wire.encode_error(self._error)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobTicket":
        """Rebuild a (detached) ticket from a :meth:`to_dict` snapshot.

        Terminal snapshots re-raise / return exactly what the original
        ticket carried; non-terminal snapshots are static — they report
        the snapshot state but never make progress.
        """
        from repro.serving import wire

        request = (
            wire.decode_request(data["request"]) if data.get("request") else None
        )
        ticket = cls(request, ticket_id=data.get("id"))
        state = TicketState(data.get("state", "pending"))
        if data.get("result") is not None:
            ticket._finalize(
                TicketState.DONE, result=wire.decode_result(data["result"])
            )
        elif data.get("error") is not None:
            error = wire.decode_error(data["error"])
            final = (
                TicketState.CANCELLED
                if isinstance(error, CancelledError)
                else (state if state.terminal else TicketState.FAILED)
            )
            ticket._finalize(final, error=error)
        elif state is TicketState.CANCELLED:
            ticket._cancelled()
        else:
            ticket.state = state
        if data.get("device"):
            ticket.device = data["device"]
        ticket.attempts = int(data.get("attempts", 0))
        ticket.group_size = int(data.get("group_size", 0))
        return ticket

    # ---- service internals ---------------------------------------------------------

    def _mark_dispatched(self) -> bool:
        """First dispatch stamps the ticket; re-dispatches return False."""
        if self.dispatched_at is not None:
            return False
        self.dispatched_at = time.perf_counter()
        with self._state_lock:
            if not self.state.terminal:
                self.state = TicketState.DISPATCHED
        return True

    def _mark_running(self) -> None:
        with self._state_lock:
            if not self.state.terminal:
                self.state = TicketState.RUNNING

    def _finalize(
        self,
        state: TicketState,
        *,
        result: ClientResult | None = None,
        error: Exception | None = None,
    ) -> bool:
        """Terminal transition; exactly the first caller wins."""
        with self._state_lock:
            if self.state.terminal:
                return False
            self.state = state
            self._result = result
            self._error = error
            if result is not None:
                self.device = result.device
            self.completed_at = time.perf_counter()
        self._event.set()
        return True

    def _resolve(self, result: ClientResult) -> bool:
        return self._finalize(TicketState.DONE, result=result)

    def _fail(self, error: Exception) -> bool:
        return self._finalize(TicketState.FAILED, error=error)

    def _cancelled(self, error: CancelledError | None = None) -> bool:
        if error is None:
            error = CancelledError(f"ticket {self.id} was cancelled")
        return self._finalize(TicketState.CANCELLED, error=error)


class PulseService:
    """Concurrent job service over an :class:`MQSSClient`.

    Parameters
    ----------
    client:
        The client whose compile/execute halves do the actual work.
        Give it ``persistent_sessions=True`` to avoid per-job session
        churn under load.
    router / compile_cache / batcher / metrics:
        Policy objects; sensible defaults are constructed when omitted
        (the client's own ``compile_cache`` is adopted if it has one).
    max_pending:
        Bound on requests in flight service-wide — admission control.
    per_device_pending:
        Bound per device queue (None = unbounded). A full device queue
        spills to an equivalent device when failover is allowed.
    workers_per_device:
        Threads per device pool. Device execution is serialized by the
        pool's exec lock regardless; extra workers overlap compilation
        with execution.
    start:
        Start worker threads immediately. With ``start=False``,
        requests queue up until :meth:`start` — useful to maximize
        coalescing for a known batch.
    """

    def __init__(
        self,
        client: MQSSClient,
        *,
        router: CapabilityRouter | None = None,
        compile_cache: CompileCache | None = None,
        batcher: RequestBatcher | None = None,
        metrics: ServingMetrics | None = None,
        max_pending: int = 1024,
        per_device_pending: int | None = 64,
        workers_per_device: int = 1,
        start: bool = True,
    ) -> None:
        if max_pending < 1:
            raise ServiceError(f"max_pending must be >= 1, got {max_pending}")
        self.client = client
        self.router = router if router is not None else CapabilityRouter(client.driver)
        if compile_cache is None:
            compile_cache = client.compile_cache or CompileCache()
        self.cache = compile_cache
        self.batcher = batcher if batcher is not None else RequestBatcher()
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.max_pending = max_pending
        self.per_device_pending = per_device_pending
        self.workers_per_device = workers_per_device
        #: Optional hook called in the worker thread right before each
        #: entry executes (serialized per device) — the calibration-
        #: aware scheduler interleaves drift tracking through it.
        self.before_execute: Callable[[ServiceEntry], None] | None = None
        self._pools: dict[str, DevicePool] = {}
        self._pools_lock = threading.RLock()
        self._admit = threading.Condition()
        self._in_flight = 0
        self._arrivals = itertools.count()
        self._started = False
        if start:
            self.start()

    # ---- lifecycle -----------------------------------------------------------------

    def start(self) -> "PulseService":
        """Start (or resume) draining the device queues."""
        with self._pools_lock:
            self._started = True
            for pool in self._pools.values():
                pool.start()
        return self

    def stop(self, wait: bool = True) -> None:
        """Drain queued work and stop the worker threads."""
        with self._pools_lock:
            self._started = False
            pools = list(self._pools.values())
        for pool in pools:
            pool.stop(wait=wait)

    def __enter__(self) -> "PulseService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def pending(self) -> int:
        """Requests admitted but not yet resolved."""
        with self._admit:
            return self._in_flight

    def flush(self, timeout: float | None = None) -> bool:
        """Block until every admitted request has resolved."""
        with self._admit:
            return self._admit.wait_for(lambda: self._in_flight == 0, timeout)

    # ---- submission ----------------------------------------------------------------

    def submit(
        self,
        request: JobRequest,
        *,
        block: bool = False,
        timeout: float | None = None,
    ) -> JobTicket:
        """Admit *request*; returns its ticket immediately.

        Raises :class:`~repro.errors.BackpressureError` when the
        service (or the request's device queue, with failover off) is
        full — unless *block*, which waits up to *timeout* for space.
        Request-level errors (unknown device/adapter…) do not raise:
        they come back on the ticket.

        Equivalent compiled-API spelling (same admission core)::

            repro.compile(program, Target.from_service(service, device)
                          ).run_async()

        Both remain supported; ``submit`` is the right surface when
        you already hold a :class:`~repro.client.client.JobRequest`.
        """
        return self._admit_request(request, block=block, timeout=timeout)

    def _admit_request(
        self,
        request: JobRequest,
        *,
        block: bool = False,
        timeout: float | None = None,
    ) -> JobTicket:
        """Admission control + routing (shared by every submit surface)."""
        ticket = JobTicket(request)
        ticket._cancel_hook = self._on_ticket_cancel
        with self._admit:
            if self._in_flight >= self.max_pending:
                if not block:
                    self.metrics.incr("rejected_backpressure")
                    raise BackpressureError(
                        f"service full: {self._in_flight} requests in flight "
                        f"(max_pending={self.max_pending})"
                    )
                if not self._started:
                    # Nothing will free admission slots until start();
                    # blocking here (esp. with timeout=None) deadlocks.
                    self.metrics.incr("rejected_backpressure")
                    raise BackpressureError(
                        f"service full (max_pending={self.max_pending}) and "
                        "not started: blocking admission cannot make progress"
                    )
                ok = self._admit.wait_for(
                    lambda: self._in_flight < self.max_pending, timeout
                )
                if not ok:
                    self.metrics.incr("rejected_backpressure")
                    raise BackpressureError(
                        f"service still full after {timeout}s "
                        f"(max_pending={self.max_pending})"
                    )
            self._in_flight += 1
        try:
            entry = self._build_entry(request, ticket)
        except Exception as exc:
            self._finish_entry()
            self.metrics.incr("rejected_invalid")
            ticket._fail(exc)
            return ticket
        try:
            self._place(entry, block=block, timeout=timeout)
        except BaseException:
            self._finish_entry()
            raise
        self.metrics.incr("submitted")
        return ticket

    def submit_many(
        self, requests: Iterable[JobRequest], *, block: bool = True
    ) -> list[JobTicket]:
        """Submit a batch in order; blocks for admission by default."""
        return [self._admit_request(r, block=block) for r in requests]

    def run(
        self, requests: Iterable[JobRequest], *, timeout: float | None = None
    ) -> list[JobTicket]:
        """Submit a batch and wait for all of it (tickets in order)."""
        tickets = self.submit_many(requests)
        for t in tickets:
            t.wait(timeout)
        return tickets

    def submit_sweep(self, sweep: "SweepRequest", *, block: bool = True):
        """Admit a parameter sweep: one request, a batch of schedules.

        Expands *sweep* into one :class:`JobRequest` per scan point and
        returns a :class:`~repro.serving.sweeps.SweepTicket` over the
        per-point tickets. Every point executes through the device's
        batched propagator engine and shares its propagator cache, so
        scans re-visiting amplitudes skip the decompositions (see
        :mod:`repro.serving.sweeps`).

        An admission failure partway through (backpressure with
        ``block=False``) never orphans the points already admitted:
        the failed point's ticket carries the error and the returned
        :class:`SweepTicket` stays complete and scan-ordered.

        Equivalent compiled-API spelling (same fan-out core):
        ``Executable.sweep(grid)`` on a service target.  Both remain
        supported.
        """
        return self._admit_sweep(sweep, block=block)

    def _admit_sweep(self, sweep: "SweepRequest", *, block: bool = True):
        """Sweep fan-out over :meth:`_admit` (internal, warning-free)."""
        from repro.serving.sweeps import SweepTicket

        requests = sweep.expand()
        self.metrics.incr("sweeps")
        self.metrics.incr("sweep_points", len(requests))
        tickets = []
        for request in requests:
            try:
                tickets.append(self._admit_request(request, block=block))
            except Exception as exc:
                ticket = JobTicket(request)
                ticket._fail(exc)
                tickets.append(ticket)
        return SweepTicket(sweep, tickets)

    # ---- routing / placement -------------------------------------------------------

    def _pool(self, device_name: str) -> DevicePool:
        with self._pools_lock:
            pool = self._pools.get(device_name)
            if pool is None:
                pool = DevicePool(
                    self,
                    device_name,
                    num_workers=self.workers_per_device,
                    max_pending=self.per_device_pending,
                )
                self._pools[device_name] = pool
                if self._started:
                    pool.start()
            return pool

    def _build_entry(self, request: JobRequest, ticket: JobTicket) -> ServiceEntry:
        candidates = self.router.candidates(request)
        entry = ServiceEntry(
            request,
            ticket,
            arrival=next(self._arrivals),
            enqueued_at=ticket.enqueued_at,
            candidates=candidates,
        )
        self._prepare_for_device(entry)
        return entry

    def _prepare_for_device(self, entry: ServiceEntry) -> None:
        """(Re)generate the adapter payload for the entry's current device."""
        _, target, _ = self.client.resolve_target(entry.device)
        adapter = self.client.select_adapter(entry.request)
        entry.payload = adapter.to_payload(entry.request.program, target)
        entry.fingerprint = self.client.compiler.payload_fingerprint(
            entry.payload, entry.request.scalar_args or None
        )
        decoherence = (entry.request.metadata or {}).get("decoherence")
        entry.coalesce_key = self.batcher.coalesce_key(
            entry.device,
            entry.fingerprint,
            entry.request.seed,
            variant=repr(decoherence) if decoherence is not None else "",
        )

    def _place(
        self,
        entry: ServiceEntry,
        *,
        block: bool = False,
        timeout: float | None = None,
    ) -> None:
        if self._pool(entry.device).offer(entry):
            return
        # Primary queue saturated: spill to an equivalent device.
        for i in range(entry.attempt + 1, len(entry.candidates)):
            pool = self._pool(entry.candidates[i])
            if pool.pending >= (pool.max_pending or float("inf")):
                continue
            entry.attempt = i
            entry.ticket.attempts = i
            try:
                self._prepare_for_device(entry)
            except Exception:
                continue
            if pool.offer(entry):
                self.metrics.incr("spills")
                return
        entry.attempt = 0
        self._prepare_for_device(entry)
        if block and self._pool(entry.device).offer(
            entry, block=True, timeout=timeout
        ):
            return
        self.metrics.incr("rejected_backpressure")
        raise BackpressureError(
            f"device queue for {entry.device!r} is full "
            f"(per_device_pending={self.per_device_pending})"
        )

    # ---- cancellation --------------------------------------------------------------

    def _on_ticket_cancel(self, _ticket: JobTicket) -> None:
        """Ticket cancel hook: drop still-queued cancelled entries now."""
        self._purge_cancelled_entries()

    def _purge_cancelled_entries(self) -> None:
        """Remove cancel-requested entries from every device queue.

        Purged tickets resolve ``CANCELLED`` immediately; entries a
        worker already popped are left to the cooperative flag.
        """
        with self._pools_lock:
            pools = list(self._pools.values())
        for pool in pools:
            purged = pool.purge(
                lambda e: e.ticket.cancel_requested
                and not e.ticket.state.terminal
            )
            for entry in purged:
                if entry.ticket._cancelled():
                    self.metrics.incr("cancelled")
                self._finish_entry()

    # ---- execution (worker threads) ------------------------------------------------

    def _execute_group(self, pool: DevicePool, group: list[ServiceEntry]) -> None:
        live: list[ServiceEntry] = []
        for entry in group:
            # Entries cancelled between queue and pop never execute.
            if entry.ticket.state.terminal:
                self._finish_entry()
            elif entry.ticket.cancel_requested:
                if entry.ticket._cancelled():
                    self.metrics.incr("cancelled")
                self._finish_entry()
            else:
                live.append(entry)
        if not live:
            return
        group = live
        for entry in group:
            entry.ticket.group_size = len(group)
            if entry.ticket._mark_dispatched():
                # Only the first dispatch is a queue wait; failover
                # re-dispatches would inflate the histogram.
                self.metrics.observe(
                    "queue_wait", entry.ticket.dispatched_at - entry.enqueued_at
                )
        head = group[0]

        def _group_cancelled() -> bool:
            # A coalesced execution serves every member; it is only
            # abandoned when *all* of them asked to cancel.
            return all(e.ticket.cancel_requested for e in group)

        try:
            with span(
                "serving.execute",
                device=pool.device_name,
                group=len(group),
            ):
                hook = self.before_execute
                if hook is not None:
                    for entry in group:
                        hook(entry)
                from repro.api.core import compile_payload

                timings: dict[str, float] = {}
                _, target, _ = self.client.resolve_target(pool.device_name)
                program = compile_payload(
                    self.client.compiler,
                    self.cache,
                    head.payload,
                    target,
                    scalar_args=head.request.scalar_args or None,
                    timings=timings,
                )
                self.metrics.observe("compile", timings["compile"])
                self.metrics.incr(
                    "cache_hits" if program.cache_hit else "cache_misses"
                )
                total_shots = sum(e.request.shots for e in group)
                for entry in group:
                    entry.ticket._mark_running()
                with pool.exec_lock:
                    combined = self.client.execute_compiled(
                        head.request,
                        program,
                        device_name=pool.device_name,
                        shots=total_shots,
                        timings=timings,
                        should_cancel=_group_cancelled,
                    )
                self.metrics.observe("execute", timings["execute"])
                self._resolve_group(group, combined, timings)
        except Exception as exc:
            self._handle_failure(group, exc)

    def _resolve_group(
        self,
        group: list[ServiceEntry],
        combined: ClientResult,
        timings: dict[str, float],
    ) -> None:
        if len(group) == 1:
            results = [combined]
        else:
            self.metrics.incr("coalesced_executions")
            self.metrics.incr("coalesced_requests", len(group))
            splits = self.batcher.split_counts(
                combined.counts, [e.request.shots for e in group]
            )
            results = [
                ClientResult(
                    device=combined.device,
                    counts=counts,
                    probabilities=combined.probabilities,
                    shots=entry.request.shots,
                    duration_samples=combined.duration_samples,
                    timings_s=dict(timings),
                    job_id=combined.job_id,
                    remote=combined.remote,
                    qir_size_bytes=combined.qir_size_bytes,
                )
                for entry, counts in zip(group, splits)
            ]
        for entry, result in zip(group, results):
            entry.ticket._resolve(result)
            self.metrics.incr("completed")
            self.metrics.observe(
                "total", entry.ticket.completed_at - entry.enqueued_at
            )
            self._finish_entry()

    def _handle_failure(self, group: list[ServiceEntry], exc: Exception) -> None:
        if isinstance(exc, CancelledError):
            # Cooperative cancel observed mid-execution: resolve every
            # member CANCELLED (the group only aborts when all asked)
            # and never fail over — the cancel would follow the entry.
            for entry in group:
                if entry.ticket._cancelled(exc):
                    self.metrics.incr("cancelled")
                self._finish_entry()
            return
        self.metrics.incr("execution_failures")
        for entry in group:
            nxt = entry.attempt + 1
            # No failover while the service is stopping: a re-enqueued
            # entry could land on a pool whose workers already exited
            # and strand its ticket forever.
            if (
                self.router.allow_failover
                and nxt < len(entry.candidates)
                and self._started
            ):
                entry.attempt = nxt
                entry.ticket.attempts = nxt
                try:
                    self._prepare_for_device(entry)
                except Exception as prep_exc:
                    entry.ticket._fail(prep_exc)
                    self.metrics.incr("failed")
                    self._finish_entry()
                    continue
                # Entry was already admitted; bypass the queue bound so
                # failover cannot deadlock on a full fallback queue.
                if self._pool(entry.device).offer(entry, force=True):
                    self.metrics.incr("failovers")
                else:  # fallback pool already stopped
                    entry.ticket._fail(exc)
                    self.metrics.incr("failed")
                    self._finish_entry()
            else:
                entry.ticket._fail(exc)
                self.metrics.incr("failed")
                self._finish_entry()

    def _finish_entry(self) -> None:
        with self._admit:
            self._in_flight -= 1
            self._admit.notify_all()
