"""Thread-safe serving telemetry: per-stage latency histograms.

The paper's calibration use case assumes HPC centers operating QC
services under sustained multi-tenant demand (§2.1); operating such a
service requires observability. :class:`ServingMetrics` aggregates the
counters every worker thread emits plus a latency histogram per
pipeline stage (queue wait, compile, execute, end-to-end), and renders
a Prometheus-style text exposition for scrapers and humans alike.

Since the :mod:`repro.obs` unification this module is a thin
compatibility shim: :class:`LatencyHistogram` is the registry
histogram (:class:`repro.obs.Histogram`) with its historical
seconds-flavoured accessors, and every :class:`ServingMetrics`
instance self-registers on the global :data:`repro.obs.REGISTRY`
so ``repro.obs.exposition()`` includes the serving series
(``repro_serving_*``) alongside caches and sim kernels. The
legacy per-service :meth:`ServingMetrics.render_text` format is
unchanged.
"""

from __future__ import annotations

import threading
import time
import weakref
from contextlib import contextmanager

from repro.obs.metrics import DEFAULT_TIME_BUCKETS_S, REGISTRY, Histogram
from repro.runtime.telemetry import Telemetry

#: Histogram bucket upper bounds in seconds: log-spaced from 2 us to
#: ~134 s (powers of four), plus the implicit +Inf overflow bucket.
#: (Now the registry-wide default, re-exported for compatibility.)
BUCKET_BOUNDS_S: tuple[float, ...] = DEFAULT_TIME_BUCKETS_S


class LatencyHistogram(Histogram):
    """A fixed-bucket latency histogram (thread-safe).

    The registry :class:`~repro.obs.Histogram` specialised to the
    serving bucket layout, keeping the original seconds-flavoured
    accessors (``sum_s``/``max_s``/``mean_s``) and quantile
    semantics (overflow quantiles report the observed max).
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(BUCKET_BOUNDS_S)

    @property
    def sum_s(self) -> float:
        return self.sum_value

    @property
    def max_s(self) -> float:
        return self.max_value

    def mean_s(self) -> float:
        return self.mean()

    def quantile(self, q: float) -> float:
        """Approximate *q*-quantile (bucket upper bound), q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            running = 0
            for bound, n in zip(self.bounds, self._counts):
                running += n
                if running >= target:
                    return bound
            return self._max


class ServingMetrics:
    """Counters + per-stage latency histograms for a :class:`PulseService`."""

    def __init__(self, name: str | None = None) -> None:
        self.telemetry = Telemetry()
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}
        self.name = name or REGISTRY.autoname("serving")
        self._register()

    def _register(self) -> None:
        """Publish this instance's series on the global registry."""
        ref = weakref.ref(self)
        service = self.name

        def collect():
            obj = ref()
            if obj is None:
                return None
            snap = obj.telemetry.snapshot()
            samples = []
            for key, value in snap["counters"].items():
                samples.append(
                    (
                        "repro_serving_events_total",
                        "counter",
                        {"service": service, "name": key},
                        value,
                    )
                )
            for key, value in snap["timers"].items():
                samples.append(
                    (
                        "repro_serving_stage_seconds_total",
                        "counter",
                        {"service": service, "stage": key},
                        value,
                    )
                )
            with obj._lock:
                stages = dict(obj._histograms)
            for stage, hist in stages.items():
                samples.append(
                    (
                        "repro_serving_latency_seconds",
                        "histogram",
                        {"service": service, "stage": stage},
                        hist,
                    )
                )
            return samples

        collect._obs_alive = lambda: ref() is not None
        REGISTRY.register_collector(collect)

    # ---- recording -----------------------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.telemetry.incr(name, amount)

    def get(self, name: str) -> float:
        return self.telemetry.get(name)

    def histogram(self, stage: str) -> LatencyHistogram:
        """The histogram for *stage*, created on first use."""
        with self._lock:
            hist = self._histograms.get(stage)
            if hist is None:
                hist = self._histograms[stage] = LatencyHistogram()
            return hist

    def observe(self, stage: str, seconds: float) -> None:
        """Record a latency sample for *stage* (histogram + timer sum)."""
        self.histogram(stage).observe(seconds)
        self.telemetry.add_time(stage, seconds)

    @contextmanager
    def timer(self, stage: str):
        """Time a block and :meth:`observe` it under *stage*."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(stage, time.perf_counter() - t0)

    # ---- export --------------------------------------------------------------------

    def _flat_telemetry(self) -> dict[str, float]:
        """Counters plus ``_s``-suffixed timers (legacy key layout)."""
        snap = self.telemetry.snapshot()
        out = dict(snap["counters"])
        out.update({f"{k}_s": v for k, v in snap["timers"].items()})
        return out

    def snapshot(self) -> dict[str, float]:
        """Counters/timers plus ``<stage>_p50_s``/``_p99_s``/``_count``."""
        out = self._flat_telemetry()
        with self._lock:
            stages = dict(self._histograms)
        for stage, hist in stages.items():
            out[f"{stage}_count"] = float(hist.count)
            out[f"{stage}_p50_s"] = hist.quantile(0.5)
            out[f"{stage}_p99_s"] = hist.quantile(0.99)
        return out

    def render_text(self) -> str:
        """Prometheus-style text exposition of counters and histograms."""
        lines: list[str] = []
        snap = self._flat_telemetry()
        for name in sorted(snap):
            lines.append(f"serving_{name} {snap[name]:.9g}")
        with self._lock:
            stages = sorted(self._histograms.items())
        for stage, hist in stages:
            metric = "serving_latency_seconds"
            for bound, cumulative in hist.cumulative_buckets():
                le = "+Inf" if bound == float("inf") else f"{bound:.9g}"
                lines.append(
                    f'{metric}_bucket{{stage="{stage}",le="{le}"}} {cumulative}'
                )
            lines.append(f'{metric}_sum{{stage="{stage}"}} {hist.sum_s:.9g}')
            lines.append(f'{metric}_count{{stage="{stage}"}} {hist.count}')
        return "\n".join(lines) + "\n"
