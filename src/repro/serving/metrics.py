"""Thread-safe serving telemetry: per-stage latency histograms.

The paper's calibration use case assumes HPC centers operating QC
services under sustained multi-tenant demand (§2.1); operating such a
service requires observability. :class:`ServingMetrics` aggregates the
counters every worker thread emits plus a latency histogram per
pipeline stage (queue wait, compile, execute, end-to-end), and renders
a Prometheus-style text exposition for scrapers and humans alike.

Built on the (also thread-safe) :class:`repro.runtime.telemetry.Telemetry`
counter/timer sink so scheduler-level and service-level telemetry share
one vocabulary.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
import time

from repro.runtime.telemetry import Telemetry

#: Histogram bucket upper bounds in seconds: log-spaced from 2 us to
#: ~134 s (powers of four), plus the implicit +Inf overflow bucket.
BUCKET_BOUNDS_S: tuple[float, ...] = tuple(2e-6 * 4**i for i in range(14))


class LatencyHistogram:
    """A fixed-bucket latency histogram (thread-safe)."""

    __slots__ = ("_lock", "_counts", "_overflow", "_sum", "_count", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * len(BUCKET_BOUNDS_S)
        self._overflow = 0
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample."""
        with self._lock:
            self._sum += seconds
            self._count += 1
            if seconds > self._max:
                self._max = seconds
            for i, bound in enumerate(BUCKET_BOUNDS_S):
                if seconds <= bound:
                    self._counts[i] += 1
                    return
            self._overflow += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum_s(self) -> float:
        return self._sum

    @property
    def max_s(self) -> float:
        return self._max

    def mean_s(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate *q*-quantile (bucket upper bound), q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            running = 0
            for i, bound in enumerate(BUCKET_BOUNDS_S):
                running += self._counts[i]
                if running >= target:
                    return bound
            return self._max

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound_s, cumulative_count)`` rows, +Inf last."""
        with self._lock:
            rows: list[tuple[float, int]] = []
            running = 0
            for bound, n in zip(BUCKET_BOUNDS_S, self._counts):
                running += n
                rows.append((bound, running))
            rows.append((float("inf"), running + self._overflow))
            return rows


class ServingMetrics:
    """Counters + per-stage latency histograms for a :class:`PulseService`."""

    def __init__(self) -> None:
        self.telemetry = Telemetry()
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}

    # ---- recording -----------------------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.telemetry.incr(name, amount)

    def get(self, name: str) -> float:
        return self.telemetry.get(name)

    def histogram(self, stage: str) -> LatencyHistogram:
        """The histogram for *stage*, created on first use."""
        with self._lock:
            hist = self._histograms.get(stage)
            if hist is None:
                hist = self._histograms[stage] = LatencyHistogram()
            return hist

    def observe(self, stage: str, seconds: float) -> None:
        """Record a latency sample for *stage* (histogram + timer sum)."""
        self.histogram(stage).observe(seconds)
        self.telemetry.add_time(stage, seconds)

    @contextmanager
    def timer(self, stage: str):
        """Time a block and :meth:`observe` it under *stage*."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(stage, time.perf_counter() - t0)

    # ---- export --------------------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Counters/timers plus ``<stage>_p50_s``/``_p99_s``/``_count``."""
        out = self.telemetry.snapshot()
        with self._lock:
            stages = dict(self._histograms)
        for stage, hist in stages.items():
            out[f"{stage}_count"] = float(hist.count)
            out[f"{stage}_p50_s"] = hist.quantile(0.5)
            out[f"{stage}_p99_s"] = hist.quantile(0.99)
        return out

    def render_text(self) -> str:
        """Prometheus-style text exposition of counters and histograms."""
        lines: list[str] = []
        snap = self.telemetry.snapshot()
        for name in sorted(snap):
            lines.append(f"serving_{name} {snap[name]:.9g}")
        with self._lock:
            stages = sorted(self._histograms.items())
        for stage, hist in stages:
            metric = "serving_latency_seconds"
            for bound, cumulative in hist.cumulative_buckets():
                le = "+Inf" if bound == float("inf") else f"{bound:.9g}"
                lines.append(
                    f'{metric}_bucket{{stage="{stage}",le="{le}"}} {cumulative}'
                )
            lines.append(f'{metric}_sum{{stage="{stage}"}} {hist.sum_s:.9g}')
            lines.append(f'{metric}_count{{stage="{stage}"}} {hist.count}')
        return "\n".join(lines) + "\n"
