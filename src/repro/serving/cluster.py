"""Durable multi-process serving: worker pools over a persistent store.

:class:`ClusterService` is the process-parallel sibling of the
thread-based :class:`~repro.serving.service.PulseService`.  Simulation
is CPU-bound numerics, so threads share one GIL; here every worker is
a full OS process with its own interpreter, its own
:class:`~repro.client.client.MQSSClient` (built by the caller's
``client_factory``), and its own content-addressed compile cache.

Architecture::

    submit ──▶ JobStore (SQLite, WAL)  ◀── lease ── worker process 0
                  │    ▲                ◀── lease ── worker process 1
                  │    │ complete(meta, shm spec)        ...
                  ▼    │
            monitor thread ──▶ assemble shm ──▶ durable result blob
                  │
                  └──▶ reap expired leases, respawn dead workers,
                       aggregate worker metrics

Durability model — everything lives in the store:

* tickets survive restarts: a restarted service ``recover()``\\ s the
  store, drains exactly the unfinished backlog, and *replays* finished
  tickets from their persisted result blobs without re-execution;
* a worker killed mid-job (SIGKILL, OOM) stops heartbeating; the
  monitor re-leases its jobs after the lease deadline.  Re-execution
  is idempotent: compilation is content-addressed (the same cache key
  the in-process service uses) and execution is seeded, so the re-run
  reproduces the same result;
* results return over :mod:`multiprocessing.shared_memory` — the
  stacked probability/count arrays of a whole job chunk ride one
  segment, never pickled per job — and the parent persists the
  assembled blob so the arrays outlive the segment.

Cancellation is uniform with the rest of the serving stack: pending
rows drop from the backlog immediately; running rows set a cooperative
flag the worker polls into the executor's chunk boundaries.  Chunked
rows (``submit_many``/``submit_sweep`` batches) execute as a unit and
cancel like an in-process coalesced group: only when every member
votes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
import uuid
import weakref
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.client.client import ClientResult, JobRequest
from repro.errors import CancelledError, ServiceError
from repro.obs.metrics import REGISTRY
from repro.serving import shm as _shm
from repro.serving import wire
from repro.serving.store import JobStore
from repro.serving.tickets import TicketState, new_ticket_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.client.client import MQSSClient
    from repro.serving.sweeps import SweepRequest


# ---- result <-> (meta, arrays) split ------------------------------------------------
#
# Scalars and outcome labels travel as JSON in the store row; the
# numeric vectors of the whole chunk concatenate into two flat arrays
# shipped through one shared-memory segment.


def split_results(results: Sequence[ClientResult]) -> tuple[dict, dict]:
    """(JSON meta, shm arrays) for a chunk's results."""
    import numpy as np

    meta = []
    probs: list[float] = []
    counts: list[int] = []
    for result in results:
        encoded = wire.encode_result(result)
        pkeys = sorted(encoded.pop("probabilities"))
        ckeys = sorted(encoded.pop("counts"))
        probs.extend(result.probabilities[k] for k in pkeys)
        counts.extend(result.counts[k] for k in ckeys)
        encoded["prob_keys"] = pkeys
        encoded["count_keys"] = ckeys
        meta.append(encoded)
    arrays = {
        "probs": np.asarray(probs, dtype=np.float64),
        "counts": np.asarray(counts, dtype=np.int64),
    }
    return {"results": meta}, arrays


def join_results(meta: dict, arrays: dict) -> list[dict]:
    """Rebuild the chunk's encoded results from meta + shm arrays."""
    probs = arrays["probs"]
    counts = arrays["counts"]
    out = []
    p = c = 0
    for encoded in meta["results"]:
        entry = dict(encoded)
        pkeys = entry.pop("prob_keys")
        ckeys = entry.pop("count_keys")
        entry["probabilities"] = {
            k: float(v) for k, v in zip(pkeys, probs[p : p + len(pkeys)])
        }
        entry["counts"] = {
            k: int(v) for k, v in zip(ckeys, counts[c : c + len(ckeys)])
        }
        p += len(pkeys)
        c += len(ckeys)
        out.append(entry)
    return out


# ---- worker process -----------------------------------------------------------------


def _throttled_cancel_check(store: JobStore, job_id: str, interval_s: float = 0.05):
    """A ``should_cancel`` callable polling the store at most every
    *interval_s* (chunk-boundary checks are hot)."""
    state = [0.0, False]

    def check() -> bool:
        now = time.monotonic()
        if not state[1] and now - state[0] >= interval_s:
            state[0] = now
            state[1] = store.cancel_requested(job_id)
        return state[1]

    return check


def _worker_main(
    store_path: str,
    client_factory: Callable[[], "MQSSClient"],
    label: str,
    lease_s: float,
    poll_s: float,
    stop_event,
) -> None:
    """Worker loop: lease -> compile -> execute -> shm -> complete."""
    worker_id = f"{label}-{uuid.uuid4().hex[:8]}"
    store = JobStore(store_path)
    client = client_factory()
    counters: dict[str, float] = {
        "jobs_done": 0,
        "jobs_failed": 0,
        "jobs_cancelled": 0,
        "requests_done": 0,
        "execute_seconds": 0.0,
        "pid": float(os.getpid()),
    }

    # Heartbeats extend the lease while a long execution runs; a
    # SIGKILLed worker stops beating and the monitor re-leases.
    hb_stop = threading.Event()

    def heartbeat() -> None:
        while not hb_stop.wait(max(lease_s / 3.0, 0.05)):
            try:
                store.heartbeat(worker_id, lease_s)
            except Exception:
                pass

    hb = threading.Thread(target=heartbeat, daemon=True)
    hb.start()

    def publish() -> None:
        try:
            store.publish_worker_metrics(worker_id, counters)
        except Exception:
            pass

    publish()
    try:
        while not stop_event.is_set():
            try:
                row = store.lease(worker_id, lease_s)
            except Exception:
                time.sleep(poll_s)
                continue
            if row is None:
                stop_event.wait(poll_s)
                continue
            _run_leased_job(store, client, worker_id, row, lease_s, counters)
            publish()
    finally:
        hb_stop.set()
        publish()
        store.close()


def _run_leased_job(
    store: JobStore,
    client: "MQSSClient",
    worker_id: str,
    row: dict,
    lease_s: float,
    counters: dict,
) -> None:
    job_id = row["id"]
    should_cancel = _throttled_cancel_check(store, job_id)
    try:
        if should_cancel():
            raise CancelledError(f"job {job_id} cancelled before start")
        store.mark_running(job_id, worker_id, lease_s)
        requests = [
            wire.decode_request(r) for r in json.loads(row["request"])
        ]
        t0 = time.perf_counter()
        results = []
        for request in requests:
            # Compile is content-addressed through the worker-local
            # cache, so a re-leased job (or a repeat point of a sweep
            # chunk) skips the pipeline; seeded execution then makes
            # re-execution reproduce the original result exactly.
            program = client.compile_request(request)
            results.append(
                client.execute_compiled(request, program, should_cancel=should_cancel)
            )
        counters["execute_seconds"] += time.perf_counter() - t0
        meta, arrays = split_results(results)
        spec = _shm.pack_arrays(arrays)
        if store.complete(
            job_id, worker_id, result_meta=json.dumps(meta), shm_spec=spec
        ):
            counters["jobs_done"] += 1
            counters["requests_done"] += len(results)
        else:
            # Lease lost (we were presumed dead and the job was
            # re-leased): drop our segment, the other execution wins.
            _shm.unlink(spec)
    except CancelledError:
        counters["jobs_cancelled"] += 1
        store.mark_cancelled(job_id, worker_id)
    except Exception as exc:
        counters["jobs_failed"] += 1
        try:
            store.fail(job_id, worker_id, json.dumps(wire.encode_error(exc)))
        except Exception:
            pass


# ---- tickets ------------------------------------------------------------------------


class ClusterTicket:
    """Store-backed ticket: one member of one durable job row.

    Implements the unified :class:`repro.serving.tickets.Ticket`
    protocol by polling the job store, so the handle works from any
    process that can open the store — including a service restarted
    after the submitting process died.
    """

    kind = "job"

    def __init__(
        self,
        service: "ClusterService",
        row_id: str,
        index: int = 0,
        size: int = 1,
    ) -> None:
        self._service = service
        self.row_id = row_id
        self.index = index
        self.size = size
        self.id = row_id if size <= 1 else f"{row_id}#{index}"

    # ---- protocol ------------------------------------------------------------------

    def status(self) -> TicketState:
        return self._service.store.state(self.row_id)

    def done(self) -> bool:
        return self.status().terminal

    def wait(self, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        pause = 0.002
        while True:
            if self.status().terminal:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(pause)
            pause = min(pause * 2.0, 0.05)

    def result(self, timeout: float | None = None) -> ClientResult:
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        pause = 0.002
        while True:
            row = self._service.store.get(self.row_id)
            state = TicketState(row["state"])
            if state is TicketState.DONE:
                encoded = self._service._materialize(row)
                return wire.decode_result(encoded[self.index])
            if state is TicketState.FAILED:
                raise wire.decode_error(json.loads(row["error"] or "{}"))
            if state is TicketState.CANCELLED:
                raise CancelledError(f"ticket {self.id} was cancelled")
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(f"ticket {self.id} not done within {timeout}s")
            time.sleep(pause)
            pause = min(pause * 2.0, 0.05)

    def exception(self, timeout: float | None = None) -> Exception | None:
        try:
            self.result(timeout)
            return None
        except ServiceError as exc:
            if not self.status().terminal:
                raise  # genuine wait timeout
            return exc
        except Exception as exc:
            return exc

    def cancel(self) -> bool:
        """Request cancellation through the store.

        Pending rows cancel immediately; running rows set the flag the
        worker polls at chunk boundaries.  Members of a chunk row vote
        — the chunk aborts only when every member has cancelled (it
        executes as a unit, like an in-process coalesced group).
        """
        state = self.status()
        if state.terminal:
            return False
        self._service.store.request_cancel(
            self.row_id, index=self.index if self.size > 1 else None
        )
        return True

    def to_dict(self) -> dict:
        data = {
            "kind": "job",
            "id": self.id,
            "row_id": self.row_id,
            "index": self.index,
            "size": self.size,
            "state": self.status().value,
        }
        row = self._service.store.get(self.row_id)
        if row["state"] == "done" and row["result"] is not None:
            encoded = json.loads(row["result"])
            data["result"] = encoded[self.index]
        if row["error"]:
            data["error"] = json.loads(row["error"])
        data["device"] = row["device"] or None
        return data


# ---- the service --------------------------------------------------------------------


class ClusterService:
    """Process-based durable serving over a :class:`JobStore`.

    Parameters
    ----------
    client_factory:
        Zero-arg callable building the worker's
        :class:`~repro.client.client.MQSSClient` *inside the worker
        process*.  It must be importable/fork-inheritable; with the
        default ``fork`` start method any closure works.
    store_path:
        SQLite file shared by the front-end, the workers, and any
        later restarted service (durability boundary).
    num_workers:
        Worker processes to keep alive (dead ones are respawned).
    lease_s:
        Heartbeat lease horizon; a worker silent for this long has its
        jobs re-leased.  Keep well above the longest chunk-boundary
        interval of your executions.
    chunk_size:
        Max requests bundled into one durable row by ``submit_many`` /
        ``submit_sweep``; a chunk's stacked result arrays ship through
        one shared-memory segment.
    """

    def __init__(
        self,
        client_factory: Callable[[], "MQSSClient"],
        store_path: str,
        *,
        num_workers: int = 2,
        lease_s: float = 5.0,
        poll_s: float = 0.02,
        chunk_size: int = 8,
        max_attempts: int = 3,
        name: str | None = None,
        start: bool = True,
    ) -> None:
        if num_workers < 1:
            raise ServiceError(f"num_workers must be >= 1, got {num_workers}")
        self.client_factory = client_factory
        self.store = JobStore(store_path)
        self.num_workers = num_workers
        self.lease_s = float(lease_s)
        self.poll_s = float(poll_s)
        self.chunk_size = max(1, int(chunk_size))
        self.max_attempts = int(max_attempts)
        self.name = name or REGISTRY.autoname("cluster")
        self._ctx = multiprocessing.get_context()
        self._stop_event = self._ctx.Event()
        self._processes: list = []
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        self._lock = threading.RLock()
        self._started = False
        self._register_metrics()
        if start:
            self.start()

    # ---- lifecycle -----------------------------------------------------------------

    def start(self) -> "ClusterService":
        """Recover the store, fork the workers, start the monitor."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._stop_event.clear()
            self._monitor_stop.clear()
            self.store.recover()
            # Fork before starting the monitor thread: forking a
            # multi-threaded parent risks inheriting held locks.
            for i in range(self.num_workers):
                self._spawn(i)
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name=f"{self.name}-monitor",
                daemon=True,
            )
            self._monitor.start()
        return self

    def _spawn(self, slot: int) -> None:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                self.store.path,
                self.client_factory,
                f"{self.name}-w{slot}",
                self.lease_s,
                self.poll_s,
                self._stop_event,
            ),
            name=f"{self.name}-w{slot}",
            daemon=True,
        )
        proc.start()
        if len(self._processes) <= slot:
            self._processes.extend([None] * (slot + 1 - len(self._processes)))
        self._processes[slot] = proc

    def stop(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop workers and the monitor; the store stays on disk."""
        with self._lock:
            if not self._started:
                return
            self._started = False
            self._stop_event.set()
            self._monitor_stop.set()
            monitor, self._monitor = self._monitor, None
            processes = [p for p in self._processes if p is not None]
            self._processes = []
        if monitor is not None:
            monitor.join(timeout=timeout)
        deadline = time.monotonic() + timeout
        for proc in processes:
            if wait:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        # One final assembly pass so nothing durable is left pinned to
        # shared memory by our own exit.
        self._assemble_pending()

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---- submission ----------------------------------------------------------------

    def submit(self, request: JobRequest, **_compat) -> ClusterTicket:
        """Admit one request as one durable row; ticket immediately."""
        return self._put_chunk([request])[0]

    # Shared admission core alias: lets ``Executable.run_async`` and
    # the unified clients treat cluster and in-process services alike.
    def _admit_request(
        self, request: JobRequest, *, block: bool = True, timeout=None
    ) -> ClusterTicket:
        return self.submit(request)

    def submit_many(
        self, requests: Iterable[JobRequest], *, block: bool = True
    ) -> list[ClusterTicket]:
        """Admit a batch, chunked into durable rows of ``chunk_size``.

        Each chunk executes on one worker as a unit and its stacked
        result arrays return through one shared-memory segment.
        """
        requests = list(requests)
        tickets: list[ClusterTicket] = []
        for i in range(0, len(requests), self.chunk_size):
            tickets.extend(self._put_chunk(requests[i : i + self.chunk_size]))
        return tickets

    def run(
        self, requests: Iterable[JobRequest], *, timeout: float | None = None
    ) -> list[ClusterTicket]:
        """Submit a batch and wait for all of it (tickets in order)."""
        tickets = self.submit_many(requests)
        for t in tickets:
            t.wait(timeout)
        return tickets

    def submit_sweep(self, sweep: "SweepRequest", *, block: bool = True):
        """Admit a parameter sweep; points chunk onto the workers.

        Returns a :class:`~repro.serving.sweeps.SweepTicket` over
        per-point cluster tickets, scan-ordered.
        """
        from repro.serving.sweeps import SweepTicket

        tickets = self.submit_many(sweep.expand(), block=block)
        return SweepTicket(sweep, tickets)

    def _put_chunk(self, requests: list[JobRequest]) -> list[ClusterTicket]:
        if not requests:
            return []
        row_id = new_ticket_id()
        blob = json.dumps([wire.encode_request(r) for r in requests]).encode()
        self.store.put(
            row_id,
            blob,
            kind="chunk" if len(requests) > 1 else "job",
            device=requests[0].device,
            priority=max(r.priority for r in requests),
            size=len(requests),
            max_attempts=self.max_attempts,
        )
        return [
            ClusterTicket(self, row_id, index=i, size=len(requests))
            for i in range(len(requests))
        ]

    # ---- ticket lookup (restart / HTTP surface) ------------------------------------

    def ticket(self, ticket_id: str) -> ClusterTicket:
        """Re-attach to a durable ticket by id (survives restarts)."""
        row_id, _, index = ticket_id.partition("#")
        row = self.store.get(row_id)  # raises ServiceError when unknown
        return ClusterTicket(
            self,
            row_id,
            index=int(index) if index else 0,
            size=int(row["size"]),
        )

    def backlog(self) -> list[str]:
        """Ids of rows still unfinished (what a restart will drain)."""
        return [
            row["id"]
            for row in self.store.jobs(("pending", "dispatched", "running"))
        ]

    @property
    def pending(self) -> int:
        return self.store.unfinished()

    def flush(self, timeout: float | None = None) -> bool:
        """Block until the backlog is drained and results assembled."""
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        pause = 0.005
        while True:
            if self.store.unfinished() == 0 and not self.store.pending_assembly():
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(pause)
            pause = min(pause * 2.0, 0.05)

    # ---- monitor -------------------------------------------------------------------

    def _monitor_loop(self) -> None:
        tick = min(max(self.lease_s / 3.0, 0.02), 0.25)
        while not self._monitor_stop.wait(tick):
            try:
                self.store.reap_expired()
                self._assemble_pending()
                self._respawn_dead()
            except Exception:
                # The monitor must survive transient store contention.
                pass

    def _respawn_dead(self) -> None:
        with self._lock:
            if not self._started:
                return
            for slot, proc in enumerate(self._processes):
                if proc is not None and not proc.is_alive():
                    self._spawn(slot)

    def _assemble_pending(self) -> int:
        """Move finished results from shared memory into durable blobs."""
        n = 0
        for row in self.store.pending_assembly():
            if self._assemble_row(row):
                n += 1
        return n

    def _assemble_row(self, row: dict) -> bool:
        spec = json.loads(row["shm"])
        meta = json.loads(row["result_meta"])
        try:
            arrays = _shm.load_arrays(spec)
        except FileNotFoundError:
            # Segment died with its creator before assembly: recover()
            # on the next start re-executes the row.
            return False
        blob = json.dumps(join_results(meta, arrays)).encode()
        if self.store.attach_result(row["id"], blob, expected_shm=row["shm"]):
            # We won the assembly claim, so the unlink is ours.
            _shm.unlink(spec)
            return True
        return False

    def _materialize(self, row: dict) -> list[dict]:
        """The encoded result list of a done row, assembling if needed."""
        if row["result"] is not None:
            return json.loads(row["result"])
        self._assemble_row(row)
        row = self.store.get(row["id"])
        if row["result"] is None:
            raise ServiceError(
                f"job {row['id']} finished but its result is not "
                "recoverable (shared memory lost before assembly); "
                "restart the service to re-execute it"
            )
        return json.loads(row["result"])

    # ---- metrics -------------------------------------------------------------------

    def _register_metrics(self) -> None:
        """Publish pool-wide series on the global obs registry.

        Worker processes cannot touch the parent's registry, so their
        counter snapshots flow through the store's metrics channel and
        are re-emitted here with a ``worker`` label — one exposition
        reflects the whole pool.
        """
        ref = weakref.ref(self)
        service = self.name

        def collect():
            obj = ref()
            if obj is None:
                return None
            samples = []
            try:
                by_state = obj.store.counts_by_state()
                worker_metrics = obj.store.worker_metrics()
            except Exception:
                return []
            for state, count in sorted(by_state.items()):
                samples.append(
                    (
                        "repro_cluster_jobs",
                        "gauge",
                        {"service": service, "state": state},
                        float(count),
                    )
                )
            for worker, counters in sorted(worker_metrics.items()):
                for key, value in sorted(counters.items()):
                    if key == "pid":
                        continue
                    samples.append(
                        (
                            "repro_cluster_worker_events_total",
                            "counter",
                            {
                                "service": service,
                                "worker": worker,
                                "name": key,
                            },
                            float(value),
                        )
                    )
            samples.append(
                (
                    "repro_cluster_workers",
                    "gauge",
                    {"service": service},
                    float(
                        sum(1 for p in obj._processes if p is not None and p.is_alive())
                    ),
                )
            )
            return samples

        collect._obs_alive = lambda: ref() is not None
        REGISTRY.register_collector(collect)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterService({self.name!r}, workers={self.num_workers}, "
            f"store={self.store.path!r})"
        )
