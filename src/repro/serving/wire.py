"""Wire codecs: JobRequest / ClientResult / errors <-> plain JSON.

The HTTP front-end (:mod:`repro.serving.http`) and the ticket
``to_dict``/``from_dict`` surface share one serialization so results
are *bit-identical* across transports: every scalar field is plain
JSON (Python's ``repr``-based float serialization round-trips
exactly), and only the program object — which may be any adapter
input (PythonicCircuit, PulseSchedule, QASM3 text, ...) — rides as a
base64 pickle blob.  Errors travel as ``{"type", "message"}`` and are
rebuilt as the matching :mod:`repro.errors` class on the far side, so
``ticket.result()`` raises the same typed exception everywhere.

The pickle blob is a trust boundary: this wire format is meant for
the local/HPC deployments the paper targets (service and clients under
one administrative domain), not for hostile networks.
"""

from __future__ import annotations

import base64
import pickle
from typing import Any

from repro import errors as _errors
from repro.client.client import ClientResult, JobRequest
from repro.errors import ServiceError

_WIRE_VERSION = 1


def pack_blob(obj: Any) -> str:
    """Base64-pickle *obj* (the program / metadata escape hatch)."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_blob(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


# ---- requests ------------------------------------------------------------------------


def encode_request(request: JobRequest) -> dict:
    """A JSON-safe form of *request* (program/metadata as blobs)."""
    return {
        "v": _WIRE_VERSION,
        "program": pack_blob(request.program),
        "device": request.device,
        "shots": request.shots,
        "adapter": request.adapter,
        "priority": request.priority,
        "scalar_args": dict(request.scalar_args or {}),
        "seed": request.seed,
        # Metadata may carry non-JSON values (DecoherenceSpec tuples
        # for noise sweeps), so the whole dict rides as a blob too.
        "metadata": pack_blob(dict(request.metadata or {})),
    }


def decode_request(data: dict) -> JobRequest:
    return JobRequest(
        program=unpack_blob(data["program"]),
        device=data["device"],
        shots=int(data.get("shots", 1024)),
        adapter=data.get("adapter"),
        priority=int(data.get("priority", 0)),
        scalar_args={
            str(k): float(v)
            for k, v in (data.get("scalar_args") or {}).items()
        },
        seed=data.get("seed"),
        metadata=unpack_blob(data["metadata"]) if data.get("metadata") else {},
    )


# ---- results -------------------------------------------------------------------------


def encode_result(result: ClientResult) -> dict:
    """A pure-JSON form of *result*; floats round-trip exactly."""
    return {
        "v": _WIRE_VERSION,
        "device": result.device,
        "counts": dict(result.counts),
        "probabilities": dict(result.probabilities),
        "shots": result.shots,
        "duration_samples": result.duration_samples,
        "timings_s": {k: float(v) for k, v in result.timings_s.items()},
        "job_id": result.job_id,
        "remote": result.remote,
        "qir_size_bytes": result.qir_size_bytes,
    }


def decode_result(data: dict) -> ClientResult:
    return ClientResult(
        device=data["device"],
        counts={str(k): int(v) for k, v in data["counts"].items()},
        probabilities={
            str(k): float(v) for k, v in data["probabilities"].items()
        },
        shots=int(data["shots"]),
        duration_samples=int(data["duration_samples"]),
        timings_s={
            str(k): float(v) for k, v in data.get("timings_s", {}).items()
        },
        job_id=int(data["job_id"]),
        remote=bool(data.get("remote", False)),
        qir_size_bytes=int(data.get("qir_size_bytes", 0)),
    )


# ---- errors --------------------------------------------------------------------------


def encode_error(exc: BaseException) -> dict:
    return {"type": type(exc).__name__, "message": str(exc)}


def decode_error(data: dict) -> Exception:
    """Rebuild a typed exception; unknown types degrade to ServiceError."""
    name = data.get("type", "ServiceError")
    message = data.get("message", "")
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, Exception):
        return cls(message)
    return ServiceError(f"{name}: {message}")
