"""The serving layer: an asynchronous multi-device execution service.

The paper's Fig. 2 places the MQSS client and second-level scheduler
between many user frontends and heterogeneous QDMI devices, and its
calibration use case (§2.1) assumes HPC centers operating quantum
services under sustained multi-tenant demand. This package turns the
synchronous client stack into that service:

* :mod:`repro.serving.service` — :class:`PulseService`: accepts
  :class:`~repro.client.client.JobRequest`\\ s, returns future-like
  :class:`JobTicket`\\ s, enforces bounded admission (backpressure);
* :mod:`repro.serving.workers` — per-device worker pools so
  independent devices execute in parallel while each device's queue
  drains FIFO-within-priority;
* :mod:`repro.serving.cache` — a content-addressed
  :class:`CompileCache` keyed on payload x device calibration state,
  letting repeat programs skip the adapter+JIT pipeline;
* :mod:`repro.serving.routing` — :class:`CapabilityRouter`: failover
  and load-spill onto capability-equivalent devices;
* :mod:`repro.serving.batching` — :class:`RequestBatcher`: coalesces
  identical-program requests into one execution and splits the
  sampled shots back per request;
* :mod:`repro.serving.metrics` — :class:`ServingMetrics`: thread-safe
  counters + per-stage latency histograms with a Prometheus-style
  text exposition;
* :mod:`repro.serving.sweeps` — :class:`SweepRequest` /
  :class:`SweepTicket`: one request fanning out into a batch of
  parameterized schedules, evaluated through the simulator's batched
  propagator engine with a shared propagator cache.

Durable multi-process serving stacks three more tiers on top:

* :mod:`repro.serving.tickets` — the unified :class:`Ticket` protocol
  every transport's handle implements (``status``/``result``/
  ``cancel``/``to_dict``) plus :func:`ticket_from_dict`;
* :mod:`repro.serving.store` — :class:`JobStore`: a SQLite (WAL) job
  store holding every ticket state transition; tickets survive
  restarts and crashed workers' leases expire back onto the queue;
* :mod:`repro.serving.cluster` — :class:`ClusterService`: a process
  worker pool leasing jobs from the store and shipping stacked result
  arrays back through ``multiprocessing.shared_memory``;
* :mod:`repro.serving.http` — :class:`HttpFrontend` /
  :class:`HttpServiceClient`: a stdlib HTTP tier over the same
  surface;
* :mod:`repro.serving.connect` — :func:`connect`: one
  :class:`ServiceClient` over all three transports, bit-identical
  results in-process and over the wire.
"""

from repro.serving.batching import RequestBatcher
from repro.serving.cache import CompileCache
from repro.serving.cluster import ClusterService, ClusterTicket
from repro.serving.connect import InProcessClient, ServiceClient, connect
from repro.serving.metrics import LatencyHistogram, ServingMetrics
from repro.serving.routing import CapabilityRouter
from repro.serving.service import JobTicket, PulseService
from repro.serving.store import JobStore
from repro.serving.sweeps import SweepRequest, SweepTicket
from repro.serving.tickets import Ticket, TicketState, ticket_from_dict
from repro.serving.workers import DevicePool, ServiceEntry

__all__ = [
    "PulseService",
    "JobTicket",
    "Ticket",
    "TicketState",
    "ticket_from_dict",
    "connect",
    "ServiceClient",
    "InProcessClient",
    "ClusterService",
    "ClusterTicket",
    "JobStore",
    "SweepRequest",
    "SweepTicket",
    "DevicePool",
    "ServiceEntry",
    "CompileCache",
    "CapabilityRouter",
    "RequestBatcher",
    "ServingMetrics",
    "LatencyHistogram",
]


def serve_http(service, host: str = "127.0.0.1", port: int = 0):
    """Start an HTTP front-end over *service* (lazy import wrapper)."""
    from repro.serving.http import serve_http as _serve

    return _serve(service, host, port)
