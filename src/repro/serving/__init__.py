"""The serving layer: an asynchronous multi-device execution service.

The paper's Fig. 2 places the MQSS client and second-level scheduler
between many user frontends and heterogeneous QDMI devices, and its
calibration use case (§2.1) assumes HPC centers operating quantum
services under sustained multi-tenant demand. This package turns the
synchronous client stack into that service:

* :mod:`repro.serving.service` — :class:`PulseService`: accepts
  :class:`~repro.client.client.JobRequest`\\ s, returns future-like
  :class:`JobTicket`\\ s, enforces bounded admission (backpressure);
* :mod:`repro.serving.workers` — per-device worker pools so
  independent devices execute in parallel while each device's queue
  drains FIFO-within-priority;
* :mod:`repro.serving.cache` — a content-addressed
  :class:`CompileCache` keyed on payload x device calibration state,
  letting repeat programs skip the adapter+JIT pipeline;
* :mod:`repro.serving.routing` — :class:`CapabilityRouter`: failover
  and load-spill onto capability-equivalent devices;
* :mod:`repro.serving.batching` — :class:`RequestBatcher`: coalesces
  identical-program requests into one execution and splits the
  sampled shots back per request;
* :mod:`repro.serving.metrics` — :class:`ServingMetrics`: thread-safe
  counters + per-stage latency histograms with a Prometheus-style
  text exposition;
* :mod:`repro.serving.sweeps` — :class:`SweepRequest` /
  :class:`SweepTicket`: one request fanning out into a batch of
  parameterized schedules, evaluated through the simulator's batched
  propagator engine with a shared propagator cache.
"""

from repro.serving.batching import RequestBatcher
from repro.serving.cache import CompileCache
from repro.serving.metrics import LatencyHistogram, ServingMetrics
from repro.serving.routing import CapabilityRouter
from repro.serving.service import JobTicket, PulseService, TicketState
from repro.serving.sweeps import SweepRequest, SweepTicket
from repro.serving.workers import DevicePool, ServiceEntry

__all__ = [
    "PulseService",
    "JobTicket",
    "TicketState",
    "SweepRequest",
    "SweepTicket",
    "DevicePool",
    "ServiceEntry",
    "CompileCache",
    "CapabilityRouter",
    "RequestBatcher",
    "ServingMetrics",
    "LatencyHistogram",
]
