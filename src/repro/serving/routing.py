"""Capability-based routing and failover for the serving layer.

The driver's registry (paper Fig. 2) holds heterogeneous QDMI devices;
when the requested device fails mid-job or its queue is saturated, a
capable stand-in can often serve the request instead — the same
technology, at least as many sites, pulse access no weaker, and an
executable program format in common. :class:`CapabilityRouter` ranks
those equivalents per request; :class:`PulseService` walks the list on
failure (failover) and on admission (load spill).
"""

from __future__ import annotations

from repro.client.client import JobRequest
from repro.errors import RoutingError
from repro.qdmi.driver import QDMIDriver
from repro.qdmi.properties import DeviceProperty, ProgramFormat, PulseSupportLevel

#: Formats the client's execution paths can route (local / remote).
_EXECUTABLE_FORMATS = frozenset(
    {ProgramFormat.PULSE_SCHEDULE, ProgramFormat.QIR_PULSE}
)

_PULSE_RANK = {
    PulseSupportLevel.NONE: 0,
    PulseSupportLevel.SITE: 1,
    PulseSupportLevel.PORT: 2,
}


class CapabilityRouter:
    """Ranks capability-equivalent devices for each request.

    Parameters
    ----------
    driver:
        The device registry to route over.
    allow_failover:
        When false, every request is pinned to its requested device.
    max_candidates:
        Upper bound on the candidate list length (primary included).
    """

    def __init__(
        self,
        driver: QDMIDriver,
        *,
        allow_failover: bool = True,
        max_candidates: int = 3,
    ) -> None:
        if max_candidates < 1:
            raise RoutingError(
                f"max_candidates must be >= 1, got {max_candidates}"
            )
        self.driver = driver
        self.allow_failover = allow_failover
        self.max_candidates = max_candidates

    # ---- capability model ----------------------------------------------------------

    def _profile(self, name: str) -> tuple[str, int, int, frozenset] | None:
        """(technology, sites, pulse rank, formats) or None if unqueryable."""
        device = self.driver.get_device(name)
        try:
            technology = device.query_device_property(DeviceProperty.TECHNOLOGY)
            sites = int(device.query_device_property(DeviceProperty.NUM_SITES))
            formats = frozenset(device.supported_formats())
        except Exception:
            return None  # query-only devices (databases) are not executable
        return (technology, sites, _PULSE_RANK[device.pulse_support_level()], formats)

    def equivalent(self, primary: str, candidate: str) -> bool:
        """Whether *candidate* can stand in for *primary*."""
        base = self._profile(primary)
        other = self._profile(candidate)
        if base is None or other is None:
            return False
        return (
            other[0] == base[0]
            and other[1] >= base[1]
            and other[2] >= base[2]
            and bool(other[3] & _EXECUTABLE_FORMATS)
        )

    def candidates(self, request: JobRequest) -> list[str]:
        """Candidate device names for *request*, requested device first.

        Raises :class:`~repro.errors.QDMIError` when the requested
        device is unknown — routing never invents a primary.
        """
        primary = request.device
        self.driver.get_device(primary)  # existence check, raises QDMIError
        if not self.allow_failover:
            return [primary]
        out = [primary]
        for name in self.driver.device_names():
            if name != primary and self.equivalent(primary, name):
                out.append(name)
            if len(out) >= self.max_candidates:
                break
        return out
