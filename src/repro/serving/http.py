"""A thin HTTP front-end over the unified serving surface.

Stdlib-only (:mod:`http.server` + :mod:`urllib.request`) so the wire
tier adds no dependency.  The front-end wraps any connected
:class:`~repro.serving.connect.ServiceClient` — in-process thread
service or durable cluster alike — and speaks the JSON codecs of
:mod:`repro.serving.wire`, so results are bit-identical to in-process
submission.

Endpoints::

    POST /v1/jobs               encoded JobRequest -> {"id", "state"}
    POST /v1/jobs/batch         {"requests": [...]} -> {"ids": [...]}
    GET  /v1/jobs/<id>          ticket snapshot {"id", "state", ...}
    GET  /v1/jobs/<id>/result   long-poll (?timeout=s); 200 when
                                terminal, 202 while in flight
    POST /v1/jobs/<id>/cancel   -> {"cancelled": bool}
    GET  /v1/devices            -> {"devices": [...]}
    GET  /metrics               obs registry text exposition
    GET  /healthz               -> {"ok": true}

The matching client is :class:`HttpServiceClient` — construct it
directly or via ``repro.serving.connect("http://host:port")`` — whose
tickets (:class:`HttpTicket`) implement the same
:class:`~repro.serving.tickets.Ticket` protocol as every other
transport.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterable

from repro.client.client import ClientResult, JobRequest
from repro.errors import CancelledError, ServiceError
from repro.serving import wire
from repro.serving.connect import ServiceClient, connect
from repro.serving.tickets import TicketState

#: Cap on one server-side long-poll block; clients re-poll past it.
_MAX_POLL_S = 30.0


# ---- server --------------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`HttpFrontend`."""

    protocol_version = "HTTP/1.1"

    # Silence per-request stderr logging (tests and benches hit this
    # endpoint thousands of times).
    def log_message(self, fmt: str, *args: Any) -> None:
        pass

    @property
    def frontend(self) -> "HttpFrontend":
        return self.server.frontend  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed JSON body: {exc}") from exc

    def _dispatch(self, method: str) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = urllib.parse.parse_qs(parsed.query)
        try:
            status, payload = self.frontend.route(
                method, parts, query, self._read_json if method == "POST" else None
            )
        except ServiceError as exc:
            status_code = 404 if "unknown" in str(exc) else 400
            self._send_json(status_code, {"error": wire.encode_error(exc)})
            return
        except Exception as exc:  # pragma: no cover - defensive boundary
            self._send_json(500, {"error": wire.encode_error(exc)})
            return
        if isinstance(payload, str):
            self._send_text(status, payload)
        else:
            self._send_json(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class HttpFrontend:
    """Serve a connected client (or raw service) over HTTP.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  The server runs threaded, so a long-polling result
    request does not block submissions.
    """

    def __init__(self, service: Any, host: str = "127.0.0.1", port: int = 0) -> None:
        self.client = connect(service)
        self._host = host
        self._port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ---- lifecycle -----------------------------------------------------------------

    def start(self) -> "HttpFrontend":
        if self._server is not None:
            return self
        server = ThreadingHTTPServer((self._host, self._port), _Handler)
        server.daemon_threads = True
        server.frontend = self  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-http-frontend",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def address(self) -> str:
        if self._server is None:
            raise ServiceError("front-end not started")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def __enter__(self) -> "HttpFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---- routing -------------------------------------------------------------------

    def route(self, method, parts, query, read_body):
        """(status, payload) for one request; raises ServiceError on 4xx."""
        if method == "GET" and parts == ["healthz"]:
            return 200, {"ok": True}
        if method == "GET" and parts == ["metrics"]:
            return 200, self.client.metrics_text()
        if method == "GET" and parts == ["v1", "devices"]:
            return 200, {"devices": self.client.devices()}
        if parts[:2] == ["v1", "jobs"]:
            if method == "POST" and len(parts) == 2:
                request = wire.decode_request(read_body())
                ticket = self.client.submit(request)
                return 200, {"id": ticket.id, "state": ticket.status().value}
            if method == "POST" and parts[2:] == ["batch"]:
                requests = [
                    wire.decode_request(r)
                    for r in read_body().get("requests", [])
                ]
                tickets = self.client.submit_many(requests)
                return 200, {"ids": [t.id for t in tickets]}
            if len(parts) >= 3:
                ticket_id = urllib.parse.unquote(parts[2])
                if method == "GET" and len(parts) == 3:
                    return 200, self._snapshot(ticket_id)
                if method == "GET" and parts[3:] == ["result"]:
                    return self._result(ticket_id, query)
                if method == "POST" and parts[3:] == ["cancel"]:
                    return 200, {
                        "cancelled": self.client.cancel(ticket_id)
                    }
        raise ServiceError(f"unknown endpoint {method} /{'/'.join(parts)}")

    def _snapshot(self, ticket_id: str) -> dict:
        ticket = self.client.ticket(ticket_id)
        data = ticket.to_dict()
        # Snapshots answer status polls; the request blob (a pickle
        # of arbitrary size) stays server-side.
        data.pop("request", None)
        return data

    def _result(self, ticket_id: str, query) -> tuple[int, dict]:
        ticket = self.client.ticket(ticket_id)
        timeout = float(query.get("timeout", ["0"])[0])
        ticket.wait(min(max(timeout, 0.0), _MAX_POLL_S))
        state = ticket.status()
        if not state.terminal:
            return 202, {"id": ticket_id, "state": state.value}
        if state is TicketState.DONE:
            return 200, {
                "id": ticket_id,
                "state": state.value,
                "result": wire.encode_result(ticket.result(0)),
            }
        try:
            ticket.result(0)
        except Exception as exc:
            return 200, {
                "id": ticket_id,
                "state": state.value,
                "error": wire.encode_error(exc),
            }
        # result() unexpectedly succeeded (state raced to DONE).
        return 200, {
            "id": ticket_id,
            "state": TicketState.DONE.value,
            "result": wire.encode_result(ticket.result(0)),
        }


def serve_http(service: Any, host: str = "127.0.0.1", port: int = 0) -> HttpFrontend:
    """Start (and return) an :class:`HttpFrontend` over *service*."""
    return HttpFrontend(service, host, port).start()


# ---- client --------------------------------------------------------------------------


class HttpTicket:
    """Wire-level ticket: the unified protocol over HTTP polling."""

    kind = "job"

    def __init__(self, client: "HttpServiceClient", ticket_id: str) -> None:
        self._client = client
        self.id = ticket_id

    def status(self) -> TicketState:
        return TicketState(self._client._get_json(
            f"/v1/jobs/{urllib.parse.quote(self.id)}"
        )["state"])

    def done(self) -> bool:
        return self.status().terminal

    def wait(self, timeout: float | None = None) -> bool:
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        while True:
            budget = (
                _MAX_POLL_S
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            status, payload = self._client._poll_result(self.id, budget)
            if status == 200:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False

    def result(self, timeout: float | None = None) -> ClientResult:
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        while True:
            budget = (
                _MAX_POLL_S
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            status, payload = self._client._poll_result(self.id, budget)
            if status == 200:
                if "result" in payload:
                    return wire.decode_result(payload["result"])
                error = wire.decode_error(payload.get("error") or {})
                if payload.get("state") == "cancelled" and not isinstance(
                    error, CancelledError
                ):
                    error = CancelledError(f"ticket {self.id} was cancelled")
                raise error
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(f"ticket {self.id} not done within {timeout}s")

    def cancel(self) -> bool:
        payload = self._client._post_json(
            f"/v1/jobs/{urllib.parse.quote(self.id)}/cancel", {}
        )
        return bool(payload.get("cancelled"))

    def to_dict(self) -> dict:
        return self._client._get_json(f"/v1/jobs/{urllib.parse.quote(self.id)}")


class HttpServiceClient(ServiceClient):
    """The unified client surface over an HTTP front-end address."""

    def __init__(self, base_url: str, *, timeout_s: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ---- transport -----------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, Any]:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                raw = resp.read()
                ctype = resp.headers.get("Content-Type", "")
                status = resp.status
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                raise ServiceError(
                    f"HTTP {exc.code} from {path}: {raw[:200]!r}"
                ) from exc
            raise wire.decode_error(
                payload.get("error") or {"message": str(exc)}
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach serving front-end at {self.base_url}: "
                f"{exc.reason}"
            ) from exc
        if ctype.startswith("application/json"):
            return status, json.loads(raw)
        return status, raw.decode()

    def _get_json(self, path: str) -> dict:
        return self._request("GET", path)[1]

    def _post_json(self, path: str, body: dict) -> dict:
        return self._request("POST", path, body)[1]

    def _poll_result(self, ticket_id: str, budget_s: float) -> tuple[int, dict]:
        poll = min(max(budget_s, 0.0), _MAX_POLL_S)
        return self._request(
            "GET",
            f"/v1/jobs/{urllib.parse.quote(ticket_id)}/result"
            f"?timeout={poll:.3f}",
        )

    # ---- unified surface -----------------------------------------------------------

    def submit(self, request: JobRequest) -> HttpTicket:
        payload = self._post_json("/v1/jobs", wire.encode_request(request))
        return HttpTicket(self, payload["id"])

    def submit_many(self, requests: Iterable[JobRequest]) -> list[HttpTicket]:
        payload = self._post_json(
            "/v1/jobs/batch",
            {"requests": [wire.encode_request(r) for r in requests]},
        )
        return [HttpTicket(self, tid) for tid in payload["ids"]]

    def submit_sweep(self, sweep: Any):
        """Expand the sweep client-side and submit the points.

        Sweep builders are arbitrary callables, so expansion happens
        here rather than on the wire; the aggregated handle is the
        same :class:`~repro.serving.sweeps.SweepTicket` the other
        transports return.
        """
        from repro.serving.sweeps import SweepTicket

        tickets = self.submit_many(sweep.expand())
        return SweepTicket(sweep, tickets)

    def ticket(self, ticket_id: str) -> HttpTicket:
        return HttpTicket(self, ticket_id)

    def devices(self) -> list[str]:
        return list(self._get_json("/v1/devices")["devices"])

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")[1]

    def healthy(self) -> bool:
        try:
            return bool(self._get_json("/healthz").get("ok"))
        except ServiceError:
            return False
