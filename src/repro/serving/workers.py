"""Per-device worker pools: queue entries + execution threads.

Each registered device gets its own :class:`DevicePool` — a priority
queue (FIFO within equal priority) drained by one or more worker
threads. Independent devices therefore execute concurrently, while a
single device's hardware access stays serialized through the pool's
``exec_lock`` (the simulated QPUs, like real ones, run one program at
a time). With more than one worker per device, compilation of the next
job overlaps with execution of the current one.
"""

from __future__ import annotations

import heapq
import threading
from typing import TYPE_CHECKING, Any

from repro.client.client import JobRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.service import JobTicket, PulseService


class ServiceEntry:
    """One admitted request, queued on (or moving between) device pools."""

    __slots__ = (
        "request",
        "ticket",
        "payload",
        "fingerprint",
        "coalesce_key",
        "arrival",
        "enqueued_at",
        "candidates",
        "attempt",
    )

    def __init__(
        self,
        request: JobRequest,
        ticket: "JobTicket",
        *,
        arrival: int,
        enqueued_at: float,
        candidates: list[str],
    ) -> None:
        self.request = request
        self.ticket = ticket
        self.payload: Any = None
        self.fingerprint: str = ""
        self.coalesce_key: str = ""
        self.arrival = arrival
        self.enqueued_at = enqueued_at
        self.candidates = candidates
        self.attempt = 0

    @property
    def device(self) -> str:
        """The device this entry is currently routed to."""
        return self.candidates[self.attempt]

    def sort_key(self) -> tuple[int, int]:
        return (-self.request.priority, self.arrival)

    def __lt__(self, other: "ServiceEntry") -> bool:
        return self.sort_key() < other.sort_key()


class DevicePool:
    """Queue + worker threads for one device."""

    def __init__(
        self,
        service: "PulseService",
        device_name: str,
        *,
        num_workers: int = 1,
        max_pending: int | None = None,
    ) -> None:
        self.service = service
        self.device_name = device_name
        self.num_workers = max(1, num_workers)
        self.max_pending = max_pending
        #: Serializes hardware access; compile/split work stays outside.
        self.exec_lock = threading.Lock()
        self._entries: list[ServiceEntry] = []
        self._cond = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._started = False

    # ---- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._started:
                return
            self._started = True
            self._stopping = False
        for i in range(self.num_workers):
            t = threading.Thread(
                target=self._run,
                name=f"serve-{self.device_name}-{i}",
                daemon=True,
            )
            t.start()
            self._threads.append(t)

    def stop(self, wait: bool = True) -> None:
        """Ask workers to exit after draining the queue."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if wait:
            for t in self._threads:
                t.join()
        self._threads.clear()
        with self._cond:
            self._started = False

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._entries)

    # ---- queue ---------------------------------------------------------------------

    def offer(
        self,
        entry: ServiceEntry,
        *,
        force: bool = False,
        block: bool = False,
        timeout: float | None = None,
    ) -> bool:
        """Queue *entry*; False when full (unless *force* or *block*).

        Also False once the pool has stopped and no worker is left to
        drain the queue — accepting then would strand the entry.
        """
        with self._cond:
            if self._stopping and not any(t.is_alive() for t in self._threads):
                return False
            if not force and self.max_pending is not None:
                if block:
                    ok = self._cond.wait_for(
                        lambda: len(self._entries) < self.max_pending
                        or self._stopping,
                        timeout,
                    )
                    if not ok or self._stopping:
                        return False
                elif len(self._entries) >= self.max_pending:
                    return False
            heapq.heappush(self._entries, entry)
            self._cond.notify_all()
            return True

    def purge(self, predicate) -> list[ServiceEntry]:
        """Remove and return still-queued entries matching *predicate*.

        Used by ticket cancellation: a cancelled entry that has not
        been popped by a worker yet is dropped here, so it never
        executes. Entries already popped are beyond the queue's reach
        (the cooperative cancel flag covers them).
        """
        with self._cond:
            keep: list[ServiceEntry] = []
            removed: list[ServiceEntry] = []
            for entry in self._entries:
                (removed if predicate(entry) else keep).append(entry)
            if removed:
                self._entries[:] = keep
                heapq.heapify(self._entries)
                self._cond.notify_all()  # queue space freed
            return removed

    def _pop_group_locked(self) -> list[ServiceEntry]:
        """Head entry + any coalescable mates currently queued."""
        head = heapq.heappop(self._entries)
        group = [head]
        batcher = self.service.batcher
        if batcher.enabled and self._entries:
            mates: list[ServiceEntry] = []
            rest: list[ServiceEntry] = []
            for entry in self._entries:
                if (
                    entry.coalesce_key == head.coalesce_key
                    and len(group) + len(mates) < batcher.max_batch
                ):
                    mates.append(entry)
                else:
                    rest.append(entry)
            if mates:
                self._entries[:] = rest
                heapq.heapify(self._entries)
                group.extend(sorted(mates, key=ServiceEntry.sort_key))
        return group

    # ---- worker loop ---------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._entries and not self._stopping:
                    self._cond.wait()
                if not self._entries and self._stopping:
                    return
                group = self._pop_group_locked()
                self._cond.notify_all()  # queue space freed; unblock offers
            self.service._execute_group(self, group)
