"""Content-addressed compilation cache for the serving layer.

Repeat programs dominate sustained service traffic (calibration
sweeps, variational loops, benchmark suites re-run per tenant), yet
the synchronous client recompiles every submission. This cache keys
compiled programs by :meth:`JITCompiler.cache_key` — a content hash of
the payload, its bound scalar arguments, and the target device's
calibration state — so a warm request skips the adapter+compile
pipeline entirely, and a recalibrated device (new believed
frequencies) naturally misses instead of serving stale pulses.

Unlike the compiler's internal memo dict, this cache is shared across
worker threads, bounded (LRU eviction), and instrumented.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Mapping

from repro.compiler.jit import CompiledProgram, JITCompiler
from repro.obs.metrics import REGISTRY, CacheStats
from repro.obs.tracing import span


class CompileCache:
    """Bounded, thread-safe, content-addressed compile cache.

    ``stats`` is a :class:`~repro.obs.CacheStats`: index it like the
    historical dict (``cache.stats["hits"]``) or call it
    (``cache.stats()``) for the uniform shape shared with
    :class:`~repro.sim.evolve.PropagatorCache` and
    :class:`~repro.compiler.jit.JITCompiler`. Every instance
    self-registers on the global obs registry.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least-recently-used program is evicted when
        a new one would exceed it.
    """

    def __init__(self, *, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, CompiledProgram] = OrderedDict()
        self._lock = threading.RLock()
        # Cold compiles are serialized: the MLIR context and pass
        # pipeline are shared mutable state not audited for concurrent
        # use, and cold-path latency is dominated by execution anyway.
        self._compile_lock = threading.Lock()
        self.stats = CacheStats(
            self.__len__,
            lambda: self.max_entries,
            hits=0,
            misses=0,
            evictions=0,
        )
        REGISTRY.register_cache(
            REGISTRY.autoname("compile"), self, kind="compile"
        )

    # ---- core API ------------------------------------------------------------------

    def lookup(self, key: str) -> CompiledProgram | None:
        """The cached program for *key*, marked as a cache hit; None on miss."""
        with span("cache.lookup", cache="compile") as sp:
            with self._lock:
                program = self._entries.get(key)
                if program is None:
                    self.stats["misses"] += 1
                    sp.annotate(hit=False)
                    return None
                self._entries.move_to_end(key)
                self.stats["hits"] += 1
            sp.annotate(hit=True)
        return replace(program, cache_hit=True, metadata=dict(program.metadata))

    def store(self, key: str, program: CompiledProgram) -> None:
        """Insert *program* under *key*, evicting LRU entries as needed."""
        with self._lock:
            self._entries[key] = program
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats["evictions"] += 1

    def get_or_compile(
        self,
        compiler: JITCompiler,
        payload: Any,
        device: Any,
        *,
        scalar_args: Mapping[str, float] | None = None,
    ) -> CompiledProgram:
        """Serve *payload* from cache, or compile and remember it."""
        key = compiler.cache_key(payload, device, scalar_args)
        program = self.lookup(key)
        if program is not None:
            return program
        with self._compile_lock:
            # Another worker may have compiled the same key while this
            # one waited on the lock.
            with self._lock:
                cached = self._entries.get(key)
            if cached is not None:
                with self._lock:
                    self.stats["hits"] += 1
                    self.stats["misses"] -= 1
                return replace(cached, cache_hit=True, metadata=dict(cached.metadata))
            program = compiler.compile(
                payload, device, scalar_args=scalar_args, use_cache=False
            )
            self.store(key, program)
            return program

    # ---- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 before any traffic."""
        with self._lock:
            total = self.stats["hits"] + self.stats["misses"]
            return self.stats["hits"] / total if total else 0.0

    def clear(self) -> None:
        """Drop every cached program (stats are kept)."""
        with self._lock:
            self._entries.clear()
