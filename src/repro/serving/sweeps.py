"""Served parameter sweeps: one request, a batch of schedules.

Parameter scans — calibration sweeps, robustness plateaus, ctrl-VQE
energy landscapes — are the workload shape the batched propagator
engine (:mod:`repro.sim.evolve`) was built for: many structurally
identical schedules differing only in a few amplitudes. A
:class:`SweepRequest` carries a *builder* (parameter set -> program)
plus the list of parameter sets; :meth:`PulseService.submit_sweep
<repro.serving.service.PulseService.submit_sweep>` expands it into one
:class:`~repro.client.client.JobRequest` per point and returns a single
:class:`SweepTicket` aggregating the per-point tickets.

Why this is fast end to end:

* every point on one device runs through the device executor's batched
  evolution (one ``np.linalg.eigh`` per schedule instead of one per
  slice), and
* the executor's :class:`~repro.sim.evolve.PropagatorCache` is shared
  across the whole sweep, so points re-visiting the same segment
  amplitudes (flat-tops, symmetric scans) skip decompositions, and
* identical points coalesce in the serving layer like any other
  repeat traffic (compile cache, request batcher).

Noise-parameter sweeps — the open-system engine's workload — scan
T1/T2 instead of (or on top of) pulse amplitudes: the *decoherence*
hook maps each parameter set to a per-site
:class:`~repro.sim.model.DecoherenceSpec` override that rides in the
expanded request's metadata, and the simulated device executes that
point against a model with exactly those coherence times (same drift,
same calibrations, same shared unitary-propagator cache).
:meth:`SweepRequest.noise_grid` builds the common case: one fixed
program evaluated over a T1 x T2 grid.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.client.client import ClientResult, JobRequest
from repro.errors import ServiceError
from repro.sim.model import DecoherenceSpec


@dataclass
class SweepRequest:
    """One submission describing a whole parameter scan.

    Parameters
    ----------
    build:
        Callable mapping one parameter set to a program any registered
        adapter accepts (a :class:`PulseSchedule`, a Pythonic circuit,
        a QPI ``QCircuit``...). Called once per entry of *parameters*
        at submission time.
    parameters:
        The scan points, in order. Results come back aligned.
    device, shots, adapter, priority, seed:
        Forwarded to every expanded :class:`JobRequest`.
    decoherence:
        Optional callable mapping one parameter set to a per-site
        sequence of :class:`~repro.sim.model.DecoherenceSpec` (or
        ``(t1, t2)`` pairs). When given, each expanded request carries
        the override in ``metadata["decoherence"]`` and the simulated
        device executes that point with exactly those coherence times
        — the serving route into the open-system engine.
    """

    build: Callable[[Any], Any]
    parameters: Sequence[Any]
    device: str
    shots: int = 1024
    adapter: str | None = None
    priority: int = 0
    seed: int | None = None
    metadata: dict = field(default_factory=dict)
    decoherence: Callable[[Any], Sequence] | None = None

    @classmethod
    def from_programs(
        cls, programs: Sequence[Any], device: str, **kwargs: Any
    ) -> "SweepRequest":
        """A sweep over pre-built programs (builder is the identity)."""
        return cls(
            build=lambda program: program,
            parameters=list(programs),
            device=device,
            **kwargs,
        )

    @classmethod
    def noise_grid(
        cls,
        program: Any,
        device: str,
        *,
        t1_values: Sequence[float],
        t2_values: Sequence[float],
        n_sites: int,
        skip_unphysical: bool = True,
        **kwargs: Any,
    ) -> "SweepRequest":
        """A T1 x T2 grid sweep of one fixed *program*.

        Every site gets the point's ``DecoherenceSpec(t1, t2)``.
        Combinations with ``t2 > 2*t1`` are unphysical; they are
        dropped by default (*skip_unphysical*) so rectangular grids
        stay convenient — pass ``False`` to get the
        :class:`~repro.errors.ValidationError` instead.
        """
        points = [
            (float(t1), float(t2))
            for t1 in t1_values
            for t2 in t2_values
            if not (skip_unphysical and t2 > 2.0 * t1)
        ]
        if not points:
            raise ServiceError(
                "noise grid is empty (every T1/T2 combination was "
                "unphysical: T2 <= 2*T1 required)"
            )
        return cls(
            build=lambda point: program,
            parameters=points,
            device=device,
            decoherence=lambda point: tuple(
                DecoherenceSpec(t1=point[0], t2=point[1])
                for _ in range(n_sites)
            ),
            **kwargs,
        )

    def expand(self) -> list[JobRequest]:
        """One :class:`JobRequest` per scan point, in scan order."""
        if not self.parameters:
            raise ServiceError("sweep has no parameter sets")
        requests = []
        for i, p in enumerate(self.parameters):
            metadata = {**self.metadata, "sweep_index": i}
            if self.decoherence is not None:
                metadata["decoherence"] = tuple(self.decoherence(p))
            requests.append(
                JobRequest(
                    program=self.build(p),
                    device=self.device,
                    shots=self.shots,
                    adapter=self.adapter,
                    priority=self.priority,
                    seed=self.seed,
                    metadata=metadata,
                )
            )
        return requests


class SweepTicket:
    """Aggregated handle over the per-point tickets of one sweep.

    Implements the unified :class:`repro.serving.tickets.Ticket`
    protocol — ``status()`` aggregates the per-point states,
    ``cancel()`` fans out to every unresolved point, ``result()`` is
    an alias of :meth:`results` — so sweep handles interoperate with
    everything written against the protocol.
    """

    def __init__(
        self,
        request: SweepRequest | None,
        tickets: list,
        *,
        ticket_id: str | None = None,
    ) -> None:
        from repro.serving.tickets import new_ticket_id

        self.id = ticket_id if ticket_id is not None else new_ticket_id()
        self.request = request
        self.tickets = tickets

    def __len__(self) -> int:
        return len(self.tickets)

    def done(self) -> bool:
        return all(t.done() for t in self.tickets)

    def status(self):
        """Aggregate lifecycle state across the scan points.

        FAILED if any point failed, else CANCELLED if any point was
        cancelled, else DONE when all points are done; otherwise the
        most advanced in-flight state (RUNNING > DISPATCHED > PENDING).
        """
        from repro.serving.tickets import TicketState

        states = [t.status() for t in self.tickets]
        if any(s is TicketState.FAILED for s in states):
            return TicketState.FAILED
        if any(s is TicketState.CANCELLED for s in states):
            return TicketState.CANCELLED
        if all(s is TicketState.DONE for s in states):
            return TicketState.DONE
        for live in (TicketState.RUNNING, TicketState.DISPATCHED):
            if any(s is live for s in states):
                return live
        return TicketState.PENDING

    def cancel(self) -> bool:
        """Cancel every unresolved point; False when all are terminal."""
        accepted = [t.cancel() for t in self.tickets]
        return any(accepted)

    def result(self, timeout: float | None = None) -> list[ClientResult]:
        """Protocol alias of :meth:`results` (scan-ordered list)."""
        return self.results(timeout)

    def to_dict(self) -> dict:
        """A JSON-safe snapshot: per-point ticket snapshots, in order."""
        return {
            "kind": "sweep",
            "id": self.id,
            "state": self.status().value,
            "tickets": [t.to_dict() for t in self.tickets],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepTicket":
        """Rebuild a detached sweep handle from a snapshot."""
        from repro.serving.tickets import ticket_from_dict

        return cls(
            None,
            [ticket_from_dict(t) for t in data.get("tickets", [])],
            ticket_id=data.get("id"),
        )

    @staticmethod
    def _deadline(timeout: float | None):
        """Per-ticket remaining-time callable sharing one deadline."""
        if timeout is None:
            return lambda: None
        deadline = time.perf_counter() + timeout
        return lambda: max(0.0, deadline - time.perf_counter())

    def wait(self, timeout: float | None = None) -> bool:
        """Block until every point resolved (or *timeout* elapses)."""
        remaining = self._deadline(timeout)
        return all(t.wait(remaining()) for t in self.tickets)

    def results(self, timeout: float | None = None) -> list[ClientResult]:
        """Per-point results in scan order; re-raises the first failure.

        *timeout* bounds the whole call, not each point.
        """
        remaining = self._deadline(timeout)
        return [t.result(remaining()) for t in self.tickets]

    def exceptions(self, timeout: float | None = None) -> list[Exception | None]:
        """Per-point failures (None on success), in scan order.

        *timeout* bounds the whole call, not each point.
        """
        remaining = self._deadline(timeout)
        return [t.exception(remaining()) for t in self.tickets]

    def expectations(
        self, observable, timeout: float | None = None
    ) -> np.ndarray:
        """Expectation of a diagonal observable across the scan.

        *observable* is anything
        :meth:`~repro.primitives.observables.Observable.coerce`
        accepts (an Observable, a Pauli label like ``"ZI"``, or a
        ``{label: coeff}`` mapping); evaluation runs through the one
        expectation engine the primitives use, against each point's
        exact outcome distribution.
        """
        from repro.primitives.observables import Observable

        obs = Observable.coerce(observable)
        if not obs.is_hermitian:
            raise ServiceError(
                f"sweep expectations need a Hermitian observable (real "
                f"coefficients); got {obs!r}"
            )
        return np.array(
            [obs.expectation(r.probabilities) for r in self.results(timeout)],
            dtype=np.float64,
        )

    def expectation_z(
        self, slot: int = 0, timeout: float | None = None
    ) -> np.ndarray:
        """``<Z>`` of *slot* across the scan — the 1-D scan curve."""
        from repro.primitives.observables import expectation_z

        return np.array(
            [
                expectation_z(r.probabilities, slot)
                for r in self.results(timeout)
            ],
            dtype=np.float64,
        )
