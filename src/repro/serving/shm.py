"""Shared-memory array transport between cluster workers and parent.

Worker processes return numerical result payloads — stacked
probability / count vectors for a whole job chunk, the same shape as
the ``(n, D, D)`` propagator stacks the batched engines produce —
through one ``multiprocessing.shared_memory`` segment per job instead
of pickling arrays through a pipe.  The protocol:

1. the *worker* packs a named dict of arrays into a fresh segment
   (:func:`pack_arrays`), detaches, and records the returned *spec*
   (segment name + per-array dtype/shape/offset) in the job store row;
2. the *parent* attaches by name (:func:`load_arrays`), copies the
   arrays out, and :func:`unlink` s the segment — exactly one unlink,
   claimed atomically through the store row.

The worker must *not* unlink (the parent still has to attach), so the
segment is explicitly unregistered from the worker's
``resource_tracker`` — otherwise the tracker would tear the segment
down when the worker exits, racing the parent's read.  Orphaned
segments (parent crashed between worker completion and assembly) are
reaped on the next service start from the specs left in the store.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Mapping

import numpy as np

__all__ = ["pack_arrays", "load_arrays", "unlink"]


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Stop the local resource tracker from auto-unlinking *shm*."""
    try:  # pragma: no cover - tracker registration is interpreter detail
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def pack_arrays(arrays: Mapping[str, np.ndarray]) -> dict:
    """Write *arrays* into one fresh segment; returns the wire spec.

    The creating process detaches before returning; ownership of the
    unlink passes to whoever holds the spec.  An empty mapping returns
    a spec with no segment at all.
    """
    items = [(name, np.ascontiguousarray(a)) for name, a in arrays.items()]
    total = sum(a.nbytes for _, a in items)
    if total == 0:
        return {"segment": None, "arrays": []}
    shm = shared_memory.SharedMemory(create=True, size=total)
    try:
        spec_arrays = []
        offset = 0
        for name, a in items:
            if a.nbytes:
                dst = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf, offset=offset)
                dst[...] = a
            spec_arrays.append(
                {
                    "name": name,
                    "dtype": a.dtype.str,
                    "shape": list(a.shape),
                    "offset": offset,
                }
            )
            offset += a.nbytes
        return {"segment": shm.name, "arrays": spec_arrays}
    finally:
        _untrack(shm)
        shm.close()


def load_arrays(spec: Mapping) -> dict[str, np.ndarray]:
    """Attach to a spec's segment and copy its arrays out.

    Always copies (the caller typically unlinks right after), and
    detaches before returning.
    """
    out: dict[str, np.ndarray] = {}
    segment = spec.get("segment")
    if segment is None:
        for entry in spec.get("arrays", ()):
            out[entry["name"]] = np.empty(
                tuple(entry["shape"]), dtype=np.dtype(entry["dtype"])
            )
        return out
    shm = shared_memory.SharedMemory(name=segment)
    try:
        for entry in spec["arrays"]:
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=shm.buf,
                offset=entry["offset"],
            )
            out[entry["name"]] = view.copy()
    finally:
        _untrack(shm)
        shm.close()
    return out


def unlink(spec: Mapping) -> bool:
    """Free a spec's segment; False when it is already gone."""
    segment = spec.get("segment")
    if segment is None:
        return True
    try:
        shm = shared_memory.SharedMemory(name=segment)
    except FileNotFoundError:
        return False
    # No _untrack here: attach registered the name (+1) and
    # ``SharedMemory.unlink`` unregisters it again, so the tracker
    # books balance without intervention.
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - unlink race
        return False
    return True
