"""The unified ticket surface shared by every serving transport.

One serializable protocol — :class:`Ticket` — is implemented by the
in-process :class:`~repro.serving.service.JobTicket`, the aggregated
:class:`~repro.serving.sweeps.SweepTicket`, the store-backed
:class:`~repro.serving.cluster.ClusterTicket`, and the wire-level
:class:`~repro.serving.http.HttpTicket`.  Callers write against the
protocol and stay transport-agnostic::

    client = repro.serving.connect(service_or_url)
    ticket = client.submit(request)          # any transport
    ticket.status()                          # -> TicketState
    ticket.result(timeout=30)                # blocks, typed re-raise
    ticket.cancel()                          # best-effort, see below
    snapshot = ticket.to_dict()              # wire/store serializable

Lifecycle::

    PENDING ──▶ DISPATCHED ──▶ RUNNING ──▶ DONE
           \\            \\            ├──▶ FAILED
            ▼             ▼           └──▶ CANCELLED
        CANCELLED     CANCELLED

Cancellation semantics are uniform: a *pending* ticket drops from its
queue and resolves immediately; a *running* ticket sets a cooperative
flag that the execution engine checks at chunk boundaries — the job
either raises :class:`~repro.errors.CancelledError` at the next
boundary or, if it was already past the last one, completes normally
(``cancel()`` then returns ``False`` only when the ticket is already
terminal; acceptance of the request does not guarantee interruption).
"""

from __future__ import annotations

import uuid
from enum import Enum
from typing import Any, Protocol, runtime_checkable


class TicketState(Enum):
    """Lifecycle states shared by every ticket implementation."""

    PENDING = "pending"
    DISPATCHED = "dispatched"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the state is final (result/error/cancel resolved)."""
        return self in (
            TicketState.DONE,
            TicketState.FAILED,
            TicketState.CANCELLED,
        )


def new_ticket_id() -> str:
    """A process-unique, wire-safe ticket identifier."""
    return uuid.uuid4().hex


@runtime_checkable
class Ticket(Protocol):
    """What every serving transport hands back for a submission.

    ``result`` blocks up to *timeout* seconds and re-raises the
    failure (or :class:`~repro.errors.CancelledError`) carried by the
    ticket; ``to_dict`` emits a JSON-serializable snapshot suitable
    for the wire and the durable store, reconstructible with the
    implementing class's ``from_dict``.
    """

    id: str

    def status(self) -> TicketState: ...

    def done(self) -> bool: ...

    def wait(self, timeout: float | None = None) -> bool: ...

    def result(self, timeout: float | None = None) -> Any: ...

    def cancel(self) -> bool: ...

    def to_dict(self) -> dict: ...


def ticket_from_dict(data: dict) -> Any:
    """Rebuild a ticket snapshot from its ``to_dict`` form.

    Dispatches on the ``kind`` field: ``"job"`` snapshots become
    detached :class:`~repro.serving.service.JobTicket`\\ s, ``"sweep"``
    snapshots become :class:`~repro.serving.sweeps.SweepTicket`\\ s.
    """
    kind = data.get("kind", "job")
    if kind == "job":
        from repro.serving.service import JobTicket

        return JobTicket.from_dict(data)
    if kind == "sweep":
        from repro.serving.sweeps import SweepTicket

        return SweepTicket.from_dict(data)
    from repro.errors import ServiceError

    raise ServiceError(f"unknown ticket kind {kind!r}")
