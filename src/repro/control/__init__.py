"""Quantum optimal control (paper §2.1: "Pulse Engineering using
Optimal-Control" and "Pulse-level VQEs").

* :mod:`repro.control.grape` — Gradient Ascent Pulse Engineering with
  exact (Daleckii-Krein) gradients of the unitary fidelity;
* :mod:`repro.control.parametric` — derivative-free optimization of
  parametric pulse shapes (the closed-loop-style calibration of pulse
  parameters);
* :mod:`repro.control.hamiltonians` — Pauli-sum target Hamiltonians
  (H2-style molecular test case) and embeddings into device dimensions;
* :mod:`repro.control.vqe` — gate-level VQE baseline;
* :mod:`repro.control.ctrl_vqe` — pulse-level VQE (ctrl-VQE): the
  variational parameters are pulse amplitudes played through the QPI,
  bypassing gate decomposition, with shorter total schedule duration;
* :mod:`repro.control.robustness` — fidelity scans under detuning,
  amplitude and decoherence (T1/T2) errors (shaped-pulse robustness).
"""

from repro.control.grape import GrapeOptimizer, GrapeResult
from repro.control.parametric import ParametricOptimizer, ParametricResult
from repro.control.hamiltonians import (
    embed_qubit_operator,
    h2_hamiltonian,
    pauli_sum,
)
from repro.control.vqe import GateVQE, VQEResult
from repro.control.ctrl_vqe import CtrlVQE, CtrlVQEResult
from repro.control.robustness import (
    amplitude_scan,
    decoherence_scan,
    detuning_scan,
    estimator_scan,
)

__all__ = [
    "GrapeOptimizer",
    "GrapeResult",
    "ParametricOptimizer",
    "ParametricResult",
    "pauli_sum",
    "h2_hamiltonian",
    "embed_qubit_operator",
    "GateVQE",
    "VQEResult",
    "CtrlVQE",
    "CtrlVQEResult",
    "detuning_scan",
    "amplitude_scan",
    "decoherence_scan",
    "estimator_scan",
]
